//! Vendored, offline shim for the `rayon` subset this workspace uses.
//!
//! `par_iter()` here hands back a *sequential* `std::slice::Iter`, so every
//! adapter chain (`filter_map`, `map`, `collect`, …) type-checks and runs —
//! just without work stealing. The experiment grids this repo parallelises
//! are embarrassingly parallel and dominated by learner training; when a
//! real `rayon` is available the manifests can switch back with no source
//! changes. Results are bit-identical either way because every cell is
//! seeded independently.
//!
//! [`scope`] and [`join`], by contrast, are *really parallel*: they are
//! implemented on `std::thread::scope`, so spawned closures run on their
//! own OS threads and may borrow from the enclosing stack, exactly like
//! rayon's structured-concurrency API (minus the work-stealing pool). The
//! sharded stream engine uses them for per-shard ingestion.

pub mod prelude {
    //! Drop-in for `rayon::prelude::*`.

    /// Sequential stand-in for `IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type yielded by the iterator.
        type Item: 'a;
        /// The iterator type (sequential here).
        type Iter: Iterator<Item = Self::Item>;

        /// "Parallel" iteration — sequential in this shim.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> std::slice::Iter<'a, T> {
            self.iter()
        }
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> std::slice::Iter<'a, T> {
            self.as_slice().iter()
        }
    }
}

/// Structured fork–join scope, mirroring `rayon::Scope`.
///
/// Closures handed to [`Scope::spawn`] run on dedicated scoped OS threads
/// and are all joined before [`scope`] returns; a panic in any spawned
/// closure propagates out of [`scope`], as with the real crate.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn `body` onto its own scoped thread. The closure receives the
    /// scope again so it can spawn nested tasks, as in rayon.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || body(&Scope { inner }));
    }
}

/// Create a fork–join scope: every task spawned inside is joined before
/// `scope` returns, so tasks may borrow (even mutably) from the caller's
/// stack. Signature-compatible with `rayon::scope`.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Run two closures, potentially in parallel, and return both results —
/// `rayon::join` on scoped threads.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("joined closure panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn scope_spawns_really_run_and_may_borrow_mutably() {
        let mut results = vec![0u64; 8];
        super::scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move |_| *slot = (i as u64 + 1) * 10);
            }
        });
        assert_eq!(results, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn par_iter_supports_adapter_chains() {
        let v = vec![1, 2, 3, 4];
        let doubled_evens: Vec<i32> = v
            .par_iter()
            .filter_map(|&x| if x % 2 == 0 { Some(x * 2) } else { None })
            .collect();
        assert_eq!(doubled_evens, vec![4, 8]);
        let slice: &[i32] = &v;
        assert_eq!(slice.par_iter().count(), 4);
    }
}
