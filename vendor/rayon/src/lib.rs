//! Vendored, offline shim for the `rayon` subset this workspace uses.
//!
//! `par_iter()` here hands back a *sequential* `std::slice::Iter`, so every
//! adapter chain (`filter_map`, `map`, `collect`, …) type-checks and runs —
//! just without work stealing. The experiment grids this repo parallelises
//! are embarrassingly parallel and dominated by learner training; when a
//! real `rayon` is available the manifests can switch back with no source
//! changes. Results are bit-identical either way because every cell is
//! seeded independently.

pub mod prelude {
    //! Drop-in for `rayon::prelude::*`.

    /// Sequential stand-in for `IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type yielded by the iterator.
        type Item: 'a;
        /// The iterator type (sequential here).
        type Iter: Iterator<Item = Self::Item>;

        /// "Parallel" iteration — sequential in this shim.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> std::slice::Iter<'a, T> {
            self.iter()
        }
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> std::slice::Iter<'a, T> {
            self.as_slice().iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_supports_adapter_chains() {
        let v = vec![1, 2, 3, 4];
        let doubled_evens: Vec<i32> = v
            .par_iter()
            .filter_map(|&x| if x % 2 == 0 { Some(x * 2) } else { None })
            .collect();
        assert_eq!(doubled_evens, vec![4, 8]);
        let slice: &[i32] = &v;
        assert_eq!(slice.par_iter().count(), 4);
    }
}
