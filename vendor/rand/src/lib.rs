//! Vendored, offline subset of the `rand` 0.8 API.
//!
//! The workspace builds in environments with no crates.io access, so this
//! shim provides exactly the surface the repo uses: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over the numeric
//! range types that appear in the codebase, and
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The generator is xoshiro256++ seeded through splitmix64 — a different
//! stream than upstream `StdRng` (ChaCha12), which is fine: nothing in the
//! repo pins exact draws, only determinism given a seed.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sampling a value of type `T` uniformly from a range. Mirrors upstream's
/// `SampleRange<T>` shape so integer-literal inference works at call sites
/// like `rng.gen_range(2..=4)` assigned to a `usize`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from `self`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .sample(rng) as f32
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, bound)` via rejection sampling (no modulo bias).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound == 1 {
        return 0;
    }
    // All bounds in practice fit u64; keep the math in u64.
    let bound = bound as u64;
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return u128::from(v % bound);
        }
    }
}

/// The user-facing convenience trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (0.0..1.0).sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — fast, high-quality, deterministic. Stands in for
    /// upstream's ChaCha12-based `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 of any
            // seed never yields four zero words, but guard regardless.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw generator state — a shim extension (upstream gates
        /// `StdRng` serialisation behind the `serde1` feature) used by the
        /// workspace's checkpoint/restore machinery to resume a stream at
        /// its exact RNG position instead of replaying from the seed.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator positioned at a previously captured
        /// [`StdRng::state`]. An all-zero state is a fixed point of
        /// xoshiro256++ and is rejected by substituting the seeding guard
        /// constant, exactly as `seed_from_u64` does.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s.iter().all(|&w| w == 0) {
                return StdRng {
                    s: [0x9E37_79B9_7F4A_7C15, 0, 0, 0],
                };
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers (the `SliceRandom` subset).

    use super::{Rng, RngCore};

    /// In-place shuffling for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
        let mut c = StdRng::seed_from_u64(8);
        let first: f64 = StdRng::seed_from_u64(7).gen_range(0.0..1.0);
        assert_ne!(first, c.gen_range(0.0..1.0));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.5..3.5);
            assert!((-2.5..3.5).contains(&f));
            let i = rng.gen_range(2..=4);
            assert!((2..=4).contains(&i));
            let u: usize = rng.gen_range(0..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
