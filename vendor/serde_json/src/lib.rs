//! Vendored, offline subset of `serde_json`: parse and print the `serde`
//! shim's [`Value`] tree, plus the `to_*`/`from_str` entry points and a
//! `json!` macro covering the literal shapes this workspace writes.

use serde::{Deserialize, Serialize};
use std::io::Write;

pub use serde::{Error, Value};

/// Result alias matching the upstream signature shape.
pub type Result<T> = std::result::Result<T, Error>;

// ------------------------------------------------------------------ writing

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize compactly into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer
        .write_all(to_string(value)?.as_bytes())
        .map_err(Error::msg)
}

/// Serialize pretty-printed into a writer.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer
        .write_all(to_string_pretty(value)?.as_bytes())
        .map_err(Error::msg)
}

/// Serialize any value into a [`Value`] tree (used by `json!`).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            if n.is_finite() {
                // Rust's float Display is shortest-round-trip, so values
                // survive write → parse exactly.
                out.push_str(&n.to_string());
            } else {
                // JSON has no Inf/NaN; match upstream's `null` encoding.
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            write_seq(
                out,
                items.iter(),
                indent,
                level,
                |out, item, ind, lvl| {
                    write_value(out, item, ind, lvl);
                },
                ('[', ']'),
            );
        }
        Value::Object(fields) => {
            write_seq(
                out,
                fields.iter(),
                indent,
                level,
                |out, (k, val), ind, lvl| {
                    write_escaped(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, ind, lvl);
                },
                ('{', '}'),
            );
        }
    }
}

fn write_seq<I: Iterator<Item = T>, T>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    level: usize,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
    (open, close): (char, char),
) {
    out.push(open);
    let mut items = items.peekable();
    if items.peek().is_none() {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, indent, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parsing

/// Parse a JSON document into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    T::from_value(&value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.expect_keyword("null").map(|()| Value::Null),
            Some(b't') => self.expect_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("malformed array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::msg(format!("malformed object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte position.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(Error::msg)?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(Error::msg)?;
        let v = u32::from_str_radix(hex, 16).map_err(Error::msg)?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::msg)?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
    }
}

/// Build a [`Value`] literal. Covers the shapes used in this workspace:
/// `json!({ "key": expr, … })`, `json!([expr, …])`, and `json!(expr)`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact_and_pretty() {
        let v = json!({
            "name": "MEPS \"quoted\"",
            "size": 1138usize,
            "ratio": 0.04,
            "flags": vec![true, false],
            "missing": Value::Null,
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1f64, 1.0 / 3.0, 6.02e23, -0.0, 123_456_789.123_456_79] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn non_finite_serialises_as_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_infinite());
    }

    #[test]
    fn vec_round_trip() {
        let text = to_string(&vec![1, 2, 3]).unwrap();
        assert_eq!(text, "[1,2,3]");
        let back: Vec<i32> = from_str(&text).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""aé😀b""#).unwrap();
        assert_eq!(v.as_str(), Some("aé😀b"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }
}
