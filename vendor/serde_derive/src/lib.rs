//! Vendored, offline `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Scope: plain (non-generic) structs with named fields — the only shapes
//! this workspace derives. The macros are written directly against
//! `proc_macro::TokenStream` (no `syn`/`quote`, which are unavailable
//! offline): the struct name and field names are recovered by a small token
//! walk, and the impl is emitted as formatted source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    fields: Vec<String>,
}

/// Recover `struct Name { field, … }` from the derive input tokens.
fn parse_struct(input: TokenStream) -> StructShape {
    let mut tokens = input.into_iter().peekable();
    let mut name = None;

    // Walk the prefix: attributes (`# [ … ]`), visibility, `struct`, name.
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute's bracket group.
                tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Skip a possible restriction like `pub(crate)`.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => match tokens.next() {
                Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                other => panic!("serde_derive shim: expected struct name, got {other:?}"),
            },
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("serde_derive shim does not support generic structs")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let name = name.expect("serde_derive shim: no struct keyword before body");
                return StructShape {
                    name,
                    fields: parse_fields(g.stream()),
                };
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                panic!("serde_derive shim only supports structs with named fields")
            }
            _ => {}
        }
    }
    panic!("serde_derive shim: struct body not found (tuple structs unsupported)")
}

/// Field names from the body tokens: per comma-separated chunk, the first
/// identifier after attributes/visibility and before the `:`.
fn parse_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut depth = 0usize; // inside `<…>` of a field type
    let mut expecting_name = true;
    let mut tokens = body.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' && expecting_name => {
                tokens.next(); // attribute group
            }
            TokenTree::Ident(id) if expecting_name && id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            TokenTree::Ident(id) if expecting_name => {
                fields.push(id.to_string());
                expecting_name = false;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                expecting_name = true;
            }
            _ => {}
        }
    }
    fields
}

/// `#[derive(Serialize)]` — emits a field-by-field `to_value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let pushes: String = shape
        .fields
        .iter()
        .map(|f| {
            format!(
                "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .expect("serde_derive shim: generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]` — emits a field-by-field `from_value`. Field
/// types are never inspected: each field is recovered through trait
/// resolution of `Deserialize::from_value` at its declared type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let reads: String = shape
        .fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.get_or_err(\"{f}\")?)?,\n"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok(Self {{\n\
                     {reads}\
                 }})\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .expect("serde_derive shim: generated Deserialize impl must parse")
}
