//! The case runner: seeding, rejection bookkeeping, failure reporting.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Build a [`TestRng`] from a case seed.
pub fn new_rng(seed: u64) -> TestRng {
    use rand::SeedableRng;
    TestRng::seed_from_u64(seed)
}

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of accepted (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

impl Config {
    /// Upstream-compatible constructor.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` failed — retry with a fresh input.
    Reject(String),
    /// `prop_assert!`/`prop_assert_eq!` failed — the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// A failing case.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (assumption-violating) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

fn case_seed(name: &str, attempt: u32) -> u64 {
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    attempt.hash(&mut h);
    h.finish()
}

/// Drive one property: run seeded cases until `config.cases` are accepted,
/// panicking on the first failure. Rejections retry (bounded at 10× the
/// case budget, matching upstream's global rejection cap in spirit).
pub fn run_cases<F>(config: Config, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let max_attempts = config.cases.saturating_mul(10).max(1_000);
    let mut accepted = 0u32;
    let mut attempt = 0u32;
    while accepted < config.cases {
        attempt += 1;
        assert!(
            attempt <= max_attempts,
            "proptest shim: `{name}` rejected too many inputs \
             ({accepted}/{} accepted after {max_attempts} attempts) — \
             loosen the prop_assume! conditions",
            config.cases
        );
        let seed = case_seed(name, attempt);
        let mut rng = new_rng(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {attempt} (seed {seed:#x}):\n{msg}")
            }
        }
    }
}
