//! The strategy algebra: how test inputs are generated.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream there is no shrinking: `generate` directly yields the
/// value for one test case.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

// Numeric ranges are strategies: `0u8..2`, `-100.0..100.0f64`, `1..=max`.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// f64/f32 half-open ranges only (SampleRange has no inclusive float impl,
// mirroring upstream's distinct treatment of float ranges).
impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

// Tuples of strategies generate tuples of values, left to right.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
