//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Length specification for [`vec()`]: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

/// Strategy yielding `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi_exclusive {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi_exclusive)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
