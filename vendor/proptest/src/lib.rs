//! Vendored, offline subset of the `proptest` API.
//!
//! Random-input property testing without shrinking: each `proptest!` test
//! runs `cases` seeded random inputs; a failing case panics with its seed
//! and message, a `prop_assume!` rejection retries with the next seed.
//! The strategy algebra covers what this workspace's tests use: numeric
//! ranges, tuples of strategies, `collection::vec`, `Just`, `prop_map`,
//! and `prop_flat_map`.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Drop-in for `proptest::prelude::*`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declare property tests. Supports the subset of upstream syntax the
/// workspace uses: an optional `#![proptest_config(..)]` header followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal item-muncher behind [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases($cfg, stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Property-test assertion: fails the current case (with its seed) instead
/// of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion with operand capture.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right` ({}): left `{:?}`, right `{:?}`",
                format!($($fmt)+), __l, __r
            )));
        }
    }};
}

/// Inequality assertion with operand capture.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                __l
            )));
        }
    }};
}

/// Reject the current case (doesn't count towards `cases`); the runner
/// retries with a fresh seed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tuples_and_maps_compose((n, scale) in (1usize..8, 0.5..2.0f64)) {
            prop_assert!((1..8).contains(&n));
            prop_assert!((0.5..2.0).contains(&scale));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0u8..2, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 2));
        }

        #[test]
        fn flat_map_threads_parameters(m in (2usize..5).prop_flat_map(|n| {
            crate::collection::vec(-1.0..1.0f64, n * 2).prop_map(move |data| (n, data))
        })) {
            let (n, data) = m;
            prop_assert_eq!(data.len(), n * 2);
        }

        #[test]
        fn assume_rejects_and_retries(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn patterns_destructure((a, b) in (0i32..5, 5i32..10)) {
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    #[should_panic]
    fn failing_property_panics_with_seed() {
        crate::test_runner::run_cases(ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn just_yields_clones() {
        let s = Just(41i32);
        let mut rng = crate::test_runner::new_rng(0);
        assert_eq!(Strategy::generate(&s, &mut rng), 41);
    }
}
