//! Vendored, offline subset of the `criterion` benchmarking API.
//!
//! Provides the types and macros the workspace's benches use
//! (`Criterion`, benchmark groups, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`) backed by a simple median-of-samples wall-clock
//! harness: per benchmark it warms up briefly, auto-calibrates an
//! iteration count to ≥ ~5 ms per sample, times `sample_size` samples,
//! and prints median ns/iter plus derived throughput.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked expression.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// `<function>/<parameter>`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            rendered: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            rendered: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// Per-iteration timing callback holder.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    iters_per_sample: &'a mut u64,
    sample_count: usize,
}

impl Bencher<'_> {
    /// Time `routine`, recording `sample_count` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: grow the per-sample iteration count until
        // one sample takes ≥ 5 ms (or the routine is clearly slow).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                *self.iters_per_sample = iters;
                break;
            }
            iters = iters.saturating_mul(2);
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(label: &str, sample_count: usize, f: &mut dyn FnMut(&mut Bencher<'_>)) {
    let mut samples = Vec::with_capacity(sample_count);
    let mut iters_per_sample = 1u64;
    let mut b = Bencher {
        samples: &mut samples,
        iters_per_sample: &mut iters_per_sample,
        sample_count,
    };
    f(&mut b);
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let ns = median.as_nanos() as f64 / iters_per_sample as f64;
    let per_sec = if ns > 0.0 { 1e9 / ns } else { f64::INFINITY };
    println!("{label:<48} {ns:>14.1} ns/iter {per_sec:>14.0} iter/s");
}

/// Group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to record per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// End the group (separator line, matching upstream's flush semantics).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Upstream-compatible constructor used by `criterion_main!`.
    pub fn configure_from_args(self) -> Self {
        // Cargo passes `--bench` (and possibly filters); the shim times
        // everything and ignores filters.
        self
    }

    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            20
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmark a stand-alone closure.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), 20, &mut f);
        self
    }
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_trivial_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut count = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        group.finish();
        assert!(count > 0);
        c.bench_function("toplevel", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("exact", 500).to_string(), "exact/500");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
