//! The JSON value tree shared by the `serde`/`serde_json` shims.

use crate::Error;

/// A JSON document. Object fields keep insertion order so pretty-printed
/// artifacts read in declaration order.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null` (also the encoding of non-finite floats).
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Unsigned-integer view (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field lookup that errors on a missing key (used by the
    /// `Deserialize` derive).
    pub fn get_or_err(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(_) => self
                .get(key)
                .ok_or_else(|| Error::msg(format!("missing field `{key}`"))),
            other => Err(Error::msg(format!(
                "expected object with field `{key}`, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(1.0)),
            ("b".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 1);
        assert!(v.get("c").is_none());
        assert!(v.get_or_err("c").is_err());
        assert!(Value::Null.is_null());
        assert_eq!(Value::String("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Number(1.5).as_u64(), None);
    }
}
