//! Vendored, offline stand-in for the `serde` facade.
//!
//! Upstream serde abstracts over data formats; this workspace only ever
//! serialises to and from JSON, so the shim collapses the data model to one
//! concrete [`Value`] tree: [`Serialize`] renders into a `Value`,
//! [`Deserialize`] reads back out of one. The derive macros (re-exported
//! from the sibling `serde_derive` shim) generate field-by-field impls for
//! plain structs with named fields — exactly the shapes this repo declares.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

/// Serialisation/deserialisation error (a message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a JSON [`Value`].
pub trait Serialize {
    /// The value-tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parse out of the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Convenience: serialize any value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

// ---------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(*n),
            // Non-finite floats serialise as null (JSON has no Inf/NaN);
            // read them back as +∞, matching how the metrics code treats
            // missing disparate-impact denominators.
            Value::Null => Ok(f64::INFINITY),
            other => Err(Error::msg(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|n| n as f32)
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(Error::msg(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// --------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                parsed
                    .try_into()
                    .map_err(|_| Error::msg("array length changed during parse"))
            }
            Value::Array(items) => Err(Error::msg(format!(
                "expected array of length {N}, got length {}",
                items.len()
            ))),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
