//! # confair — Non-Invasive Fairness in Learning through the Lens of Data Drift
//!
//! Facade crate for the full Rust reproduction of Yang & Meliou, ICDE 2024.
//! It re-exports the public API of every workspace crate so applications can
//! depend on a single crate:
//!
//! ```
//! use confair::prelude::*;
//!
//! // Build the paper's Fig. 1 toy dataset, weigh it with ConFair, and train.
//! let data = confair::datasets::toy::figure1(42);
//! assert!(data.len() > 0);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! binaries that regenerate every table and figure in the paper.

pub use cf_baselines as baselines;
pub use cf_conformance as conformance;
pub use cf_data as data;
pub use cf_datasets as datasets;
pub use cf_density as density;
pub use cf_learners as learners;
pub use cf_linalg as linalg;
pub use cf_metrics as metrics;
pub use cf_stream as stream;
pub use cf_telemetry as telemetry;
pub use confair_core as core;

/// Commonly used items, importable in one line.
pub mod prelude {
    pub use cf_baselines::{cap::Capuchin, kam::KamiranCalders, omn::OmniFair};
    pub use cf_conformance::{ConstraintFamily, ConstraintSet};
    pub use cf_data::{Column, Dataset, GroupSpec, SplitRatios};
    pub use cf_datasets::{
        realsim::RealWorldSpec,
        stream::{
            DelayedLabelStream, DriftStream, DriftStreamCheckpoint, DriftStreamSpec, LabelDelay,
            ShardedDriftStream,
        },
        synthgen::SynSpec,
    };
    pub use cf_density::{density_filter, Kde};
    pub use cf_learners::{Learner, LearnerKind};
    pub use cf_metrics::{FairnessReport, GroupConfusion};
    pub use cf_stream::{
        AsyncConfig, AsyncEngine, BackpressurePolicy, DriftAlert, DriftKind, DropCounters,
        EngineCheckpoint, FairnessSnapshot, FeedbackOutcome, GroupLayout, JoinStats, LabelFeedback,
        Monitor, PageHinkleyConfig, RepairConfig, RepairTier, RetrainPolicy, Scorer, ShardHealth,
        ShardedAsyncEngine, ShardedCheckpoint, ShardedEngine, ShardedFeedback, ShardedOutcome,
        ShardedTuple, StreamConfig, StreamEngine, StreamMetrics, StreamTuple, SupervisorConfig,
    };
    pub use cf_telemetry::{
        replay, replay_file, shared_sink, AlertData, DegradedModeEvent, EventSink, JsonlSink,
        MetricsRegistry, MonitorRestartEvent, NullSink, ReplayedRun, RingSink, SharedSink,
        SnapshotData, TelemetryEvent,
    };
    pub use confair_core::{
        confair::{ConFair, ConFairConfig, FairnessTarget},
        difffair::{DiffFair, DiffFairConfig},
        multimodel::MultiModel,
        pipeline::{EvalOutcome, Pipeline},
        tuning::tune_alpha,
    };
}
