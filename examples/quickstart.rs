//! Quickstart: the paper's Fig. 1 walkthrough in ~40 lines.
//!
//! Builds the two-group toy dataset, trains a plain logistic-regression
//! model, shows its unfairness, then repairs it with ConFair — all through
//! the `confair` facade API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use confair::core::{evaluate, ConFair, NoIntervention, Pipeline};
use confair::datasets::toy::figure1;
use confair::learners::LearnerKind;

fn main() {
    // 1. The Fig. 1 dataset: a majority whose labels follow X2, a minority
    //    whose labels follow a drifted direction, both sharing the space.
    let data = figure1(23);
    println!(
        "dataset: {} tuples, {} minority",
        data.len(),
        data.group_count(confair::data::MINORITY)
    );

    let pipeline = Pipeline::paper_default();

    // 2. Baseline: train LR with no intervention.
    let base = evaluate(&data, &NoIntervention, LearnerKind::Logistic, pipeline, 23)
        .expect("baseline evaluation");
    println!("\nbefore intervention:");
    println!("  {}", base.report.one_line());
    println!(
        "  selection rates: majority {:.2}, minority {:.2}",
        base.report.sr_majority, base.report.sr_minority
    );

    // 3. ConFair: profile each (group, label) cell with conformance
    //    constraints, boost the conforming dense cores, retrain.
    let fair = evaluate(
        &data,
        &ConFair::paper_default(),
        LearnerKind::Logistic,
        pipeline,
        23,
    )
    .expect("ConFair evaluation");
    println!("\nafter ConFair:");
    println!("  {}", fair.report.one_line());
    println!(
        "  selection rates: majority {:.2}, minority {:.2}",
        fair.report.sr_majority, fair.report.sr_minority
    );

    let gain = fair.report.di_star - base.report.di_star;
    println!(
        "\nDI* improved by {gain:+.3} with balanced accuracy {:+.3}",
        fair.report.balanced_accuracy - base.report.balanced_accuracy
    );
    assert!(
        gain > 0.0,
        "ConFair should improve fairness on the toy data"
    );
}
