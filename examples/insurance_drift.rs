//! Severe-drift scenario: when model splitting beats reweighing.
//!
//! The Syn1 generator reproduces the paper's Fig. 10 geometry: majority and
//! minority share the feature space, but their label-conditional
//! distributions point in *opposite* directions — no single linear model can
//! conform to both. This is §IV-B's case for DiffFair: route each serving
//! tuple to the group model whose conformance constraints it violates
//! least, never consulting group membership at serving time.
//!
//! ```sh
//! cargo run --release --example insurance_drift
//! ```

use confair::core::{
    evaluate, ConFair, DiffFair, Intervention, MultiModel, NoIntervention, Pipeline,
};
use confair::datasets::synthgen::syn_drift_scaled;
use confair::learners::LearnerKind;

fn main() {
    let data = syn_drift_scaled(1, 0.25, 99);
    println!(
        "Syn1: {} tuples ({} majority / {} minority), labels 50/50 per group",
        data.len(),
        data.group_count(0),
        data.group_count(1)
    );
    println!("majority's positives sit at +X1; minority's positives at -X1.\n");

    let pipeline = Pipeline::paper_default();
    let methods: Vec<Box<dyn Intervention>> = vec![
        Box::new(NoIntervention),
        Box::new(ConFair::paper_default()),
        Box::new(MultiModel),
        Box::new(DiffFair::paper_default()),
    ];

    println!(
        "{:<16} {:>8} {:>8} {:>10} {:>10}",
        "method", "DI*", "BalAcc", "W-BalAcc", "U-BalAcc"
    );
    let mut rows = Vec::new();
    for method in &methods {
        let out = evaluate(&data, method.as_ref(), LearnerKind::Logistic, pipeline, 5)
            .expect("evaluation");
        println!(
            "{:<16} {:>8.3} {:>8.3} {:>10.3} {:>10.3}",
            out.report.method,
            out.report.di_star,
            out.report.balanced_accuracy,
            out.confusion.majority.balanced_accuracy(),
            out.confusion.minority.balanced_accuracy(),
        );
        rows.push(out);
    }

    let single = rows
        .iter()
        .find(|r| r.report.method == "NoIntervention")
        .unwrap();
    let diff = rows.iter().find(|r| r.report.method == "DiffFair").unwrap();
    println!(
        "\nthe single model serves the minority at {:.0}% balanced accuracy; DiffFair\nrecovers it to {:.0}% ({:+.3} overall BalAcc) —",
        100.0 * single.confusion.minority.balanced_accuracy(),
        100.0 * diff.confusion.minority.balanced_accuracy(),
        diff.report.balanced_accuracy - single.report.balanced_accuracy
    );
    println!("without ever reading the group attribute at serving time.");
}
