//! Online fairness-drift monitoring, end to end.
//!
//! A lender serves a credit model trained on reference data where both
//! groups share one geometry. Mid-stream, the minority's label-conditional
//! distribution rotates (the paper's drift-as-unfairness setting): the
//! stale model starts under-selecting qualified minority applicants, the
//! windowed disparate impact falls through the EEOC four-fifths floor, the
//! per-group Page–Hinkley detector trips on the conformance-violation
//! series, and the engine's retraining hook re-runs ConFair on the window —
//! restoring DI* above 0.8 without ever reading group membership at
//! serving time.
//!
//! ```sh
//! cargo run --release --example stream_monitor
//! ```

use confair::prelude::*;

fn main() {
    let spec = DriftStreamSpec {
        drift_onset: 6_000,
        ..DriftStreamSpec::default()
    };

    // 1. Bootstrap: reference data + ConFair-trained model + per-cell
    //    conformance profiles.
    let reference = spec.reference(4_000, 42);
    let config = StreamConfig {
        retrain: RetrainPolicy::OnAlert { min_window: 1_000 },
        ..StreamConfig::default()
    };
    let mut engine = StreamEngine::from_reference(&reference, LearnerKind::Logistic, 42, config)
        .expect("bootstrap from reference");
    println!(
        "bootstrapped from {} reference tuples (window = 2000, DI floor = 0.8)",
        reference.len()
    );
    println!("minority drift onset: tuple {}\n", spec.drift_onset);

    // 2. Serve the stream in micro-batches.
    let mut stream = DriftStream::new(spec, 7);
    let batch_size = 250;
    println!(
        "{:>8} {:>7} {:>9} {:>9} {:>10}  events",
        "tuple", "DI*", "viol(W)", "viol(U)", "floor"
    );
    for _ in 0..80 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(batch_size))
            .expect("numeric stream batch");
        let outcome = engine.ingest(&batch).expect("ingest");

        let events: Vec<String> = outcome
            .alerts
            .iter()
            .map(DriftAlert::to_string)
            .chain(
                outcome
                    .retrained
                    .then(|| "[RETRAIN] ConFair re-run on window".to_string()),
            )
            .collect();
        // Print a row every 1000 tuples, and always when something happened.
        if engine.tuples_seen().is_multiple_of(1_000) || !events.is_empty() {
            let s = &outcome.snapshot;
            let fmt = |v: Option<f64>| v.map_or("--".into(), |x| format!("{x:.3}"));
            println!(
                "{:>8} {:>7} {:>9} {:>9} {:>10}  {}",
                engine.tuples_seen(),
                fmt(s.di_star),
                fmt(s.violation_rate[0]),
                fmt(s.violation_rate[1]),
                match s.passes_di_floor() {
                    Some(true) => "ok",
                    Some(false) => "BREACHED",
                    None => "--",
                },
                events.join(" | "),
            );
        }
    }

    // 3. The verdict.
    let snapshot = engine.snapshot();
    println!("\nfinal window: {snapshot}");
    println!(
        "alerts: {} ({} retrain{})",
        engine.alerts().len(),
        engine.retrain_count(),
        if engine.retrain_count() == 1 { "" } else { "s" }
    );
    let di = snapshot.di_star.expect("both groups observed");
    assert!(
        !engine.alerts().is_empty() && di >= 0.8,
        "expected drift alerts plus a DI* recovery above 0.8, got DI* {di:.3}"
    );
    println!(
        "drift detected at tuple {} and repaired: DI* back to {di:.3} (>= 0.8)",
        engine.alerts().first().map(|a| a.at_tuple).unwrap_or(0),
    );
}
