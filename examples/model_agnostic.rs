//! Cross-model robustness: calibrate weights on one learner, deploy another.
//!
//! ConFair and OMN both tune their intervention degree against a model, but
//! claim the produced *weights* are model-agnostic. Fig. 7 tests that claim
//! by calibrating with XGB and training LR (and vice versa); ConFair stays
//! robust, OMN degrades. This example reproduces one panel of that story on
//! the employment (ACSE) simulator.
//!
//! ```sh
//! cargo run --release --example model_agnostic
//! ```

use confair::baselines::{omn::OmniFairConfig, OmniFair};
use confair::core::{
    confair::ConFairConfig, evaluate, ConFair, Intervention, NoIntervention, Pipeline,
};
use confair::datasets::realsim::RealWorldSpec;
use confair::learners::LearnerKind;

fn main() {
    let data = RealWorldSpec::by_name("ACSE")
        .expect("ACSE spec")
        .generate_scaled(0.04, 321);
    println!("ACSE simulator: {} tuples\n", data.len());
    let pipeline = Pipeline::paper_default();

    // Calibrate the weights assuming XGB, then *deploy* an LR model.
    let confair_cross: Box<dyn Intervention> = Box::new(ConFair::new(ConFairConfig {
        calibration_learner: Some(LearnerKind::Gbt),
        ..ConFairConfig::default()
    }));
    let omn_cross: Box<dyn Intervention> = Box::new(OmniFair::new(OmniFairConfig {
        calibration_learner: Some(LearnerKind::Gbt),
        ..OmniFairConfig::default()
    }));
    let base: Box<dyn Intervention> = Box::new(NoIntervention);

    println!("calibrated on XGB, deployed on LR:");
    println!(
        "{:<16} {:>8} {:>8} {:>8}",
        "method", "DI*", "AOD*", "BalAcc"
    );
    for method in [&base, &omn_cross, &confair_cross] {
        let out = evaluate(&data, method.as_ref(), LearnerKind::Logistic, pipeline, 17)
            .expect("evaluation");
        println!(
            "{:<16} {:>8.3} {:>8.3} {:>8.3}{}",
            out.report.method,
            out.report.di_star,
            out.report.aod_star,
            out.report.balanced_accuracy,
            if out.report.degenerate {
                "  [DEGENERATE]"
            } else {
                ""
            }
        );
    }
    println!("\nConFair's weights come from data conformance, not model output —");
    println!("so a learner swap after calibration costs it little.");
}
