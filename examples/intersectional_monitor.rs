//! Intersectional (K-ary) monitoring catches a subgroup drift that
//! pairwise binary monitoring provably misses.
//!
//! A lender's applicants carry two protected axes, `sex × race`
//! (2 × 4 = 8 intersection cells, flattened by [`GroupLayout`]). Drift
//! begins in exactly one intersection cell — (sex=1, race=2) — and then
//! spreads to the next cell on a staggered schedule: each drifting
//! cell's feature region rotates *onto the arc its sibling subgroups
//! already occupy*. The sex-level feature mixture therefore never
//! leaves its reference support, the sex-marginal selection rates
//! barely move, and a binary monitor collapsed onto the sex axis —
//! same window, same detector configuration — sees nothing: no
//! conformance alert, no DI-floor alert. The K=8 engine's *per-cell*
//! conformance profiles are tight around each subgroup's own geometry,
//! so the drifted cells' Page–Hinkley detectors fire, and only theirs.
//!
//! This is the monitoring gap the run demonstrates end to end: both
//! engines serve the identical tuple stream, and the program exits
//! non-zero unless the K-ary engine alerts on exactly the drifted
//! cells while the binary engine stays silent.
//!
//! ```sh
//! cargo run --release --example intersectional_monitor
//! ```

use confair::prelude::*;

fn main() {
    // sex (2) × race (4), row-major: cell = sex * 4 + race.
    let layout = GroupLayout::new(vec![2, 4]).expect("2x4 layout");
    let drifted = layout.cell_of(&[1, 2]).expect("sex=1, race=2");
    let next_hit = layout.cell_of(&[1, 3]).expect("sex=1, race=3");

    // Drift starts in (sex=1, race=2) at tuple 4,000 and spreads to
    // (sex=1, race=3) at 10,000. The −45° rotation swings each drifting
    // cell's offset onto a sibling subgroup's position on the sex=1 arc,
    // keeping the sex-level mixture inside its reference support.
    let spec = DriftStreamSpec {
        groups: layout.cells(),
        minority_fraction: 0.6,
        class_sep: 2.4,
        // A tight arc: the subgroup sub-regions stay close enough to the
        // shared geometry that one global model serves every cell near
        // selection parity before the drift.
        minority_offset: 0.5,
        drift_group: drifted,
        drift_onset: 4_000,
        onset_step: 6_000,
        drift_angle: -std::f64::consts::FRAC_PI_4,
        ..DriftStreamSpec::default()
    };

    // Identical monitoring configuration for both engines; only K
    // differs. Detector headroom over the binary default because
    // off-axis cells are served less cleanly by one global model.
    let detector = PageHinkleyConfig {
        delta: 0.05,
        lambda: 30.0,
        min_samples: 200,
        cooldown: 1_000,
    };
    let kary_config = StreamConfig {
        groups: layout.cells(),
        detector,
        retrain: RetrainPolicy::Never,
        ..StreamConfig::default()
    };
    let binary_config = StreamConfig {
        groups: 2,
        detector,
        retrain: RetrainPolicy::Never,
        ..StreamConfig::default()
    };

    // One reference sample; the binary engine sees the same rows with
    // the race axis collapsed away.
    let reference = spec.reference(6_000, 42);
    let sex_of = |cell: u8| layout.coords_of(cell)[0] as u8;
    let mut binary_reference = reference.clone();
    binary_reference
        .set_groups(reference.groups().iter().map(|&g| sex_of(g)).collect())
        .expect("same row count");

    let mut kary = StreamEngine::from_reference(&reference, LearnerKind::Logistic, 42, kary_config)
        .expect("K=8 bootstrap");
    let mut binary =
        StreamEngine::from_reference(&binary_reference, LearnerKind::Logistic, 42, binary_config)
            .expect("binary bootstrap");
    println!(
        "bootstrapped both engines from {} reference tuples (K=8 cells vs sex-only K=2)",
        reference.len()
    );
    println!(
        "drift: cell {drifted} (sex=1, race=2) at tuple {}, spreading to cell {next_hit} \
         (sex=1, race=3) at {}\n",
        spec.drift_onset,
        spec.drift_onset + spec.onset_step
    );

    // Serve the identical stream through both engines.
    let mut stream = DriftStream::new(spec, 7);
    println!(
        "{:>7} {:>9} {:>9} {:>10} {:>10}  K-ary events",
        "tuple", "DI*(K=8)", "DI*(K=2)", "viol(c6)", "viol(sex1)"
    );
    for round in 0..64 {
        let batch = stream.next_batch(250);
        let kary_tuples = StreamTuple::rows_from_dataset(&batch).expect("numeric batch");
        let binary_tuples: Vec<StreamTuple> = kary_tuples
            .iter()
            .map(|t| StreamTuple {
                group: sex_of(t.group),
                ..t.clone()
            })
            .collect();
        let k_out = kary.ingest(&kary_tuples).expect("K=8 ingest");
        let b_out = binary.ingest(&binary_tuples).expect("binary ingest");

        if round % 8 == 7 || !k_out.alerts.is_empty() {
            let fmt = |r: Option<f64>| r.map_or("-".into(), |v| format!("{v:.3}"));
            println!(
                "{:>7} {:>9} {:>9} {:>10} {:>10}  {}",
                kary.tuples_seen(),
                fmt(k_out.snapshot.di_star),
                fmt(b_out.snapshot.di_star),
                fmt(k_out.snapshot.violation_rate[drifted as usize]),
                fmt(b_out.snapshot.violation_rate[1]),
                k_out
                    .alerts
                    .iter()
                    .map(DriftAlert::to_string)
                    .collect::<Vec<_>>()
                    .join("; "),
            );
        }
        assert!(
            b_out.alerts.is_empty(),
            "binary monitoring was not supposed to see this drift: {:?}",
            b_out.alerts
        );
    }

    // The verdicts. K-ary conformance alerts exist and name only the
    // cells the spec drifted; the binary engine — same tuples, same
    // detector — raised nothing at all.
    let conformance: Vec<&DriftAlert> = kary
        .alerts()
        .iter()
        .filter(|a| a.kind == DriftKind::ConformanceViolation)
        .collect();
    assert!(
        conformance.iter().any(|a| a.group == drifted),
        "the first drifted cell must trip its detector"
    );
    assert!(
        conformance
            .iter()
            .all(|a| a.group == drifted || a.group == next_hit),
        "conformance alerts must stay confined to the drifted cells: {conformance:?}"
    );
    assert!(
        binary.alerts().is_empty(),
        "binary monitoring missed nothing?! {:?}",
        binary.alerts()
    );

    println!("\nK=8 engine: {} alert(s)", kary.alerts().len());
    for alert in kary.alerts() {
        let coords = layout.coords_of(alert.group);
        println!(
            "  {alert}   [cell {} = sex={}, race={}]",
            alert.group, coords[0], coords[1]
        );
    }
    println!(
        "K=2 engine: {} alert(s) — the subgroup drift is invisible once the race axis \
         is collapsed away",
        binary.alerts().len()
    );

    // Why the binary engine is structurally blind here, in numbers: the
    // arrival counters of the sex marginal are *exactly* the sums of the
    // intersection cells (additive counters, no second pass) — and that
    // sum is where the drifted cell's signal drowns.
    let marginal = layout
        .marginal(kary.window_counts(), 0)
        .expect("sex marginal");
    println!(
        "\nwindowed sex=1 marginal: {} tuples = {} across its four race cells",
        marginal[1].total,
        (4..8)
            .map(|c| kary.window_counts()[c].total.to_string())
            .collect::<Vec<_>>()
            .join(" + ")
    );
    let k_snap = kary.snapshot();
    let b_snap = binary.snapshot();
    println!(
        "final worst-pair DI*: K=8 {} vs sex-only {}",
        k_snap.di_star.map_or("-".into(), |v| format!("{v:.3}")),
        b_snap.di_star.map_or("-".into(), |v| format!("{v:.3}")),
    );
    println!("\nOK: single-subgroup drift alerted at K=8, provably silent at K=2.");
}
