//! Serve-time repair: a drift that breaks the EEOC 0.8 floor is healed
//! by the ladder's first rung — per-cell threshold nudges costing
//! microseconds of repair work — with **zero** retrains.
//!
//! The repair escalation ladder gives the engine three rungs: nudge the
//! disadvantaged cell's margin cutoff (µs, label-free), route margins
//! through the DiffFair conformance projection (ms), and only as a last
//! resort run a full ConFair retrain. This example stays on rung one:
//! the stream's minority cell drifts, windowed DI* falls through the
//! floor, the ladder opens a `threshold_nudge` episode, and a handful
//! of cutoff shifts lift DI* back over 0.8 while the model itself is
//! never touched. The audit trail carries the whole episode — every
//! threshold move with the full per-cell vector, and the `recovered`
//! close with the episode's accumulated repair work in microseconds.
//!
//! ```sh
//! cargo run --release --example serve_time_repair
//! ```

use confair::prelude::*;
use confair_core::confair::AlphaMode;
use std::sync::{Arc, Mutex};

fn main() {
    // 1. A binary stream whose minority cell drifts at tuple 350: the
    //    stale model's decisions turn disparate, exactly the non-invasive
    //    repair target the ladder's cheap rungs exist for.
    let spec = DriftStreamSpec {
        drift_onset: 350,
        ..DriftStreamSpec::default()
    };
    let reference = spec.reference(900, 23);

    // 2. Ladder on, retraining *off*: `RetrainPolicy::Never` proves the
    //    recovery below owes nothing to tier 3, and the generous patience
    //    keeps the episode on tier 1 for as long as it needs.
    let config = StreamConfig {
        window: 128,
        di_floor: 0.8,
        floor_min_window: 48,
        floor_cooldown: 300,
        retrain: RetrainPolicy::Never,
        repair: RepairConfig {
            ladder: true,
            tier_patience: 200,
            nudge_step: 0.25,
            nudge_max: 6.0,
            recovery_hold: 2,
            ..RepairConfig::default()
        },
        confair: ConFairConfig {
            alpha: AlphaMode::Fixed {
                alpha_u: 2.0,
                alpha_w: 1.0,
            },
            ..ConFairConfig::default()
        },
        ..StreamConfig::default()
    };
    let mut engine = StreamEngine::from_reference(&reference, LearnerKind::Logistic, 23, config)
        .expect("bootstrap from reference");
    let ring = Arc::new(Mutex::new(RingSink::new(1 << 14)));
    let sink: SharedSink = ring.clone();
    engine.set_sink(sink);

    // 3. Serve through the drift. Track when the floor breaks, when the
    //    ladder opens its episode, and when DI* recrosses the floor.
    let mut stream = DriftStream::new(spec, 9);
    let mut episode_opened = false;
    let mut recrossed = false;
    for round in 0..40u32 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(64)).expect("numeric batch");
        let outcome = engine.ingest(&batch).expect("ingest");
        if !episode_opened && engine.repair_tier() == Some(RepairTier::ThresholdNudge) {
            episode_opened = true;
            println!(
                "round {:>2}: DI* fell through the floor — tier-1 episode opened",
                round + 1
            );
        }
        if episode_opened && !recrossed && outcome.snapshot.passes_di_floor() == Some(true) {
            recrossed = true;
            println!(
                "round {:>2}: DI* back over 0.8 under thresholds {:?}",
                round + 1,
                engine.repair_thresholds()
            );
        }
    }

    // 4. The verdict, asserted: the drift was repaired at serve time, in
    //    microseconds of repair work, without a single retrain.
    assert!(episode_opened, "the drift must open a tier-1 episode");
    assert!(recrossed, "nudges alone must lift DI* back over the floor");
    assert_eq!(
        engine.retrain_count(),
        0,
        "zero retrains — that's the point"
    );
    assert!(
        engine.repair_thresholds().iter().any(|&t| t < 0.0),
        "the repair lives in the threshold vector"
    );

    let events = ring.lock().unwrap().events();
    let nudges = events
        .iter()
        .filter(|e| matches!(e, TelemetryEvent::ThresholdChange(_)))
        .count();
    let recovery_us = events
        .iter()
        .find_map(|e| match e {
            TelemetryEvent::RepairEnd(s)
                if s.tier == "threshold_nudge" && s.outcome == "recovered" =>
            {
                Some(s.duration_us)
            }
            _ => None,
        })
        .expect("the episode closes as recovered on the trail");
    assert!(nudges > 0, "every threshold move is audited");

    println!(
        "\nrecovered: {nudges} threshold nudges, {recovery_us}us of repair work, \
         {} retrains, final thresholds {:?}",
        engine.retrain_count(),
        engine.repair_thresholds()
    );
    println!("a full ConFair retrain on this window costs milliseconds — the ladder's first rung repaired the same breach for {recovery_us}us");
}
