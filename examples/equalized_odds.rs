//! Targeting Equalized Odds: ConFair beyond disparate impact.
//!
//! §III-B: "to optimize Equalized Odds by FNR, set α_u to a positive value
//! and α_w to zero; ConFair then only increases the weights of tuples within
//! the minority group associated with positive labels, thus decreasing the
//! FNR." This example sweeps α_u on the MEPS simulator for both EqOdds
//! targets and prints the per-group rates converging — the Fig. 8b/8c
//! monotone curves.
//!
//! ```sh
//! cargo run --release --example equalized_odds
//! ```

use confair::core::{
    confair::{AlphaMode, ConFairConfig, FairnessTarget},
    evaluate, ConFair, Pipeline,
};
use confair::datasets::realsim::RealWorldSpec;
use confair::learners::LearnerKind;

fn main() {
    let data = RealWorldSpec::by_name("MEPS")
        .expect("MEPS spec")
        .generate_scaled(0.12, 555);
    println!("MEPS simulator: {} tuples", data.len());
    let pipeline = Pipeline::paper_default();

    for target in [FairnessTarget::EqOddsFnr, FairnessTarget::EqOddsFpr] {
        println!(
            "\ntarget: Equalized Odds by {}",
            match target {
                FairnessTarget::EqOddsFnr => "FNR",
                FairnessTarget::EqOddsFpr => "FPR",
                FairnessTarget::DisparateImpact => unreachable!(),
            }
        );
        println!(
            "{:>8} {:>10} {:>10} {:>8}",
            "alpha_u", "minority", "majority", "BalAcc"
        );
        for alpha in [0.0, 1.0, 4.0, 16.0, 64.0] {
            let confair = ConFair::new(ConFairConfig {
                alpha: AlphaMode::Fixed {
                    alpha_u: alpha,
                    alpha_w: 0.0,
                },
                target,
                ..ConFairConfig::default()
            });
            let out =
                evaluate(&data, &confair, LearnerKind::Logistic, pipeline, 31).expect("evaluation");
            let (u, w) = match target {
                FairnessTarget::EqOddsFnr => {
                    (out.confusion.minority.fnr(), out.confusion.majority.fnr())
                }
                _ => (out.confusion.minority.fpr(), out.confusion.majority.fpr()),
            };
            println!(
                "{:>8} {:>10.3} {:>10.3} {:>8.3}",
                alpha, u, w, out.report.balanced_accuracy
            );
        }
    }
    println!("\nhigher alpha_u pulls the minority's error rate toward the majority's,");
    println!("monotonically — which is what makes the knob tunable in practice.");
}
