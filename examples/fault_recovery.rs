//! Supervised recovery under injected faults: serving survives monitor
//! crashes and failed retrains, and the audit trail accounts for both.
//!
//! A deterministic [`FaultPlan`] is injected into an async engine's
//! seams: the monitor thread is scheduled to panic twice mid-stream, and
//! the first repair episode's retrain attempts are scheduled to fail
//! until the retry budget is exhausted. The supervisor respawns each
//! dead monitor from its last coherent recovery clone (recording the
//! unmonitored gap on the trail), and the exhausted repair episode flips
//! the engine into degraded mode — stale model, serving uninterrupted —
//! until the next successful retrain clears it. At the end, the trail's
//! `monitor_restart` and `degraded_mode` events must reconcile exactly
//! with the engine's own counters.
//!
//! ```sh
//! cargo run --release --example fault_recovery
//! ```

use confair::prelude::*;
use confair::stream::{FaultKind, FaultPlan, MonitorPanics, RetrainFaults};
use std::sync::{Arc, Mutex};

fn main() {
    let spec = DriftStreamSpec::default();

    // 1. Bootstrap an engine whose DI* floor sits above what the stream
    //    delivers, so repair episodes trigger once the floor check arms
    //    (at 1,200 window tuples — after both scheduled monitor deaths,
    //    keeping the two failure narratives distinct). The repair budget
    //    is two zero-backoff attempts per episode.
    let reference = spec.reference(4_000, 42);
    let config = StreamConfig {
        di_floor: 0.99,
        floor_min_window: 1_200,
        floor_cooldown: 256,
        retrain: RetrainPolicy::OnAlert { min_window: 48 },
        repair: RepairConfig {
            max_attempts: 2,
            backoff_base_ms: 0,
            backoff_max_ms: 0,
            ..RepairConfig::default()
        },
        window: 2_000,
        ..StreamConfig::default()
    };
    let mut engine = StreamEngine::from_reference(&reference, LearnerKind::Logistic, 42, config)
        .expect("bootstrap from reference");

    // 2. The audit trail and the fault plan. Faults are schedules, not
    //    probabilities: the monitor thread dies at observed batches 3 and
    //    9, and the first two retrain attempts error out — so the first
    //    repair episode exhausts its budget and every later one succeeds.
    let ring = Arc::new(Mutex::new(RingSink::new(1 << 14)));
    let sink: SharedSink = ring.clone();
    engine.set_sink(sink);
    engine.inject_faults(
        FaultPlan::new()
            .with_retrain(RetrainFaults::fail_first(2, FaultKind::Error))
            .with_monitor_panics(MonitorPanics::at_batches(vec![3, 9])),
    );

    // 3. Wrap it in a supervised async engine: three respawns budgeted,
    //    zero respawn backoff, a recovery clone refreshed every 4 batches
    //    (so each death loses at most 4 batches of monitoring).
    let mut async_engine = AsyncEngine::from_engine(
        engine,
        AsyncConfig {
            queue_depth: 32,
            backpressure: BackpressurePolicy::Block,
            supervisor: SupervisorConfig {
                max_restarts: 3,
                backoff_base_ms: 0,
                backoff_max_ms: 0,
                snapshot_every: 4,
                ..SupervisorConfig::default()
            },
        },
    );
    println!("fault plan: monitor panics at batches 3 and 9; first 2 retrain attempts fail");
    println!("supervisor: 3 restarts budgeted, recovery clone every 4 batches\n");

    // 4. Serve 60 batches straight through the crashes. Every call must
    //    return decisions — the caller never sees a panic, a dead thread,
    //    or a failed retrain.
    let mut stream = DriftStream::new(spec, 7);
    let batch_size = 100;
    for round in 0..60u32 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(batch_size))
            .expect("numeric stream batch");
        let decisions = async_engine.ingest_owned(batch).expect("serving survives");
        assert_eq!(decisions.len(), batch_size);
        if (round + 1) % 12 == 0 {
            println!(
                "{:>6} scored  health {:?}  restarts {}  gap {}  degraded {}",
                async_engine.tuples_scored(),
                async_engine.health(),
                async_engine.monitor_restarts(),
                async_engine.monitor_gap_tuples(),
                async_engine.is_degraded(),
            );
        }
    }

    // 5. Barrier, then reconcile the trail against the engine. Every
    //    death must be audited with its gap, and the degraded narrative
    //    (entered on budget exhaustion, cleared by the next success,
    //    rolled back by a restart's re-anchor) must replay to the
    //    engine's final flag.
    async_engine.flush().expect("flush");
    assert_eq!(async_engine.monitor_lag(), 0, "flush drains to quiescence");

    let events = ring.lock().unwrap().events();
    let mut gap_sum = 0;
    let mut degraded = false;
    let mut entered_count = 0u32;
    println!();
    for event in &events {
        match event {
            TelemetryEvent::MonitorRestart(e) => {
                gap_sum += e.gap_tuples;
                degraded = e.degraded;
                println!(
                    "trail: monitor restart #{} — resumed from tuple {}, {} tuples unmonitored",
                    e.restarts, e.resumed_from, e.gap_tuples
                );
            }
            TelemetryEvent::DegradedMode(e) => {
                degraded = e.entered;
                entered_count += u32::from(e.entered);
                if e.entered {
                    println!(
                        "trail: degraded mode entered at tuple {} after {} attempts ({})",
                        e.at_tuple,
                        e.attempts,
                        e.error.as_deref().unwrap_or("?"),
                    );
                } else {
                    println!(
                        "trail: degraded mode cleared at tuple {} (retrain #{})",
                        e.at_tuple, e.retrains
                    );
                }
            }
            _ => {}
        }
    }

    // 6. The verdict: both deaths supervised and accounted, the failed
    //    episode surfaced and recovered from, and the monitor fully
    //    caught up — all without one serving error.
    assert_eq!(async_engine.health(), ShardHealth::Live);
    assert_eq!(async_engine.monitor_restarts(), 2, "both deaths respawned");
    assert_eq!(
        gap_sum,
        async_engine.monitor_gap_tuples(),
        "every unmonitored tuple is on the trail"
    );
    assert!(entered_count >= 1, "the exhausted episode must be audited");
    assert_eq!(
        degraded,
        async_engine.is_degraded(),
        "the trail replays the engine's degraded flag"
    );
    assert_eq!(
        async_engine.retrain_failure_count(),
        1,
        "one episode (of two attempts) failed"
    );
    assert!(
        !async_engine.is_degraded(),
        "a later successful retrain cleared degraded mode"
    );
    assert!(async_engine.retrain_count() >= 1);
    println!(
        "\nserved {} tuples through 2 monitor crashes and 1 exhausted repair episode:",
        async_engine.tuples_scored()
    );
    println!(
        "  restarts {}  gap {} tuples (audited)  retrain failures {}  retrains {}  health {:?}",
        async_engine.monitor_restarts(),
        async_engine.monitor_gap_tuples(),
        async_engine.retrain_failure_count(),
        async_engine.retrain_count(),
        async_engine.health(),
    );
}
