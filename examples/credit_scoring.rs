//! Credit-scoring scenario: reweighing under gradient boosted trees.
//!
//! Uses the Credit simulator (Kaggle "Give Me Some Credit" statistics:
//! 120k applicants, minority = age<35, ~6% base delinquency rate) and
//! compares ConFair against Kamiran–Calders reweighing and no intervention,
//! all under the XGBoost-style learner — the Fig. 5d setting.
//!
//! ```sh
//! cargo run --release --example credit_scoring
//! ```

use confair::baselines::KamiranCalders;
use confair::core::{
    evaluate_repeated, pipeline::mean_report, ConFair, Intervention, NoIntervention, Pipeline,
};
use confair::datasets::realsim::RealWorldSpec;
use confair::learners::LearnerKind;

fn main() {
    let spec = RealWorldSpec::by_name("Credit").expect("Credit spec");
    // 8% of the paper's 120k rows keeps this example under a minute.
    let data = spec.generate_scaled(0.08, 2024);
    println!(
        "Credit simulator: {} applicants, {:.1}% under-35, {:.1}% delinquent",
        data.len(),
        100.0 * data.summary().minority_fraction,
        100.0 * data.labels().iter().filter(|&&y| y == 1).count() as f64 / data.len() as f64,
    );

    let pipeline = Pipeline::paper_default();
    let methods: Vec<Box<dyn Intervention>> = vec![
        Box::new(NoIntervention),
        Box::new(KamiranCalders),
        Box::new(ConFair::paper_default()),
    ];

    println!(
        "\n{:<16} {:>8} {:>8} {:>8}",
        "method", "DI*", "AOD*", "BalAcc"
    );
    for method in &methods {
        let outcomes = evaluate_repeated(&data, method.as_ref(), LearnerKind::Gbt, pipeline, 11, 3)
            .expect("evaluation");
        let mean = mean_report(&outcomes);
        println!(
            "{:<16} {:>8.3} {:>8.3} {:>8.3}{}",
            mean.method,
            mean.di_star,
            mean.aod_star,
            mean.balanced_accuracy,
            if mean.favors_minority {
                "  (favors minority)"
            } else {
                ""
            }
        );
    }
    println!("\nWeighting is non-invasive: the applicants' records were never modified.");
}
