//! Delayed and partial label feedback, end to end.
//!
//! Real serving rarely gets ground truth with the request: a credit
//! decision's true outcome arrives months later, and some outcomes are
//! never observed at all. This example drives the two-plane engine through
//! exactly that regime: every tuple is served **unlabeled**, labels trail
//! by thousands of tuples (10% never arrive), and mid-stream the
//! minority's distribution drifts.
//!
//! The point the run proves: drift is caught from the **decision plane
//! alone** — the conformance detector fires before a single label has
//! joined — while the label-dependent monitors (equal-opportunity gap,
//! TPR) stay honestly `--` instead of reading a fabricated 0, and switch
//! on only as feedback joins through the pending-join index.
//!
//! ```sh
//! cargo run --release --example delayed_labels
//! ```

use confair::prelude::*;

fn main() {
    let spec = DriftStreamSpec {
        drift_onset: 5_000,
        // Ground truth trails serving by 6k–9k tuples, and 10% of it
        // never arrives — well past the drift detection point.
        label_delay: LabelDelay::Uniform {
            min: 6_000,
            max: 9_000,
        },
        missing_label_rate: 0.10,
        ..DriftStreamSpec::default()
    };

    // Bootstrap from labeled reference data (training always has ground
    // truth; it is the live stream that does not).
    let reference = spec.reference(4_000, 42);
    let config = StreamConfig {
        window: 2_000,
        // Size the pending-join index for the label lag beyond the
        // window: delays reach 9k tuples, the window holds 2k.
        pending_labels: 8_192,
        ..StreamConfig::default()
    };
    let mut engine = StreamEngine::from_reference(&reference, LearnerKind::Logistic, 42, config)
        .expect("bootstrap from reference");
    println!(
        "bootstrapped from {} reference tuples; drift onset at tuple {}, labels trail by 6k-9k\n",
        reference.len(),
        spec.drift_onset
    );

    let mut stream = DelayedLabelStream::new(spec, 7);
    let mut first_alert_at = None;
    let mut labels_joined_at_first_alert = None;
    let mut eo_activated_at = None;

    println!(
        "{:>7} {:>7} {:>8} {:>8} {:>8} {:>9}  events",
        "tuple", "DI*", "eo_gap", "labels", "pending", "viol(U)"
    );
    for _ in 0..80 {
        let (batch, due) = stream.next_batch(250);
        let unlabeled =
            StreamTuple::rows_unlabeled_from_dataset(&batch).expect("numeric stream batch");
        let outcome = engine.ingest(&unlabeled).expect("ingest");
        if !outcome.alerts.is_empty() && first_alert_at.is_none() {
            first_alert_at = Some(engine.tuples_seen());
            labels_joined_at_first_alert = Some(engine.join_stats().joined);
        }

        // Whatever ground truth has come due joins the label plane now.
        let feedback: Vec<LabelFeedback> = due
            .into_iter()
            .map(|(id, label)| LabelFeedback { id, label })
            .collect();
        let joined = engine.feedback(&feedback).expect("feedback join");
        if eo_activated_at.is_none() && joined.snapshot.equal_opportunity_gap.is_some() {
            eo_activated_at = Some(engine.tuples_seen());
        }

        let events: Vec<String> = outcome.alerts.iter().map(DriftAlert::to_string).collect();
        if engine.tuples_seen().is_multiple_of(2_500) || !events.is_empty() {
            let s = &joined.snapshot;
            let fmt = |v: Option<f64>| v.map_or("--".into(), |x| format!("{x:.3}"));
            println!(
                "{:>7} {:>7} {:>8} {:>8} {:>8} {:>9}  {}",
                engine.tuples_seen(),
                fmt(s.di_star),
                fmt(s.equal_opportunity_gap),
                s.labeled[0] + s.labeled[1],
                engine.pending_labels(),
                fmt(s.violation_rate[1]),
                events.join(" | "),
            );
        }
    }

    let joins = engine.join_stats();
    println!(
        "\nfinal: {joins}; {} withheld forever, {} still outstanding",
        stream.withheld(),
        stream.outstanding() as u64 + engine.pending_labels() as u64,
    );

    // The verdict: drift was caught from decisions alone…
    let alert_at = first_alert_at.expect("the injected drift must raise an alert");
    let joined_then = labels_joined_at_first_alert.expect("recorded with the alert");
    assert_eq!(
        joined_then, 0,
        "decision-plane detection must precede every label join"
    );
    assert!(
        alert_at > spec.drift_onset,
        "no alert before the drift onset (got {alert_at})"
    );
    // …and the EO monitor activated only once ground truth joined.
    let eo_at = eo_activated_at.expect("feedback joins must activate the EO monitor");
    assert!(
        eo_at > alert_at,
        "EO activated at {eo_at}, after the decision-plane alert at {alert_at}"
    );
    assert!(
        joins.joined_late > 0,
        "labels older than the window must join via the pending index"
    );
    println!(
        "drift detected at tuple {alert_at} with 0 labels joined; \
         EO monitoring activated at tuple {eo_at} as feedback joined"
    );
}
