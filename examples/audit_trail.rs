//! The telemetry plane end to end: a replayable audit trail plus live
//! Prometheus metrics, wrapped around the drift-repair loop.
//!
//! Every decision the monitor takes — each ingested batch, each drift
//! alert (with its moved-cell explanation), each repair attempt and the
//! model swap that publishes it, the final checkpoint — lands as one
//! typed JSON line in `target/audit_trail.jsonl`. The run then proves the
//! trail is *evidence*, not logging: replaying the file reconstructs the
//! byte-identical fairness snapshot and alert sequence the live engine
//! reported, so an auditor can verify months later exactly what the
//! monitor saw when it intervened. The same events feed a metrics
//! registry rendered in Prometheus text format.
//!
//! ```sh
//! cargo run --release --example audit_trail
//! ```

use confair::prelude::*;

fn main() {
    let spec = DriftStreamSpec {
        drift_onset: 6_000,
        ..DriftStreamSpec::default()
    };

    // 1. Bootstrap the engine, then install the telemetry plane: an
    //    append-only JSONL sink (fsynced on every alert) and a metrics
    //    registry. Neither touches the fairness math — pure observation.
    let reference = spec.reference(4_000, 42);
    let config = StreamConfig {
        retrain: RetrainPolicy::OnAlert { min_window: 1_000 },
        ..StreamConfig::default()
    };
    let mut engine = StreamEngine::from_reference(&reference, LearnerKind::Logistic, 42, config)
        .expect("bootstrap from reference");

    std::fs::create_dir_all("target").expect("create target/");
    let trail_path = std::path::Path::new("target/audit_trail.jsonl");
    let sink = shared_sink(JsonlSink::create(trail_path).expect("create audit trail"));
    engine.set_sink(sink.clone());
    let registry = MetricsRegistry::new();
    engine.install_metrics(&registry);
    println!(
        "audit trail -> {} ; metrics registry installed\n",
        trail_path.display()
    );

    // 2. Serve the drifting stream and keep our own record of what the
    //    engine reported live — the replay must reproduce exactly this.
    let mut stream = DriftStream::new(spec, 7);
    let mut live_snapshots = Vec::new();
    for _ in 0..80 {
        let batch =
            StreamTuple::rows_from_dataset(&stream.next_batch(250)).expect("numeric stream batch");
        let out = engine.ingest(&batch).expect("ingest");
        live_snapshots.push(out.snapshot.to_data());
        for alert in &out.alerts {
            println!("{:>7}  {alert}", engine.tuples_seen());
        }
        if out.retrained {
            println!(
                "{:>7}  [RETRAIN] ConFair repair + model swap audited",
                engine.tuples_seen()
            );
        }
    }
    // The checkpoint is audited too (phase "taken", absolute counters).
    let _ckpt = engine.checkpoint().expect("checkpoint");
    sink.lock().unwrap().flush();

    // 3. Replay the file. The contract: byte-identical snapshot and alert
    //    sequences, and the final counters recompute the live reading.
    let run = replay_file(trail_path).expect("replay audit trail");
    assert_eq!(
        run.snapshots, live_snapshots,
        "replayed snapshots must match the live run byte for byte"
    );
    let live_alerts: Vec<AlertData> = engine
        .alerts()
        .iter()
        .map(|a| AlertData {
            kind: a.kind.wire_name().to_string(),
            group: a.group,
            at_tuple: a.at_tuple,
            statistic: a.statistic,
            threshold: a.threshold,
        })
        .collect();
    assert_eq!(run.alerts, live_alerts, "replayed alerts must match");
    assert_eq!(
        FairnessSnapshot::from_data(run.snapshots.last().expect("non-empty run").clone()),
        engine.snapshot(),
        "the last replayed snapshot is the engine's current reading"
    );
    assert!(!run.alerts.is_empty(), "the injected drift must be audited");
    assert_eq!(run.retrains, engine.retrain_count());
    println!(
        "\nreplayed {} events -> {} snapshots, {} alerts, {} retrains: all byte-identical to the live run",
        run.events,
        run.snapshots.len(),
        run.alerts.len(),
        run.retrains,
    );

    // 4. Show the evidence: the first drift-alert line carries the full
    //    moved-cell explanation an auditor would read.
    let trail = std::fs::read_to_string(trail_path).expect("read trail");
    if let Some(line) = trail
        .lines()
        .find(|l| l.contains("\"event\":\"drift_alert\""))
    {
        println!("\nfirst alert on disk:\n  {line}");
    }

    // 5. And the live metrics, Prometheus text format (histogram buckets
    //    elided here; `render()` emits the full exposition).
    let metrics = engine.metrics().expect("metrics installed");
    println!(
        "\ningest latency: p50 {:.0}µs  p99 {:.0}µs over {} batches",
        metrics.ingest_latency_us.quantile(0.5).unwrap_or(0.0),
        metrics.ingest_latency_us.quantile(0.99).unwrap_or(0.0),
        metrics.ingest_batches.get(),
    );
    for line in registry
        .render()
        .lines()
        .filter(|l| !l.starts_with('#') && !l.contains("bucket"))
    {
        println!("  {line}");
    }
}
