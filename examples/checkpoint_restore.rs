//! Checkpoint/restore, end to end: a monitor survives a process restart
//! with **zero** warm-up gap.
//!
//! A lender's fairness monitor has been serving for a while when the
//! process must restart (deploy, crash, node drain). Without durable
//! state, the restarted monitor would come back with an empty window and
//! cold Page–Hinkley detectors — blind for thousands of tuples exactly
//! when the minority's distribution is drifting. Here the engine and the
//! stream position are checkpointed to JSON, the process "crashes"
//! (everything is dropped), and the restored engine is proven
//! bit-identical to a twin that never stopped: same decisions, same
//! snapshots, same alerts, at the same stream positions.
//!
//! ```sh
//! cargo run --release --example checkpoint_restore
//! ```

use confair::prelude::*;
use confair_core::confair::AlphaMode;

fn main() {
    let spec = DriftStreamSpec {
        drift_onset: 5_000,
        ..DriftStreamSpec::default()
    };
    // Fixed-α ConFair keeps the bootstrap quick; everything else is the
    // stream_monitor configuration.
    let config = StreamConfig {
        retrain: RetrainPolicy::OnAlert { min_window: 1_000 },
        confair: ConFairConfig {
            alpha: AlphaMode::Fixed {
                alpha_u: 2.0,
                alpha_w: 1.0,
            },
            ..ConFairConfig::default()
        },
        ..StreamConfig::default()
    };
    let reference = spec.reference(4_000, 42);
    let mut engine = StreamEngine::from_reference(&reference, LearnerKind::Logistic, 42, config)
        .expect("bootstrap from reference");
    let mut stream = DriftStream::new(spec, 7);

    // ---- Phase 1: serve 4 000 tuples, then checkpoint. -------------------
    let batch_size = 250;
    for _ in 0..16 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(batch_size))
            .expect("numeric stream batch");
        engine.ingest(&batch).expect("ingest");
    }
    let ckpt_path = std::env::temp_dir().join("cf_engine_checkpoint.json");
    let stream_path = std::env::temp_dir().join("cf_stream_checkpoint.json");
    let engine_doc = engine.checkpoint().expect("checkpoint").to_json_pretty();
    std::fs::write(&ckpt_path, &engine_doc).expect("write engine checkpoint");
    std::fs::write(
        &stream_path,
        serde_json::to_string_pretty(&stream.checkpoint()).expect("serialise stream"),
    )
    .expect("write stream checkpoint");
    println!(
        "checkpointed at tuple {}: {} ({:.1} KiB) + {}",
        engine.tuples_seen(),
        ckpt_path.display(),
        engine_doc.len() as f64 / 1024.0,
        stream_path.display(),
    );

    // The uninterrupted twin keeps running; the original "process" dies.
    let mut twin = engine;
    let mut twin_stream = stream;

    // ---- Phase 2: restart from disk. -------------------------------------
    let restored_doc = std::fs::read_to_string(&ckpt_path).expect("read checkpoint");
    let mut restored =
        StreamEngine::restore(EngineCheckpoint::from_json(&restored_doc).expect("parse"))
            .expect("restore engine");
    let stream_ckpt: DriftStreamCheckpoint = serde_json::from_str(
        &std::fs::read_to_string(&stream_path).expect("read stream checkpoint"),
    )
    .expect("parse stream checkpoint");
    let mut restored_stream = DriftStream::restore(&stream_ckpt).expect("restore stream");
    println!(
        "restored at tuple {} — window {} tuples, detectors warm, {} prior alert(s) retained\n",
        restored.tuples_seen(),
        restored.window_len(),
        restored.alerts().len(),
    );

    // ---- Phase 3: serve through the drift; prove bit-identity. -----------
    println!("{:>8} {:>7}  events (restored engine)", "tuple", "DI*");
    for _ in 0..24 {
        let live = twin_stream.next_batch(batch_size);
        let replayed = restored_stream.next_batch(batch_size);
        assert_eq!(live, replayed, "resumed stream replays the same tuples");

        let batch = StreamTuple::rows_from_dataset(&live).expect("numeric stream batch");
        let a = twin.ingest(&batch).expect("twin ingest");
        let b = restored.ingest(&batch).expect("restored ingest");
        assert_eq!(a.decisions, b.decisions, "served decisions diverged");
        assert_eq!(a.alerts, b.alerts, "alerts diverged");
        assert_eq!(a.snapshot, b.snapshot, "snapshots diverged");
        assert_eq!(a.retrained, b.retrained, "retrain behaviour diverged");

        if !b.alerts.is_empty() || b.retrained {
            let events: Vec<String> = b
                .alerts
                .iter()
                .map(DriftAlert::to_string)
                .chain(b.retrained.then(|| "[RETRAIN] ConFair re-run".to_string()))
                .collect();
            let di = b
                .snapshot
                .di_star
                .map_or("--".into(), |d| format!("{d:.3}"));
            println!(
                "{:>8} {:>7}  {}",
                restored.tuples_seen(),
                di,
                events.join(" | ")
            );
        }
    }

    assert_eq!(twin.alerts(), restored.alerts(), "alert logs diverged");
    assert_eq!(
        twin.window_counts(),
        restored.window_counts(),
        "window counters diverged"
    );
    assert!(
        !restored.alerts().is_empty(),
        "the drift past the checkpoint must be detected"
    );
    println!(
        "\nverdict: {} tuples served post-restore, {} alert(s), {} retrain(s) — \
         bit-identical to the engine that never stopped",
        restored.tuples_seen() - 4_000,
        restored.alerts().len(),
        restored.retrain_count(),
    );
    println!("final window: {}", restored.snapshot());
}
