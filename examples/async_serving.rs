//! Asynchronous serving under drift: decisions keep flowing while the
//! monitor retrains.
//!
//! The same scenario as `stream_monitor` — a credit model's minority group
//! drifts mid-stream, the conformance detectors trip, and on-alert ConFair
//! retraining repairs the disparate impact — but served through the
//! [`AsyncEngine`]: `ingest` returns after the forward pass, the window /
//! Page–Hinkley / retrain work runs on a background monitor thread behind
//! a bounded queue, and the retrained model is published back to the
//! scorer through an atomically-swapped slot. A synchronous twin engine is
//! driven over the *same* batches for contrast: its worst ingest call
//! swallows a whole ConFair retrain, while the async engine's serving
//! latency stays flat through the very same repair.
//!
//! ```sh
//! cargo run --release --example async_serving
//! ```

use confair::prelude::*;
use std::time::Instant;

fn main() {
    let spec = DriftStreamSpec {
        drift_onset: 6_000,
        ..DriftStreamSpec::default()
    };

    // 1. Bootstrap twins from the same reference and seed: identical
    //    models, identical conformance profiles — the only difference is
    //    where the monitoring work runs.
    let reference = spec.reference(4_000, 42);
    let config = StreamConfig {
        retrain: RetrainPolicy::OnAlert { min_window: 1_000 },
        ..StreamConfig::default()
    };
    let mut sync_engine =
        StreamEngine::from_reference(&reference, LearnerKind::Logistic, 42, config.clone())
            .expect("bootstrap sync engine");
    let mut async_engine = AsyncEngine::from_engine(
        StreamEngine::from_reference(&reference, LearnerKind::Logistic, 42, config)
            .expect("bootstrap async twin"),
        AsyncConfig {
            queue_depth: 64,
            backpressure: BackpressurePolicy::Block,
            ..AsyncConfig::default()
        },
    );
    println!(
        "bootstrapped twins from {} reference tuples (window = 2000, DI floor = 0.8)",
        reference.len()
    );
    println!(
        "minority drift onset: tuple {}; async queue depth 64, policy Block\n",
        spec.drift_onset
    );

    // 2. Serve the same stream through both engines, timing every call.
    //    Arrivals are paced at one micro-batch per interval — serving has
    //    an arrival rate; an unthrottled loop would shove the whole
    //    stream into the queue before the first repair could land.
    let mut stream = DriftStream::new(spec, 7);
    let batch_size = 250;
    let interval = std::time::Duration::from_millis(8); // ≈31k tuples/sec
    let mut sync_lat_us = Vec::new();
    let mut async_lat_us = Vec::new();
    println!(
        "{:>8} {:>10} {:>11} {:>7} {:>5}  events (async side)",
        "tuple", "sync µs", "async µs", "DI*", "lag"
    );
    let started = Instant::now();
    for round in 0..80u32 {
        if let Some(wait) = (interval * round).checked_sub(started.elapsed()) {
            std::thread::sleep(wait);
        }
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(batch_size))
            .expect("numeric stream batch");

        let call = Instant::now();
        let sync_out = sync_engine.ingest(&batch).expect("sync ingest");
        let sync_us = call.elapsed().as_secs_f64() * 1e6;
        sync_lat_us.push(sync_us);

        let call = Instant::now();
        let decisions = async_engine.ingest_owned(batch).expect("async ingest");
        let async_us = call.elapsed().as_secs_f64() * 1e6;
        async_lat_us.push(async_us);
        // Free-running twins serve identically until the first retrain;
        // after it the async side swaps the repaired model in a few
        // batches later (the monitor's lag), so the twins may briefly
        // diverge — byte-identity under `flush` barriers is pinned by the
        // `async_equivalence` property tests, not here.
        assert_eq!(decisions.len(), sync_out.decisions.len());

        // The async side's alerts surface when its monitor catches up —
        // report what has been published so far, plus the current lag.
        let published = async_engine.snapshot();
        let events: Vec<String> = sync_out
            .alerts
            .iter()
            .map(DriftAlert::to_string)
            .chain(
                sync_out
                    .retrained
                    .then(|| "[RETRAIN] off-thread on async side".to_string()),
            )
            .collect();
        if (round + 1) % 8 == 0 || !events.is_empty() {
            let fmt = |v: Option<f64>| v.map_or("--".into(), |x| format!("{x:.3}"));
            println!(
                "{:>8} {:>10.0} {:>11.1} {:>7} {:>5}  {}",
                async_engine.tuples_scored(),
                sync_us,
                async_us,
                fmt(published.di_star),
                async_engine.monitor_lag() / batch_size as u64,
                events.join(" | "),
            );
        }
    }

    // 3. Barrier: let the monitor drain everything still queued.
    async_engine.flush().expect("flush");
    assert_eq!(async_engine.monitor_lag(), 0);
    let async_alerts = async_engine.alerts();

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
    let snapshot = async_engine.snapshot();
    let di = snapshot.di_star.expect("both groups observed");
    println!("\nfinal window: {snapshot}");
    println!(
        "alerts: {} ({} retrains, {})",
        async_alerts.len(),
        async_engine.retrain_count(),
        async_engine.dropped(), // Display: `dropped batches=N tuples=M`
    );
    println!(
        "sync  ingest: mean {:>8.1}µs  worst {:>9.0}µs   <- a retrain lives inside a call",
        mean(&sync_lat_us),
        max(&sync_lat_us)
    );
    println!(
        "async ingest: mean {:>8.1}µs  worst {:>9.0}µs   <- decisions flowed through the repair",
        mean(&async_lat_us),
        max(&async_lat_us)
    );

    // 4. The verdict: drift was detected and repaired off the serving
    //    path — DI* back above the EEOC floor, serving latency flat.
    assert!(
        !async_alerts.is_empty() && async_engine.retrain_count() >= 1,
        "expected drift alerts and at least one off-thread retrain"
    );
    assert!(
        di >= 0.8,
        "expected post-swap DI* recovery above 0.8, got {di:.3}"
    );
    assert!(
        mean(&async_lat_us) < mean(&sync_lat_us),
        "async serving must be cheaper on average than inline monitoring \
         (async {:.1}µs vs sync {:.1}µs)",
        mean(&async_lat_us),
        mean(&sync_lat_us)
    );
    println!(
        "\ndrift detected at tuple {} and repaired off-thread: DI* back to {di:.3} (>= 0.8)",
        async_alerts.first().map(|a| a.at_tuple).unwrap_or(0),
    );
}
