//! End-to-end integration tests: the full split → profile → intervene →
//! train → evaluate pipeline, across crates, through the facade API.

use confair::baselines::{Capuchin, KamiranCalders, OmniFair};
use confair::core::{
    evaluate, evaluate_repeated, pipeline::mean_report, ConFair, DiffFair, Intervention,
    MultiModel, NoIntervention, Pipeline,
};
use confair::datasets::{realsim::RealWorldSpec, synthgen::syn_drift_scaled, toy::figure1};
use confair::learners::LearnerKind;

fn all_methods() -> Vec<Box<dyn Intervention>> {
    vec![
        Box::new(NoIntervention),
        Box::new(MultiModel),
        Box::new(DiffFair::paper_default()),
        Box::new(ConFair::paper_default()),
        Box::new(KamiranCalders),
        Box::new(OmniFair::paper_default()),
        Box::new(Capuchin::paper_default()),
    ]
}

#[test]
fn every_method_runs_on_toy_data_with_both_learners() {
    let data = figure1(100);
    for method in all_methods() {
        for learner in LearnerKind::both() {
            let out = evaluate(
                &data,
                method.as_ref(),
                learner,
                Pipeline::paper_default(),
                100,
            )
            .unwrap_or_else(|e| panic!("{} / {} failed: {e}", method.name(), learner.name()));
            assert!(
                (0.0..=1.0).contains(&out.report.di_star),
                "{}: DI* out of range",
                method.name()
            );
            assert!(
                (0.0..=1.0).contains(&out.report.aod_star),
                "{}: AOD* out of range",
                method.name()
            );
            assert!(
                out.report.balanced_accuracy > 0.4,
                "{} / {}: balanced accuracy collapsed ({})",
                method.name(),
                learner.name(),
                out.report.balanced_accuracy
            );
        }
    }
}

#[test]
fn confair_improves_di_on_unfair_toy_data() {
    let data = figure1(101);
    let pipeline = Pipeline::paper_default();
    let base = mean_report(
        &evaluate_repeated(
            &data,
            &NoIntervention,
            LearnerKind::Logistic,
            pipeline,
            101,
            3,
        )
        .unwrap(),
    );
    let fair = mean_report(
        &evaluate_repeated(
            &data,
            &ConFair::paper_default(),
            LearnerKind::Logistic,
            pipeline,
            101,
            3,
        )
        .unwrap(),
    );
    assert!(
        fair.di_star > base.di_star + 0.03,
        "mean DI* should improve: {} -> {}",
        base.di_star,
        fair.di_star
    );
    assert!(
        fair.balanced_accuracy > base.balanced_accuracy - 0.1,
        "utility stays in band: {} -> {}",
        base.balanced_accuracy,
        fair.balanced_accuracy
    );
}

#[test]
fn difffair_dominates_under_severe_drift() {
    // AOD* can be blind here (a coin-flipping minority has symmetric errors
    // that cancel), so the discriminating quantity is the minority's own
    // balanced accuracy: a single model cannot serve Syn1's inverted
    // minority, DiffFair's routed group models can.
    let data = syn_drift_scaled(1, 0.08, 102);
    let pipeline = Pipeline::paper_default();
    let single = evaluate(&data, &NoIntervention, LearnerKind::Logistic, pipeline, 102).unwrap();
    let diff = evaluate(
        &data,
        &DiffFair::paper_default(),
        LearnerKind::Logistic,
        pipeline,
        102,
    )
    .unwrap();
    let single_u = single.confusion.minority.balanced_accuracy();
    let diff_u = diff.confusion.minority.balanced_accuracy();
    assert!(
        diff_u > single_u + 0.2,
        "DiffFair should recover the minority: {single_u} vs {diff_u}"
    );
    assert!(
        diff.report.balanced_accuracy > single.report.balanced_accuracy,
        "and improve overall utility: {} vs {}",
        single.report.balanced_accuracy,
        diff.report.balanced_accuracy
    );
}

#[test]
fn realsim_pipeline_works_at_small_scale() {
    // One pass of the headline comparison on a small MEPS simulation —
    // the smoke test behind Fig. 5's first column.
    let data = RealWorldSpec::by_name("MEPS")
        .unwrap()
        .generate_scaled(0.05, 103);
    let pipeline = Pipeline::paper_default();
    for method in ["NoIntervention", "ConFair"] {
        let m: Box<dyn Intervention> = match method {
            "ConFair" => Box::new(ConFair::paper_default()),
            _ => Box::new(NoIntervention),
        };
        let out = evaluate(&data, m.as_ref(), LearnerKind::Logistic, pipeline, 103).unwrap();
        assert_eq!(out.report.dataset, "MEPS");
        assert!(out.report.balanced_accuracy > 0.5);
    }
}

#[test]
fn deterministic_across_identical_runs() {
    let data = figure1(104);
    let a = evaluate(
        &data,
        &ConFair::paper_default(),
        LearnerKind::Logistic,
        Pipeline::paper_default(),
        104,
    )
    .unwrap();
    let b = evaluate(
        &data,
        &ConFair::paper_default(),
        LearnerKind::Logistic,
        Pipeline::paper_default(),
        104,
    )
    .unwrap();
    let mut ra = a.report;
    let mut rb = b.report;
    ra.runtime_secs = 0.0;
    rb.runtime_secs = 0.0;
    assert_eq!(ra, rb);
}

#[test]
fn weights_are_non_invasive() {
    // The intervention must not alter the dataset handed to it.
    let data = figure1(105);
    let before = data.clone();
    let _ = evaluate(
        &data,
        &ConFair::paper_default(),
        LearnerKind::Logistic,
        Pipeline::paper_default(),
        105,
    )
    .unwrap();
    assert_eq!(data, before, "ConFair must not mutate the input data");
}
