//! The facade crate's public surface: everything an adopter touches from
//! `confair::prelude` must compose.

use confair::prelude::*;

#[test]
fn prelude_exposes_the_core_workflow() {
    let data = confair::datasets::toy::figure1(200);
    assert!(!data.is_empty());

    // Splitting through the re-exported types.
    let pipeline = Pipeline::paper_default();
    let split = pipeline.split(&data, 200);
    assert_eq!(
        split.train.len() + split.validation.len() + split.test.len(),
        data.len()
    );

    // Profiling: conformance constraints over the minority-positive cell.
    let idx = data.cell_indices(confair::data::CellIndex { group: 1, label: 1 });
    let x = data.numeric_matrix(Some(&idx));
    let cs = confair::conformance::learn_constraints(
        &x,
        &confair::conformance::LearnOptions::paper_default(),
    );
    assert!(!cs.is_empty());
    // Every profiled tuple conforms under min/max bounds.
    for row in x.iter_rows() {
        assert!(cs.violation(row) < 1e-9);
    }

    // Density filtering (Algorithm 3).
    let filtered = density_filter(&data, confair::density::FilterConfig::paper_default());
    let total: usize = filtered.iter().map(|(_, v)| v.len()).sum();
    assert!(total < data.len());

    // Learner training through the factory.
    let (_, xm) = confair::data::FeatureEncoding::fit_transform(&split.train);
    let y: Vec<f64> = split.train.labels().iter().map(|&l| l as f64).collect();
    let mut model = LearnerKind::Logistic.build();
    model.fit(&xm, &y, None).unwrap();
    assert!(model.is_fitted());

    // Metrics.
    let preds = model.predict(&xm).unwrap();
    let gc = GroupConfusion::compute(split.train.labels(), &preds, split.train.groups());
    let report = FairnessReport::from_confusion("Fig1", "manual", "LR", &gc, 0.0);
    assert!(report.balanced_accuracy > 0.5);
}

#[test]
fn group_spec_applies_through_facade() {
    let mut data = confair::datasets::toy::figure1(201);
    let n = data.len();
    GroupSpec::Explicit(vec![0; n]).apply(&mut data).unwrap();
    assert_eq!(data.group_count(1), 0);
}

#[test]
fn csv_round_trip_through_facade() {
    let data = confair::datasets::toy::figure1(202);
    let dir = std::env::temp_dir().join("confair_facade_csv");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig1.csv");
    confair::data::csv::write_csv(&data, &path).unwrap();
    let back = confair::data::csv::read_csv("Fig1", &path).unwrap();
    assert_eq!(back.len(), data.len());
    assert_eq!(back.labels(), data.labels());
}

#[test]
fn tune_alpha_is_reachable_from_prelude() {
    let data = confair::datasets::toy::figure1(203);
    let pipeline = Pipeline::paper_default();
    let split = pipeline.split(&data, 203);
    let profile = confair::core::confair::build_profile(
        &split.train,
        FairnessTarget::DisparateImpact,
        Some(confair::density::FilterConfig::paper_default()),
        &confair::conformance::LearnOptions::paper_default(),
    )
    .unwrap();
    let result = tune_alpha(
        &profile,
        &split.train,
        &split.validation,
        LearnerKind::Logistic,
        FairnessTarget::DisparateImpact,
        &[0.0, 4.0],
    )
    .unwrap();
    assert!(result.alpha_u == 0.0 || result.alpha_u == 4.0);
}
