//! Property tests for the baseline interventions.

use cf_baselines::{Capuchin, KamiranCalders, OmniFair};
use cf_data::{Column, Dataset};
use confair_core::confair::FairnessTarget;
use proptest::prelude::*;

fn dataset() -> impl Strategy<Value = Dataset> {
    (16usize..80).prop_flat_map(|n| {
        proptest::collection::vec(-5.0..5.0f64, n).prop_map(move |x| {
            let labels: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
            let groups: Vec<u8> = (0..n).map(|i| u8::from(i % 3 == 0)).collect();
            Dataset::new(
                "prop",
                vec!["x".into()],
                vec![Column::Numeric(x)],
                labels,
                groups,
            )
            .unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kam_weights_make_group_and_label_independent(d in dataset()) {
        let w = KamiranCalders::weights(&d).unwrap();
        let total: f64 = w.iter().sum();
        let mass = |g: u8, c: u8| -> f64 {
            (0..d.len())
                .filter(|&i| d.groups()[i] == g && d.labels()[i] == c)
                .map(|i| w[i])
                .sum::<f64>() / total
        };
        let pg1 = mass(1, 0) + mass(1, 1);
        let pc1 = mass(0, 1) + mass(1, 1);
        prop_assert!((mass(1, 1) - pg1 * pc1).abs() < 1e-9);
    }

    #[test]
    fn kam_total_mass_is_n(d in dataset()) {
        let w = KamiranCalders::weights(&d).unwrap();
        prop_assert!((w.iter().sum::<f64>() - d.len() as f64).abs() < 1e-6);
    }

    #[test]
    fn omn_weights_respect_floor_and_cells(d in dataset(), lambda in 0.0..6.0f64) {
        for target in [
            FairnessTarget::DisparateImpact,
            FairnessTarget::EqOddsFnr,
            FairnessTarget::EqOddsFpr,
        ] {
            let w = OmniFair::weights(&d, target, lambda).unwrap();
            prop_assert!(w.iter().all(|&v| v >= 0.05));
            // Uniform within every (group, label) cell.
            for cell in cf_data::CellIndex::binary_cells() {
                let members = d.cell_indices(cell);
                if let Some(&first) = members.first() {
                    prop_assert!(members.iter().all(|&i| (w[i] - w[first]).abs() < 1e-12));
                }
            }
        }
    }

    #[test]
    fn cap_repair_preserves_size_approximately(d in dataset()) {
        let cap = Capuchin::paper_default();
        if let Ok((idx, groups)) = cap.repair_multiset(&d) {
            prop_assert_eq!(idx.len(), groups.len());
            let ratio = idx.len() as f64 / d.len() as f64;
            prop_assert!((0.5..=1.5).contains(&ratio), "ratio {}", ratio);
            // Every referenced index is valid.
            prop_assert!(idx.iter().all(|&i| i < d.len()));
        }
    }

    #[test]
    fn cap_repair_deterministic(d in dataset()) {
        let cap = Capuchin::paper_default();
        let a = cap.repair_multiset(&d);
        let b = cap.repair_multiset(&d);
        prop_assert_eq!(a.is_ok(), b.is_ok());
        if let (Ok(x), Ok(y)) = (a, b) {
            prop_assert_eq!(x, y);
        }
    }
}
