//! **KAM** — Kamiran & Calders reweighing ("Data preprocessing techniques
//! for classification without discrimination", KAIS 2011).
//!
//! Every tuple in cell (group `g`, label `c`) receives the same weight
//!
//! ```text
//! w(g, c) = |D_g| · |D_c| / (|D| · |D_{g,c}|)
//! ```
//!
//! — the ratio of the cell's expected size under independence to its actual
//! size. Weighted this way, group and label are statistically independent in
//! the training distribution. Contrast with ConFair: *identical weights for
//! every member of a cell* (outliers included), no intervention knob, and no
//! model in the loop — which also makes KAM the fastest method in Fig. 14.

use cf_data::{CellIndex, Dataset};
use cf_learners::LearnerKind;
use confair_core::{
    intervention::{Intervention, Predictor, SingleModelPredictor},
    CoreError, Result,
};

/// The KAM intervention.
#[derive(Debug, Clone, Copy, Default)]
pub struct KamiranCalders;

impl KamiranCalders {
    /// The closed-form cell weights for a dataset, one per tuple.
    pub fn weights(train: &Dataset) -> Result<Vec<f64>> {
        let n = train.len();
        if n == 0 {
            return Err(CoreError::EmptyPartition("training set".into()));
        }
        let mut weights = vec![1.0; n];
        for cell in CellIndex::binary_cells() {
            let members = train.cell_indices(cell);
            if members.is_empty() {
                continue;
            }
            let expected = train.group_count(cell.group) as f64
                * train.label_count(cell.label) as f64
                / n as f64;
            let w = expected / members.len() as f64;
            for &i in &members {
                weights[i] = w;
            }
        }
        Ok(weights)
    }
}

impl Intervention for KamiranCalders {
    fn name(&self) -> String {
        "KAM".to_string()
    }

    fn train(
        &self,
        train: &Dataset,
        _validation: &Dataset,
        learner: LearnerKind,
    ) -> Result<Box<dyn Predictor>> {
        let weights = Self::weights(train)?;
        let predictor = SingleModelPredictor::fit(train, learner, Some(&weights))?;
        Ok(Box::new(predictor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::split::{split3, SplitRatios};
    use cf_data::Column;
    use cf_datasets::toy::figure1;
    use cf_metrics::GroupConfusion;
    use confair_core::NoIntervention;

    #[test]
    fn weights_match_closed_form() {
        // 6 tuples: W = {+,+,-}, U = {+,-,-}.
        let d = Dataset::new(
            "kam",
            vec!["x".into()],
            vec![Column::Numeric(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0])],
            vec![1, 1, 0, 1, 0, 0],
            vec![0, 0, 0, 1, 1, 1],
        )
        .unwrap();
        let w = KamiranCalders::weights(&d).unwrap();
        // |W| = 3, |Y=1| = 3, |W ∩ Y=1| = 2 → w = 3·3/(6·2) = 0.75
        assert!((w[0] - 0.75).abs() < 1e-12);
        assert!((w[1] - 0.75).abs() < 1e-12);
        // |W ∩ Y=0| = 1 → 3·3/(6·1) = 1.5
        assert!((w[2] - 1.5).abs() < 1e-12);
        // |U ∩ Y=1| = 1 → 3·3/(6·1) = 1.5
        assert!((w[3] - 1.5).abs() < 1e-12);
        // |U ∩ Y=0| = 2 → 0.75
        assert!((w[4] - 0.75).abs() < 1e-12);
        assert!((w[5] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_distribution_is_independent() {
        let d = figure1(60);
        let w = KamiranCalders::weights(&d).unwrap();
        // Weighted joint P(g, c) should factorise: check one cell.
        let total: f64 = w.iter().sum();
        let mass = |g: u8, c: u8| -> f64 {
            (0..d.len())
                .filter(|&i| d.groups()[i] == g && d.labels()[i] == c)
                .map(|i| w[i])
                .sum::<f64>()
                / total
        };
        let pg: f64 = mass(1, 0) + mass(1, 1);
        let pc: f64 = mass(0, 1) + mass(1, 1);
        assert!((mass(1, 1) - pg * pc).abs() < 1e-9);
    }

    #[test]
    fn identical_weights_within_cells() {
        let d = figure1(61);
        let w = KamiranCalders::weights(&d).unwrap();
        for cell in CellIndex::binary_cells() {
            let members = d.cell_indices(cell);
            let first = w[members[0]];
            assert!(members.iter().all(|&i| (w[i] - first).abs() < 1e-12));
        }
    }

    #[test]
    fn kam_improves_fairness_on_toy_data_on_average() {
        // KAM's cell weights correct representation skew, not the drifted
        // label-conditionals that drive the Fig. 1 toy's unfairness (the
        // paper's motivating contrast with ConFair) — so on any single
        // split KAM may leave the model unchanged. Average DI* over many
        // seeded splits instead of cherry-picking one.
        let mut base_sum = 0.0;
        let mut kam_sum = 0.0;
        for seed in 55u64..75 {
            let d = figure1(seed);
            let s = split3(&d, SplitRatios::paper_default(), seed);
            let base = NoIntervention
                .train(&s.train, &s.validation, LearnerKind::Logistic)
                .unwrap();
            let bp = base.predict(&s.test).unwrap();
            base_sum += GroupConfusion::compute(s.test.labels(), &bp, s.test.groups()).di_star();

            let kam = KamiranCalders
                .train(&s.train, &s.validation, LearnerKind::Logistic)
                .unwrap();
            let kp = kam.predict(&s.test).unwrap();
            kam_sum += GroupConfusion::compute(s.test.labels(), &kp, s.test.groups()).di_star();
        }
        assert!(
            kam_sum > base_sum,
            "KAM improves mean DI*: {} -> {}",
            base_sum / 20.0,
            kam_sum / 20.0
        );
    }

    #[test]
    fn empty_training_errors() {
        let d = figure1(1).subset(&[]);
        assert!(KamiranCalders::weights(&d).is_err());
    }

    #[test]
    fn name_is_kam() {
        assert_eq!(KamiranCalders.name(), "KAM");
    }
}
