//! **OMN** — OmniFair-style declarative reweighing (Zhang et al., SIGMOD
//! 2021), specialised to the metrics this paper evaluates.
//!
//! OmniFair expresses a group-fairness constraint declaratively and enforces
//! it by assigning *uniform weights per (group, label) cell*, scaled by a
//! single parameter λ; λ is tuned model-in-the-loop: train, measure the
//! metric on validation data, adjust. Cells are weighted in the direction
//! that shrinks the target gap:
//!
//! * DI-by-selection-rate: minority-positive ×(1+λ), majority-positive
//!   ×(1−λ) (floored at a small positive value).
//! * EqOdds-FNR: minority-positive ×(1+λ).
//! * EqOdds-FPR: minority-negative ×(1+λ).
//!
//! Selection follows the OmniFair recipe: among λ candidates that satisfy
//! the fairness constraint (gap ≤ ε) pick the most accurate; if none
//! qualifies, pick the smallest gap. Because *every* tuple of a cell is
//! amplified — outliers and noise included — the λ→fairness response is not
//! monotone and can collapse the model to one class; both behaviours are
//! exactly what §IV-A reports for OMN.

use cf_data::{CellIndex, Dataset, MAJORITY, MINORITY};
use cf_learners::LearnerKind;
use cf_metrics::GroupConfusion;
use confair_core::{
    confair::FairnessTarget,
    intervention::{Intervention, Predictor, SingleModelPredictor},
    CoreError, Result,
};

/// Configuration for [`OmniFair`].
#[derive(Debug, Clone, PartialEq)]
pub struct OmniFairConfig {
    /// The fairness metric used as the declarative constraint.
    pub target: FairnessTarget,
    /// Candidate λ values scanned in order.
    pub lambda_grid: Vec<f64>,
    /// Constraint threshold ε: a candidate "satisfies" fairness when its
    /// validation gap is at most this.
    pub epsilon: f64,
    /// Calibrate λ with this learner instead of the deployed one (Fig. 7).
    pub calibration_learner: Option<LearnerKind>,
    /// Fixed λ (skips tuning) — used by the Fig. 8/9 sweeps.
    pub fixed_lambda: Option<f64>,
}

impl Default for OmniFairConfig {
    fn default() -> Self {
        Self {
            target: FairnessTarget::DisparateImpact,
            lambda_grid: default_lambda_grid(),
            epsilon: 0.05,
            calibration_learner: None,
            fixed_lambda: None,
        }
    }
}

/// The default λ grid (the original tunes λ ∈ [0, 1]-ish; large values are
/// included because the floor keeps weights valid).
pub fn default_lambda_grid() -> Vec<f64> {
    vec![0.0, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0]
}

/// Weights never drop below this floor (the down-weighted cell).
const WEIGHT_FLOOR: f64 = 0.05;

/// The OmniFair intervention.
#[derive(Debug, Clone, Default)]
pub struct OmniFair {
    /// Behavioural configuration.
    pub config: OmniFairConfig,
}

impl OmniFair {
    /// OMN targeting disparate impact with auto-tuned λ (the §IV variant).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// OMN with a custom configuration.
    pub fn new(config: OmniFairConfig) -> Self {
        Self { config }
    }

    /// The uniform cell weights for a given λ.
    pub fn weights(train: &Dataset, target: FairnessTarget, lambda: f64) -> Result<Vec<f64>> {
        if train.is_empty() {
            return Err(CoreError::EmptyPartition("training set".into()));
        }
        let mut weights = vec![1.0; train.len()];
        let mut scale_cell = |cell: CellIndex, factor: f64| {
            for i in train.cell_indices(cell) {
                weights[i] = factor.max(WEIGHT_FLOOR);
            }
        };
        match target {
            FairnessTarget::DisparateImpact => {
                scale_cell(
                    CellIndex {
                        group: MINORITY,
                        label: 1,
                    },
                    1.0 + lambda,
                );
                scale_cell(
                    CellIndex {
                        group: MAJORITY,
                        label: 1,
                    },
                    1.0 - lambda,
                );
            }
            FairnessTarget::EqOddsFnr => {
                scale_cell(
                    CellIndex {
                        group: MINORITY,
                        label: 1,
                    },
                    1.0 + lambda,
                );
            }
            FairnessTarget::EqOddsFpr => {
                scale_cell(
                    CellIndex {
                        group: MINORITY,
                        label: 0,
                    },
                    1.0 + lambda,
                );
            }
        }
        Ok(weights)
    }

    fn gap(target: FairnessTarget, gc: &GroupConfusion) -> f64 {
        match target {
            FairnessTarget::DisparateImpact => 1.0 - gc.di_star(),
            FairnessTarget::EqOddsFnr => gc.eq_odds_fnr_gap(),
            FairnessTarget::EqOddsFpr => gc.eq_odds_fpr_gap(),
        }
    }

    /// Model-in-the-loop λ selection (the OmniFair algorithm): constraint
    /// first, accuracy second.
    pub fn tune_lambda(
        &self,
        train: &Dataset,
        validation: &Dataset,
        learner: LearnerKind,
    ) -> Result<f64> {
        let mut best_feasible: Option<(f64, f64)> = None; // (balacc, lambda)
        let mut best_gap: Option<(f64, f64)> = None; // (gap, lambda)
        for &lambda in &self.config.lambda_grid {
            let weights = Self::weights(train, self.config.target, lambda)?;
            // A diverging learner under extreme weights disqualifies the
            // candidate (the paper's missing-OMN-bars case at the harness
            // level when *every* candidate fails).
            let Ok(predictor) = SingleModelPredictor::fit(train, learner, Some(&weights)) else {
                continue;
            };
            let Ok(preds) = predictor.predict(validation) else {
                continue;
            };
            let gc = GroupConfusion::compute(validation.labels(), &preds, validation.groups());
            let gap = Self::gap(self.config.target, &gc);
            let balacc = gc.balanced_accuracy();
            if gap <= self.config.epsilon && best_feasible.is_none_or(|(b, _)| balacc > b) {
                best_feasible = Some((balacc, lambda));
            }
            if best_gap.is_none_or(|(g, _)| gap < g) {
                best_gap = Some((gap, lambda));
            }
        }
        match (best_feasible, best_gap) {
            (Some((_, lambda)), _) => Ok(lambda),
            (None, Some((_, lambda))) => Ok(lambda),
            (None, None) => Err(CoreError::EmptyPartition(
                "no lambda candidate produced a model".into(),
            )),
        }
    }
}

impl Intervention for OmniFair {
    fn name(&self) -> String {
        "OMN".to_string()
    }

    fn train(
        &self,
        train: &Dataset,
        validation: &Dataset,
        learner: LearnerKind,
    ) -> Result<Box<dyn Predictor>> {
        let lambda = match self.config.fixed_lambda {
            Some(l) => l,
            None => {
                let calibration = self.config.calibration_learner.unwrap_or(learner);
                self.tune_lambda(train, validation, calibration)?
            }
        };
        let weights = Self::weights(train, self.config.target, lambda)?;
        let predictor = SingleModelPredictor::fit(train, learner, Some(&weights))?;
        Ok(Box::new(predictor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::split::{split3, SplitRatios};
    use cf_datasets::toy::figure1;
    use confair_core::NoIntervention;

    #[test]
    fn weights_scale_whole_cells_uniformly() {
        let d = figure1(70);
        let w = OmniFair::weights(&d, FairnessTarget::DisparateImpact, 0.5).unwrap();
        for (i, &wi) in w.iter().enumerate() {
            let expected = match (d.groups()[i], d.labels()[i]) {
                (MINORITY, 1) => 1.5,
                (MAJORITY, 1) => 0.5,
                _ => 1.0,
            };
            assert!((wi - expected).abs() < 1e-12, "tuple {i}");
        }
    }

    #[test]
    fn weight_floor_holds_for_large_lambda() {
        let d = figure1(71);
        let w = OmniFair::weights(&d, FairnessTarget::DisparateImpact, 3.0).unwrap();
        assert!(w.iter().all(|&v| v >= WEIGHT_FLOOR));
    }

    #[test]
    fn eq_odds_targets_scale_expected_cells() {
        let d = figure1(72);
        let w = OmniFair::weights(&d, FairnessTarget::EqOddsFpr, 1.0).unwrap();
        for (i, &wi) in w.iter().enumerate() {
            if d.groups()[i] == MINORITY && d.labels()[i] == 0 {
                assert!((wi - 2.0).abs() < 1e-12);
            } else {
                assert!((wi - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn omn_satisfies_its_declarative_constraint_on_validation() {
        // OMN's contract is constraint satisfaction on the validation set
        // (gap ≤ ε), with accuracy maximised among feasible λ. Test exactly
        // that: the tuned λ's validation gap is within ε, or — when no λ is
        // feasible — it is the grid's minimum gap.
        let d = figure1(73);
        let s = split3(&d, SplitRatios::paper_default(), 73);
        let omn = OmniFair::paper_default();
        let lambda = omn
            .tune_lambda(&s.train, &s.validation, LearnerKind::Logistic)
            .unwrap();

        let gap_of = |l: f64| -> f64 {
            let w = OmniFair::weights(&s.train, FairnessTarget::DisparateImpact, l).unwrap();
            let p = confair_core::intervention::SingleModelPredictor::fit(
                &s.train,
                LearnerKind::Logistic,
                Some(&w),
            )
            .unwrap();
            use confair_core::intervention::Predictor;
            let preds = p.predict(&s.validation).unwrap();
            let gc = GroupConfusion::compute(s.validation.labels(), &preds, s.validation.groups());
            1.0 - gc.di_star()
        };
        let chosen_gap = gap_of(lambda);
        let min_gap = omn
            .config
            .lambda_grid
            .iter()
            .map(|&l| gap_of(l))
            .fold(f64::INFINITY, f64::min);
        assert!(
            chosen_gap <= omn.config.epsilon + 1e-9 || (chosen_gap - min_gap).abs() < 1e-9,
            "chosen λ={lambda} gap {chosen_gap} vs grid minimum {min_gap}"
        );
    }

    #[test]
    fn forced_lambda_moves_minority_selection_rate() {
        let d = figure1(76);
        let s = split3(&d, SplitRatios::paper_default(), 76);
        let sr_at = |l: f64| -> f64 {
            let omn = OmniFair::new(OmniFairConfig {
                fixed_lambda: Some(l),
                ..OmniFairConfig::default()
            });
            let p = omn
                .train(&s.train, &s.validation, LearnerKind::Logistic)
                .unwrap();
            let preds = p.predict(&s.test).unwrap();
            GroupConfusion::compute(s.test.labels(), &preds, s.test.groups())
                .minority
                .selection_rate()
        };
        // A large λ must raise the minority selection rate over λ = 0.
        assert!(sr_at(4.0) > sr_at(0.0), "{} vs {}", sr_at(4.0), sr_at(0.0));
    }

    #[test]
    fn fixed_lambda_skips_tuning() {
        let d = figure1(74);
        let s = split3(&d, SplitRatios::paper_default(), 74);
        let omn = OmniFair::new(OmniFairConfig {
            fixed_lambda: Some(0.0),
            ..OmniFairConfig::default()
        });
        // λ = 0 means weights are all 1: identical to no intervention.
        let p = omn
            .train(&s.train, &s.validation, LearnerKind::Logistic)
            .unwrap();
        let base = NoIntervention
            .train(&s.train, &s.validation, LearnerKind::Logistic)
            .unwrap();
        assert_eq!(p.predict(&s.test).unwrap(), base.predict(&s.test).unwrap());
    }

    #[test]
    fn name_is_omn() {
        assert_eq!(OmniFair::paper_default().name(), "OMN");
    }
}
