//! # cf-baselines
//!
//! The prior-art interventions the paper compares against (§IV "Methods"),
//! reimplemented from their original papers:
//!
//! * [`kam::KamiranCalders`] (**KAM**) — reweighing for statistical
//!   independence of group and label (Kamiran & Calders, KAIS 2011). Pure
//!   closed-form weights; no model in the loop; no intervention knob.
//! * [`omn::OmniFair`] (**OMN**) — declarative group fairness (Zhang et al.,
//!   SIGMOD 2021): uniform per-(group,label)-cell weights `1 ± λ`, with λ
//!   tuned model-in-the-loop against a fairness constraint.
//! * [`cap::Capuchin`] (**CAP**) — causal database repair (Salimi et al.,
//!   SIGMOD 2019), reduced to its independence-repair core: resample the
//!   training multiset so that group ⫫ label within every stratum of
//!   admissible attributes. *Invasive*: the training data itself changes.
//!
//! All three implement [`confair_core::Intervention`] so the experiment
//! harness treats them uniformly. See DESIGN.md §1 for the documented
//! simplifications (CAP's MaxSAT machinery, OMN's full metric catalogue).

pub mod cap;
pub mod kam;
pub mod omn;

pub use cap::Capuchin;
pub use kam::KamiranCalders;
pub use omn::OmniFair;
