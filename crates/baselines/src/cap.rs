//! **CAP** — Capuchin-style invasive repair (Salimi et al., "Interventional
//! Fairness: Causal Database Repair for Algorithmic Fairness", SIGMOD 2019),
//! reduced to its independence-repair core.
//!
//! Capuchin repairs the *training database* so that the label is independent
//! of the sensitive attribute given a set of admissible attributes
//! (`Y ⫫ G | A`). We reproduce the IPW/resampling flavour: stratify the
//! data on coarsened admissible attributes, compute each stratum's repaired
//! contingency table `n'(g, y | s) = n(g | s) · n(y | s) / n(s)`, and
//! materialise it by duplicating/dropping tuples within each (g, y, s) cell
//! (sampling with replacement when a cell must grow). The repaired multiset
//! — *not* the original data — trains the model, which is precisely the
//! "invasive" property §IV contrasts ConFair against. The MaxSAT-based
//! minimal-repair machinery of the original is out of scope (DESIGN.md §1).

use cf_data::{Column, Dataset};
use cf_learners::LearnerKind;
use confair_core::{
    intervention::{Intervention, Predictor, SingleModelPredictor},
    CoreError, Result,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Configuration for [`Capuchin`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapuchinConfig {
    /// Quantile bins per numeric admissible attribute.
    pub numeric_bins: usize,
    /// How many leading numeric attributes participate in the strata.
    pub max_numeric_attrs: usize,
    /// How many leading categorical attributes participate in the strata.
    pub max_categorical_attrs: usize,
    /// Seed for the resampling draws.
    pub seed: u64,
}

impl Default for CapuchinConfig {
    fn default() -> Self {
        Self {
            numeric_bins: 3,
            max_numeric_attrs: 2,
            max_categorical_attrs: 2,
            seed: 0xCA9,
        }
    }
}

/// The Capuchin intervention.
#[derive(Debug, Clone, Copy, Default)]
pub struct Capuchin {
    /// Behavioural configuration.
    pub config: CapuchinConfig,
}

impl Capuchin {
    /// CAP with default stratification.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Assign each tuple a stratum id from coarsened admissible attributes.
    fn strata(&self, ds: &Dataset) -> Vec<usize> {
        let n = ds.len();
        let mut ids = vec![0usize; n];
        let mut multiplier = 1usize;

        // Numeric attributes: equal-frequency (quantile) bins.
        let numeric_cols = ds.numeric_column_indices();
        for &j in numeric_cols.iter().take(self.config.max_numeric_attrs) {
            let values = ds.column(j).as_numeric().expect("numeric index");
            let mut cuts = Vec::with_capacity(self.config.numeric_bins - 1);
            for b in 1..self.config.numeric_bins {
                cuts.push(cf_linalg::vector::quantile(
                    values,
                    b as f64 / self.config.numeric_bins as f64,
                ));
            }
            for (id, &v) in ids.iter_mut().zip(values) {
                let bin = cuts.iter().filter(|&&c| v > c).count();
                *id += multiplier * bin;
            }
            multiplier *= self.config.numeric_bins;
        }

        // Categorical attributes: levels as-is.
        let mut cat_seen = 0usize;
        for j in 0..ds.num_attributes() {
            if cat_seen >= self.config.max_categorical_attrs {
                break;
            }
            if let Column::Categorical { codes, levels } = ds.column(j) {
                let width = levels.len().max(1);
                for (id, &code) in ids.iter_mut().zip(codes) {
                    let level = (code as usize).min(width - 1);
                    *id += multiplier * level;
                }
                multiplier *= width;
                cat_seen += 1;
            }
        }
        ids
    }

    /// Produce the repaired training multiset: tuple indices into `train`
    /// (with repetitions) and the group value each repaired tuple carries.
    /// A tuple borrowed across groups is a *counterfactual insertion* —
    /// Capuchin materialises it with the sensitive attribute changed, so the
    /// borrowed tuple's group is the target cell's group, not its donor's.
    pub fn repair_multiset(&self, train: &Dataset) -> Result<(Vec<usize>, Vec<u8>)> {
        if train.is_empty() {
            return Err(CoreError::EmptyPartition("training set".into()));
        }
        let strata = self.strata(train);
        let n_strata = strata.iter().copied().max().unwrap_or(0) + 1;

        // Bucket tuples per (stratum, group, label).
        let mut cells: Vec<[[Vec<usize>; 2]; 2]> = (0..n_strata)
            .map(|_| [[Vec::new(), Vec::new()], [Vec::new(), Vec::new()]])
            .collect();
        for (i, &s) in strata.iter().enumerate() {
            let g = train.groups()[i] as usize;
            let y = train.labels()[i] as usize;
            cells[s][g][y].push(i);
        }

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut indices = Vec::with_capacity(train.len());
        let mut groups = Vec::with_capacity(train.len());
        for stratum in &cells {
            let count = |g: usize, y: usize| stratum[g][y].len() as f64;
            let n_s = count(0, 0) + count(0, 1) + count(1, 0) + count(1, 1);
            if n_s == 0.0 {
                continue;
            }
            for g in 0..2u8 {
                for y in [0usize, 1] {
                    let n_g = count(g as usize, 0) + count(g as usize, 1);
                    let n_y = count(0, y) + count(1, y);
                    // Repaired contingency count under independence.
                    let target = (n_g * n_y / n_s).round() as usize;
                    if target == 0 {
                        continue;
                    }
                    let pool: &Vec<usize> = &stratum[g as usize][y];
                    // Sample donors: the cell itself, else same-label tuples
                    // from the stratum's other group, inserted with the
                    // sensitive attribute rewritten to `g`.
                    let donors: &Vec<usize> = if pool.is_empty() {
                        &stratum[1 - g as usize][y]
                    } else {
                        pool
                    };
                    if donors.is_empty() {
                        continue;
                    }
                    for k in 0..target {
                        let i = if k < donors.len() {
                            donors[k]
                        } else {
                            donors[rng.gen_range(0..donors.len())]
                        };
                        indices.push(i);
                        groups.push(g);
                    }
                }
            }
        }
        if indices.is_empty() {
            return Err(CoreError::EmptyPartition(
                "repair produced no tuples".into(),
            ));
        }
        Ok((indices, groups))
    }

    /// The repaired training dataset (the artifact Capuchin trains on).
    pub fn repair_dataset(&self, train: &Dataset) -> Result<Dataset> {
        let (indices, groups) = self.repair_multiset(train)?;
        let mut repaired = train.subset(&indices);
        repaired.set_groups(groups)?;
        Ok(repaired)
    }
}

impl Intervention for Capuchin {
    fn name(&self) -> String {
        "CAP".to_string()
    }

    fn train(
        &self,
        train: &Dataset,
        _validation: &Dataset,
        learner: LearnerKind,
    ) -> Result<Box<dyn Predictor>> {
        let repaired = self.repair_dataset(train)?;
        let predictor = SingleModelPredictor::fit(&repaired, learner, None)?;
        Ok(Box::new(predictor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::split::{split3, SplitRatios};
    use cf_datasets::toy::figure1;
    use cf_metrics::GroupConfusion;
    use confair_core::NoIntervention;

    #[test]
    fn repair_size_is_close_to_original() {
        let d = figure1(80);
        let cap = Capuchin::paper_default();
        let (idx, _) = cap.repair_multiset(&d).unwrap();
        let ratio = idx.len() as f64 / d.len() as f64;
        assert!((0.85..=1.15).contains(&ratio), "repair ratio {ratio}");
    }

    #[test]
    fn repair_enforces_independence_within_strata() {
        let d = figure1(81);
        let cap = Capuchin::paper_default();
        // Strata must be the ones the repair used — computed on the
        // *original* data (quantile cuts shift after resampling).
        let strata = cap.strata(&d);
        let (idx, groups) = cap.repair_multiset(&d).unwrap();
        let n_strata = strata.iter().copied().max().unwrap() + 1;
        for s in 0..n_strata {
            let members: Vec<(usize, u8)> = idx
                .iter()
                .copied()
                .zip(groups.iter().copied())
                .filter(|&(i, _)| strata[i] == s)
                .collect();
            if members.len() < 30 {
                continue; // skip tiny strata: rounding noise dominates
            }
            let count = |g: u8, y: u8| {
                members
                    .iter()
                    .filter(|&&(i, gi)| gi == g && d.labels()[i] == y)
                    .count() as f64
            };
            let n = members.len() as f64;
            let n11 = count(1, 1);
            let pg = (count(1, 0) + count(1, 1)) / n;
            let py = (count(0, 1) + count(1, 1)) / n;
            // Within-stratum joint ≈ product of marginals (rounding slack).
            assert!(
                (n11 / n - pg * py).abs() < 0.05,
                "stratum {s}: joint {} vs product {}",
                n11 / n,
                pg * py
            );
        }
    }

    #[test]
    fn cap_is_invasive_but_improves_fairness() {
        let d = figure1(82);
        let s = split3(&d, SplitRatios::paper_default(), 82);
        let base = NoIntervention
            .train(&s.train, &s.validation, LearnerKind::Gbt)
            .unwrap();
        let bp = base.predict(&s.test).unwrap();
        let b_gc = GroupConfusion::compute(s.test.labels(), &bp, s.test.groups());

        let cap = Capuchin::paper_default();
        let cp = cap
            .train(&s.train, &s.validation, LearnerKind::Gbt)
            .unwrap();
        let preds = cp.predict(&s.test).unwrap();
        let c_gc = GroupConfusion::compute(s.test.labels(), &preds, s.test.groups());
        assert!(
            c_gc.di_star() >= b_gc.di_star(),
            "CAP should not harm DI*: {} -> {}",
            b_gc.di_star(),
            c_gc.di_star()
        );
    }

    #[test]
    fn repair_is_deterministic() {
        let d = figure1(83);
        let cap = Capuchin::paper_default();
        assert_eq!(
            cap.repair_dataset(&d).unwrap(),
            cap.repair_dataset(&d).unwrap()
        );
    }

    #[test]
    fn empty_training_errors() {
        let d = figure1(1).subset(&[]);
        assert!(Capuchin::paper_default().repair_multiset(&d).is_err());
    }

    #[test]
    fn name_is_cap() {
        assert_eq!(Capuchin::paper_default().name(), "CAP");
    }
}
