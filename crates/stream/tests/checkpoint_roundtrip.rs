//! The checkpoint/restore contract, property-checked: an engine restored
//! from a serialised checkpoint must be **observationally identical** to
//! one that never stopped — bit-identical decisions, snapshots, alerts,
//! counters, and retrain behaviour on the same subsequent tuple sequence,
//! across random window sizes, shard counts, batch shapes, and drift
//! onsets (including onsets that straddle the checkpoint, the
//! restore-under-drift case the warm-up-gap argument is about). Corrupted
//! and version-mismatched documents must fail with typed errors, never
//! panics.

use cf_datasets::stream::{DriftStream, DriftStreamCheckpoint, DriftStreamSpec};
use cf_learners::LearnerKind;
use cf_stream::{
    EngineCheckpoint, RetrainPolicy, ShardedCheckpoint, ShardedEngine, ShardedTuple, StreamConfig,
    StreamEngine, StreamError, StreamTuple, CHECKPOINT_VERSION,
};
use confair_core::confair::{AlphaMode, ConFairConfig};
use proptest::prelude::*;

fn spec(drift_onset: u64) -> DriftStreamSpec {
    DriftStreamSpec {
        drift_onset,
        ..DriftStreamSpec::default()
    }
}

/// Small windows/floors and fixed-α ConFair keep per-case bootstraps and
/// on-alert retrains cheap without weakening the bit-identity contract.
fn config(window: usize, retrain: RetrainPolicy) -> StreamConfig {
    StreamConfig {
        window,
        floor_min_window: 32,
        floor_cooldown: 400,
        retrain,
        confair: ConFairConfig {
            alpha: AlphaMode::Fixed {
                alpha_u: 2.0,
                alpha_w: 1.0,
            },
            ..ConFairConfig::default()
        },
        ..StreamConfig::default()
    }
}

/// Assert every observable of two engines agrees exactly.
fn assert_engines_identical(a: &StreamEngine, b: &StreamEngine) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.tuples_seen(), b.tuples_seen());
    prop_assert_eq!(a.retrain_count(), b.retrain_count());
    prop_assert_eq!(a.window_len(), b.window_len());
    prop_assert_eq!(a.window_counts(), b.window_counts());
    prop_assert_eq!(a.alerts(), b.alerts());
    prop_assert_eq!(a.snapshot(), b.snapshot());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// checkpoint → serialise → drop → parse → restore → ingest(rest)
    /// ≡ uninterrupted run, with the stream itself also resumed from a
    /// saved RNG position.
    #[test]
    fn restored_engine_is_bit_identical_to_uninterrupted(
        window in 64usize..400,
        // Onsets before, around, and after the checkpoint point: restores
        // must be exact mid-drift, not just in the stationary regime.
        drift_onset in 0u64..1_500,
        batch_size in 20usize..400,
        batches_before in 1usize..4,
        batches_after in 1usize..4,
        stream_seed in 0u64..1_000,
        retrain_on_alert in 0u8..2,
    ) {
        let retrain = if retrain_on_alert == 1 {
            RetrainPolicy::OnAlert { min_window: 48 }
        } else {
            RetrainPolicy::Never
        };
        let reference = spec(drift_onset).reference(800, 11);
        let mut uninterrupted = StreamEngine::from_reference(
            &reference, LearnerKind::Logistic, 11, config(window, retrain),
        ).unwrap();

        let mut stream = DriftStream::new(spec(drift_onset), stream_seed);
        for _ in 0..batches_before {
            let batch =
                StreamTuple::rows_from_dataset(&stream.next_batch(batch_size)).unwrap();
            uninterrupted.ingest(&batch).unwrap();
        }

        // Take both checkpoints, push them through their JSON documents
        // (the durable form), and "restart the process": everything the
        // restored side uses comes from the parsed documents.
        let engine_doc = uninterrupted.checkpoint().unwrap().to_json();
        let stream_doc = serde_json::to_string(&stream.checkpoint()).unwrap();
        let mut restored =
            StreamEngine::restore(EngineCheckpoint::from_json(&engine_doc).unwrap()).unwrap();
        let stream_ckpt: DriftStreamCheckpoint = serde_json::from_str(&stream_doc).unwrap();
        let mut resumed_stream = DriftStream::restore(&stream_ckpt).unwrap();

        assert_engines_identical(&uninterrupted, &restored)?;

        for _ in 0..batches_after {
            let live = stream.next_batch(batch_size);
            let replayed = resumed_stream.next_batch(batch_size);
            prop_assert_eq!(&live, &replayed, "resumed stream must replay the same tuples");

            let batch = StreamTuple::rows_from_dataset(&live).unwrap();
            let a = uninterrupted.ingest(&batch).unwrap();
            let b = restored.ingest(&batch).unwrap();
            prop_assert_eq!(&a.decisions, &b.decisions);
            prop_assert_eq!(&a.alerts, &b.alerts);
            prop_assert_eq!(&a.snapshot, &b.snapshot);
            prop_assert_eq!(a.retrained, b.retrained);
            prop_assert_eq!(
                a.retrain_error.is_some(), b.retrain_error.is_some(),
                "retrain failures must replay identically"
            );
        }
        assert_engines_identical(&uninterrupted, &restored)?;
    }

    /// The sharded variant: all shards snapshot coherently between batches
    /// and the restored fleet (including its cross-shard aggregate
    /// snapshot) replays bit-identically.
    #[test]
    fn restored_sharded_fleet_is_bit_identical(
        n_shards in 1usize..=3,
        window in 64usize..300,
        drift_onset in 0u64..800,
        batch_size in 30usize..600,
        stream_seed in 0u64..1_000,
        route_salt in 0u64..1_000,
    ) {
        let reference = spec(drift_onset).reference(800, 17);
        let cfg = config(window, RetrainPolicy::Never);
        let mut uninterrupted = ShardedEngine::from_reference(
            &reference, LearnerKind::Logistic, 17, cfg, n_shards,
        ).unwrap();

        let route = |i: usize| -> u32 {
            let z = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(route_salt);
            ((z >> 7) % n_shards as u64) as u32
        };
        let mut stream = DriftStream::new(spec(drift_onset), stream_seed);
        let routed_batch = |stream: &mut DriftStream| -> Vec<ShardedTuple> {
            StreamTuple::rows_from_dataset(&stream.next_batch(batch_size))
                .unwrap()
                .into_iter()
                .enumerate()
                .map(|(i, tuple)| ShardedTuple { shard: route(i), tuple })
                .collect()
        };

        uninterrupted.ingest(&routed_batch(&mut stream)).unwrap();

        let doc = uninterrupted.checkpoint().unwrap().to_json();
        let mut restored =
            ShardedEngine::restore(ShardedCheckpoint::from_json(&doc).unwrap()).unwrap();
        prop_assert_eq!(restored.shard_count(), n_shards);

        for _ in 0..2 {
            let batch = routed_batch(&mut stream);
            let a = uninterrupted.ingest(&batch).unwrap();
            let b = restored.ingest(&batch).unwrap();
            prop_assert_eq!(&a.decisions, &b.decisions);
            prop_assert_eq!(&a.snapshot, &b.snapshot);
            for (sa, sb) in a.per_shard.iter().zip(&b.per_shard) {
                prop_assert_eq!(&sa.alerts, &sb.alerts);
                prop_assert_eq!(&sa.snapshot, &sb.snapshot);
            }
        }
        prop_assert_eq!(uninterrupted.tuples_seen(), restored.tuples_seen());
        prop_assert_eq!(uninterrupted.merged_counts(), restored.merged_counts());
        prop_assert_eq!(uninterrupted.snapshot(), restored.snapshot());
    }
}

/// The GBT path exercises the whole tree serialisation (split thresholds,
/// leaf weights, node indices) — one deterministic case is enough on top of
/// the logistic property sweep.
#[test]
fn gbt_engine_round_trips_bit_identically() {
    let reference = spec(300).reference(600, 23);
    let mut uninterrupted = StreamEngine::from_reference(
        &reference,
        LearnerKind::Gbt,
        23,
        config(192, RetrainPolicy::Never),
    )
    .unwrap();
    let mut stream = DriftStream::new(spec(300), 29);
    let batch = StreamTuple::rows_from_dataset(&stream.next_batch(220)).unwrap();
    uninterrupted.ingest(&batch).unwrap();

    let doc = uninterrupted.checkpoint().unwrap().to_json();
    let mut restored = StreamEngine::restore(EngineCheckpoint::from_json(&doc).unwrap()).unwrap();

    for _ in 0..3 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(180)).unwrap();
        let a = uninterrupted.ingest(&batch).unwrap();
        let b = restored.ingest(&batch).unwrap();
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.alerts, b.alerts);
        assert_eq!(a.snapshot, b.snapshot);
    }
    assert_eq!(uninterrupted.alerts(), restored.alerts());
    assert_eq!(uninterrupted.window_counts(), restored.window_counts());
}

/// The flattened SoA tree form is a load-time artefact, never a wire
/// format. A v4 GBT document carries only the recursive node arrays —
/// `nodes`/`root` with leaf `weight`s and split `feature`/`threshold`
/// pairs, exactly what pre-flattening builds wrote — so checkpoints
/// taken today are byte-compatible with archives taken before the batch
/// kernels existed. Restoring one rebuilds the flat kernels in memory,
/// and the restored engine must score bit-identically through them.
#[test]
fn gbt_documents_stay_in_recursive_form_and_restore_through_flat_kernels() {
    let reference = spec(u64::MAX).reference(500, 41);
    let mut uninterrupted = StreamEngine::from_reference(
        &reference,
        LearnerKind::Gbt,
        41,
        config(160, RetrainPolicy::Never),
    )
    .unwrap();
    let mut stream = DriftStream::new(spec(u64::MAX), 43);
    let batch = StreamTuple::rows_from_dataset(&stream.next_batch(200)).unwrap();
    uninterrupted.ingest(&batch).unwrap();

    let json = uninterrupted.checkpoint().unwrap().to_json();
    // The recursive tree document, unchanged since checkpoint v4.
    for key in [
        "\"nodes\":",
        "\"root\":",
        "\"weight\":",
        "\"feature\":",
        "\"threshold\":",
    ] {
        assert!(json.contains(key), "document lost {key}");
    }
    // No SoA spill: the flat arrays are rebuilt on load, never persisted.
    assert!(
        !json.contains("\"flat\""),
        "flattened tree arrays must not reach the wire format"
    );

    // Restore from the document alone and re-checkpoint: the second
    // document must be byte-identical (nothing about the in-memory flat
    // form leaks into — or is lost from — the durable representation).
    let mut restored = StreamEngine::restore(EngineCheckpoint::from_json(&json).unwrap()).unwrap();
    assert_eq!(
        json,
        restored.checkpoint().unwrap().to_json(),
        "restore → checkpoint must reproduce the document byte-for-byte"
    );

    // And the rebuilt kernels score exactly like the never-serialised
    // model: same decisions on the same subsequent tuples.
    for _ in 0..2 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(150)).unwrap();
        let a = uninterrupted.ingest(&batch).unwrap();
        let b = restored.ingest(&batch).unwrap();
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.snapshot, b.snapshot);
    }
}

/// A tampered GBT tree whose split consults a feature index beyond the
/// model's width must be rejected at parse time — accepting it would panic
/// with index-out-of-bounds inside `predict_row` on the first post-restore
/// ingest.
#[test]
fn out_of_range_tree_feature_index_is_rejected_at_parse_time() {
    let reference = spec(u64::MAX).reference(400, 31);
    let mut engine = StreamEngine::from_reference(
        &reference,
        LearnerKind::Gbt,
        31,
        config(128, RetrainPolicy::Never),
    )
    .unwrap();
    let batch = StreamTuple::rows_from_dataset(&DriftStream::new(spec(u64::MAX), 5).next_batch(64))
        .unwrap();
    engine.ingest(&batch).unwrap();

    let json = engine.checkpoint().unwrap().to_json();
    assert!(json.contains("\"feature\":"), "GBT trees must have splits");
    let tampered = json.replacen("\"feature\":0", "\"feature\":99", 1);
    assert_ne!(json, tampered, "a feature-0 split must exist to tamper");
    match EngineCheckpoint::from_json(&tampered) {
        Err(StreamError::Checkpoint(msg)) => {
            assert!(msg.contains("feature 99"), "got: {msg}")
        }
        other => panic!("expected a typed Checkpoint error, got {other:?}"),
    }
}

/// One cheap fitted engine + checkpoint for the corruption tests.
fn small_checkpoint() -> EngineCheckpoint {
    let reference = spec(u64::MAX).reference(400, 3);
    let mut engine = StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        3,
        config(128, RetrainPolicy::Never),
    )
    .unwrap();
    let batch = StreamTuple::rows_from_dataset(&DriftStream::new(spec(u64::MAX), 5).next_batch(96))
        .unwrap();
    engine.ingest(&batch).unwrap();
    engine.checkpoint().unwrap()
}

#[test]
fn version_mismatch_is_a_typed_error() {
    let json = small_checkpoint()
        .to_json()
        .replacen("\"version\":5", "\"version\":6", 1);
    assert!(matches!(
        EngineCheckpoint::from_json(&json),
        Err(StreamError::CheckpointVersion {
            found: 6,
            expected: CHECKPOINT_VERSION
        })
    ));

    let mut ckpt = small_checkpoint();
    ckpt.version = 7;
    assert!(matches!(
        StreamEngine::restore(ckpt),
        Err(StreamError::CheckpointVersion { found: 7, .. })
    ));
}

#[test]
fn truncated_and_garbled_documents_are_typed_errors() {
    let json = small_checkpoint().to_json();
    for cut in [1, json.len() / 3, json.len() - 1] {
        assert!(
            matches!(
                EngineCheckpoint::from_json(&json[..cut]),
                Err(StreamError::Checkpoint(_))
            ),
            "truncation at {cut} must fail as Checkpoint"
        );
    }
    assert!(matches!(
        EngineCheckpoint::from_json(&json.replacen("\"schema\"", "\"schemo\"", 1)),
        Err(StreamError::Checkpoint(_))
    ));
}

#[test]
fn internally_inconsistent_checkpoints_are_rejected() {
    // Window stride disagreeing with the schema.
    let mut ckpt = small_checkpoint();
    ckpt.window.dim += 1;
    assert!(matches!(
        StreamEngine::restore(ckpt),
        Err(StreamError::Checkpoint(_))
    ));

    // Window capacity disagreeing with the configured window.
    let mut ckpt = small_checkpoint();
    ckpt.config.window += 1;
    assert!(matches!(
        StreamEngine::restore(ckpt),
        Err(StreamError::Checkpoint(_))
    ));

    // A detector state gone missing.
    let mut ckpt = small_checkpoint();
    ckpt.detectors.pop();
    assert!(matches!(
        StreamEngine::restore(ckpt),
        Err(StreamError::Checkpoint(_))
    ));

    // A cell profile gone missing.
    let mut ckpt = small_checkpoint();
    ckpt.profiles.pop();
    assert!(matches!(
        StreamEngine::restore(ckpt),
        Err(StreamError::Checkpoint(_))
    ));

    // A non-binary label smuggled into the window.
    let mut ckpt = small_checkpoint();
    ckpt.window.meta[0].label = Some(3);
    assert!(matches!(
        StreamEngine::restore(ckpt),
        Err(StreamError::BadLabel(3))
    ));

    // More window slots than the feature buffer can back.
    let mut ckpt = small_checkpoint();
    ckpt.window.features.pop();
    assert!(matches!(
        StreamEngine::restore(ckpt),
        Err(StreamError::Checkpoint(_))
    ));
}

#[test]
fn sharded_restore_revalidates_fleet_coherence() {
    let reference = spec(u64::MAX).reference(400, 9);
    let engine = ShardedEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        9,
        config(128, RetrainPolicy::Never),
        2,
    )
    .unwrap();
    let mut ckpt = engine.checkpoint().unwrap();

    // Tamper one shard's DI* floor: the restored fleet would judge the
    // aggregate by inconsistent floors, so from_engines must reject it.
    ckpt.shards[1].config.di_floor = 0.9;
    assert!(matches!(
        ShardedEngine::restore(ckpt),
        Err(StreamError::ConfigMismatch(_))
    ));

    let empty = ShardedCheckpoint {
        version: CHECKPOINT_VERSION,
        shards: Vec::new(),
    };
    assert!(matches!(
        ShardedEngine::restore(empty),
        Err(StreamError::NoShards)
    ));
}
