//! The async engine's determinism bridge, property-checked: with a
//! single-consumer monitor thread and a [`AsyncEngine::flush`] barrier,
//! the asynchronous pipeline must be **observationally identical** to the
//! synchronous [`StreamEngine`] on the same `DriftStream` — byte-identical
//! decisions, snapshots, alert sequences, retrain counts, and checkpoint
//! documents — across window sizes, batch shapes, drift onsets, and
//! retrain policies. The same property extends PR 3's checkpoint
//! round-trip contract to the async engine: checkpointing drains the queue
//! to a quiescent point first, so a restored async engine (or a sync
//! engine restored from the async document — the formats are one and the
//! same) replays bit-identically.

use cf_datasets::stream::{DriftStream, DriftStreamSpec};
use cf_learners::LearnerKind;
use cf_stream::{
    AsyncConfig, AsyncEngine, BackpressurePolicy, EngineCheckpoint, RetrainPolicy,
    ShardedAsyncEngine, ShardedEngine, ShardedTuple, StreamConfig, StreamEngine, StreamTuple,
};
use confair_core::confair::{AlphaMode, ConFairConfig};
use proptest::prelude::*;

fn spec(drift_onset: u64) -> DriftStreamSpec {
    DriftStreamSpec {
        drift_onset,
        ..DriftStreamSpec::default()
    }
}

/// Small windows/floors and fixed-α ConFair keep per-case bootstraps and
/// on-alert retrains cheap without weakening the bit-identity contract.
fn config(window: usize, retrain: RetrainPolicy) -> StreamConfig {
    StreamConfig {
        window,
        floor_min_window: 32,
        floor_cooldown: 400,
        retrain,
        confair: ConFairConfig {
            alpha: AlphaMode::Fixed {
                alpha_u: 2.0,
                alpha_w: 1.0,
            },
            ..ConFairConfig::default()
        },
        ..StreamConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Mirrors `sharded_consistency`: drive a sync engine and an async
    /// engine (flushed after every batch) over the same stream and pin
    /// every observable — including the serialised checkpoints — to byte
    /// identity.
    #[test]
    fn async_engine_is_observationally_identical_to_sync(
        window in 64usize..400,
        drift_onset in 0u64..1_200,
        batch_size in 20usize..400,
        n_batches in 2usize..5,
        stream_seed in 0u64..1_000,
        retrain_on_alert in 0u8..2,
        queue_depth in 1usize..8,
    ) {
        let retrain = if retrain_on_alert == 1 {
            RetrainPolicy::OnAlert { min_window: 48 }
        } else {
            RetrainPolicy::Never
        };
        let reference = spec(drift_onset).reference(800, 11);
        let mut sync = StreamEngine::from_reference(
            &reference, LearnerKind::Logistic, 11, config(window, retrain),
        ).unwrap();
        // Same reference + same seed bootstraps an identical engine, then
        // split across the async pipeline.
        let mut anc = AsyncEngine::from_engine(
            StreamEngine::from_reference(
                &reference, LearnerKind::Logistic, 11, config(window, retrain),
            ).unwrap(),
            AsyncConfig { queue_depth, backpressure: BackpressurePolicy::Block, ..AsyncConfig::default() },
        );

        let mut stream = DriftStream::new(spec(drift_onset), stream_seed);
        for _ in 0..n_batches {
            let batch =
                StreamTuple::rows_from_dataset(&stream.next_batch(batch_size)).unwrap();
            let sync_out = sync.ingest(&batch).unwrap();
            let async_decisions = anc.ingest(&batch).unwrap();
            prop_assert_eq!(&sync_out.decisions, &async_decisions,
                "decisions must not depend on which side of the split scores them");

            // The barrier: after flush, the monitor half has fully caught
            // up (including any retrain + model swap this batch caused).
            anc.flush().unwrap();
            prop_assert_eq!(anc.monitor_lag(), 0);
            prop_assert_eq!(anc.snapshot(), sync_out.snapshot);
            prop_assert_eq!(anc.tuples_monitored(), sync.tuples_seen());
        }

        // Converged state: alert sequence, retrains, counters, and the
        // checkpoint documents themselves are byte-identical.
        let async_alerts = anc.alerts();
        prop_assert_eq!(async_alerts.as_slice(), sync.alerts());
        prop_assert_eq!(anc.retrain_count(), sync.retrain_count());
        prop_assert_eq!(anc.window_counts(), *sync.window_counts());
        prop_assert_eq!(anc.dropped().tuples, 0, "Block never drops");
        prop_assert_eq!(
            anc.checkpoint().unwrap().to_json(),
            sync.checkpoint().unwrap().to_json(),
            "sync and async engines write the same checkpoint document"
        );

        // And the reunited engine is the sync engine, exactly.
        let mut reunited = anc.into_engine().unwrap();
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(batch_size)).unwrap();
        let a = sync.ingest(&batch).unwrap();
        let b = reunited.ingest(&batch).unwrap();
        prop_assert_eq!(a.decisions, b.decisions);
        prop_assert_eq!(a.alerts, b.alerts);
        prop_assert_eq!(a.snapshot, b.snapshot);
    }

    /// The PR 3 round-trip property, extended to the async engine:
    /// checkpoint (drains the queue first) → serialise → restore → ingest
    /// the rest ≡ an uninterrupted async run ≡ the sync engine.
    #[test]
    fn async_checkpoint_round_trips_bit_identically(
        window in 64usize..300,
        drift_onset in 0u64..800,
        batch_size in 20usize..300,
        stream_seed in 0u64..1_000,
        retrain_on_alert in 0u8..2,
    ) {
        let retrain = if retrain_on_alert == 1 {
            RetrainPolicy::OnAlert { min_window: 48 }
        } else {
            RetrainPolicy::Never
        };
        let reference = spec(drift_onset).reference(800, 13);
        let mut uninterrupted = AsyncEngine::from_reference(
            &reference, LearnerKind::Logistic, 13, config(window, retrain),
            AsyncConfig::default(),
        ).unwrap();

        let mut stream = DriftStream::new(spec(drift_onset), stream_seed);
        for _ in 0..2 {
            let batch =
                StreamTuple::rows_from_dataset(&stream.next_batch(batch_size)).unwrap();
            uninterrupted.ingest(&batch).unwrap();
        }

        // The checkpoint itself is the barrier: no explicit flush before.
        let doc = uninterrupted.checkpoint().unwrap().to_json();
        let mut restored = AsyncEngine::restore(
            EngineCheckpoint::from_json(&doc).unwrap(),
            AsyncConfig::default(),
        ).unwrap();
        prop_assert_eq!(restored.monitor_lag(), 0);
        prop_assert_eq!(restored.tuples_scored(), uninterrupted.tuples_scored());

        for _ in 0..2 {
            let batch =
                StreamTuple::rows_from_dataset(&stream.next_batch(batch_size)).unwrap();
            let a = uninterrupted.ingest(&batch).unwrap();
            let b = restored.ingest(&batch).unwrap();
            prop_assert_eq!(a, b);
            // Quiesce both pipelines between batches: whether a background
            // retrain's model swap lands before an *unflushed* next ingest
            // is scheduling luck, and the engine's determinism contract is
            // explicitly "at a quiescent point" (see async_engine.rs).
            uninterrupted.flush().unwrap();
            restored.flush().unwrap();
        }
        prop_assert_eq!(uninterrupted.alerts(), restored.alerts());
        prop_assert_eq!(uninterrupted.snapshot(), restored.snapshot());
        prop_assert_eq!(
            uninterrupted.checkpoint().unwrap().to_json(),
            restored.checkpoint().unwrap().to_json()
        );
    }

    /// The sharded async router against the sync sharded router: same
    /// routed batches, flush-per-batch, identical decisions, aggregates,
    /// and checkpoint documents.
    #[test]
    fn sharded_async_matches_sharded_sync(
        n_shards in 1usize..=3,
        batch_size in 30usize..400,
        stream_seed in 0u64..1_000,
        route_salt in 0u64..1_000,
    ) {
        let reference = spec(400).reference(800, 17);
        let cfg = config(192, RetrainPolicy::Never);
        let mut sync = ShardedEngine::from_reference(
            &reference, LearnerKind::Logistic, 17, cfg.clone(), n_shards,
        ).unwrap();
        let mut anc = ShardedAsyncEngine::from_sharded(
            ShardedEngine::from_reference(
                &reference, LearnerKind::Logistic, 17, cfg, n_shards,
            ).unwrap(),
            AsyncConfig::default(),
        );

        let route = |i: usize| -> u32 {
            let z = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(route_salt);
            ((z >> 7) % n_shards as u64) as u32
        };
        let mut stream = DriftStream::new(spec(400), stream_seed);
        for _ in 0..2 {
            let routed: Vec<ShardedTuple> =
                StreamTuple::rows_from_dataset(&stream.next_batch(batch_size))
                    .unwrap()
                    .into_iter()
                    .enumerate()
                    .map(|(i, tuple)| ShardedTuple { shard: route(i), tuple })
                    .collect();
            let sync_out = sync.ingest(&routed).unwrap();
            let async_decisions = anc.ingest(&routed).unwrap();
            prop_assert_eq!(&sync_out.decisions, &async_decisions);

            anc.flush().unwrap();
            prop_assert_eq!(anc.snapshot(), sync_out.snapshot);
            prop_assert_eq!(anc.merged_counts(), sync.merged_counts());
        }
        prop_assert_eq!(anc.tuples_scored(), sync.tuples_seen());
        prop_assert_eq!(anc.tuples_monitored(), sync.tuples_seen());
        prop_assert_eq!(
            anc.checkpoint().unwrap().to_json(),
            sync.checkpoint().unwrap().to_json()
        );

        // Reuniting the async fleet gives back the sync fleet, exactly.
        let reunited = anc.into_sharded().unwrap();
        prop_assert_eq!(reunited.snapshot(), sync.snapshot());
        prop_assert_eq!(reunited.tuples_seen(), sync.tuples_seen());
    }
}

/// Validation failures must reject the batch before anything is scored or
/// enqueued — same whole-batch semantics as the sync engine.
#[test]
fn async_validation_rejects_before_enqueue() {
    let reference = spec(u64::MAX).reference(400, 3);
    let mut engine = AsyncEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        3,
        config(128, RetrainPolicy::Never),
        AsyncConfig::default(),
    )
    .unwrap();
    let mut batch =
        StreamTuple::rows_from_dataset(&DriftStream::new(spec(u64::MAX), 5).next_batch(8)).unwrap();
    batch[5].group = 7;
    assert!(engine.ingest(&batch).is_err());
    engine.flush().unwrap();
    assert_eq!(engine.tuples_scored(), 0);
    assert_eq!(engine.tuples_monitored(), 0);
}

/// A sync engine restores an async checkpoint and vice versa — the
/// document is one format, so operators can switch serving modes at a
/// restart boundary.
#[test]
fn checkpoints_are_interchangeable_across_engines() {
    let reference = spec(300).reference(600, 23);
    let mut anc = AsyncEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        23,
        config(192, RetrainPolicy::Never),
        AsyncConfig::default(),
    )
    .unwrap();
    let mut stream = DriftStream::new(spec(300), 29);
    let batch = StreamTuple::rows_from_dataset(&stream.next_batch(220)).unwrap();
    anc.ingest(&batch).unwrap();

    let doc = anc.checkpoint().unwrap().to_json();
    let mut as_sync = StreamEngine::restore(EngineCheckpoint::from_json(&doc).unwrap()).unwrap();
    let mut as_async = AsyncEngine::restore(
        EngineCheckpoint::from_json(&doc).unwrap(),
        AsyncConfig::default(),
    )
    .unwrap();

    for _ in 0..2 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(150)).unwrap();
        let a = as_sync.ingest(&batch).unwrap().decisions;
        let b = as_async.ingest(&batch).unwrap();
        assert_eq!(a, b);
    }
    as_async.flush().unwrap();
    assert_eq!(as_sync.snapshot(), as_async.snapshot());
    assert_eq!(as_sync.alerts(), as_async.alerts().as_slice());
}
