//! The audit trail's replay contract, property-checked: a JSONL trail
//! emitted by a live engine — sync, async (at quiescence), or sharded —
//! must replay through [`cf_telemetry::replay`] into the **byte-identical**
//! snapshot and alert sequences the live run produced, because
//! [`FairnessSnapshot::from_counts`] and the replayer recompute every
//! reading through the same [`SnapshotData::from_counters`] arithmetic.
//! Under [`BackpressurePolicy::DropOldest`] the trail additionally carries
//! typed drop events, and replays into the monitor's *actual* (post-drop)
//! state, not the fiction of a lossless run.

use cf_datasets::stream::{DriftStream, DriftStreamSpec};
use cf_learners::LearnerKind;
use cf_stream::{
    AsyncConfig, AsyncEngine, BackpressurePolicy, DriftAlert, GroupCounts, LabelFeedback,
    RetrainPolicy, ShardedAsyncEngine, ShardedEngine, ShardedFeedback, ShardedTuple, StreamConfig,
    StreamEngine, StreamTuple,
};
use cf_telemetry::{
    replay, replay_file, AlertData, JsonlSink, RingSink, SharedSink, SnapshotData, TelemetryEvent,
    WindowCounters,
};
use confair_core::confair::{AlphaMode, ConFairConfig};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

fn spec(drift_onset: u64) -> DriftStreamSpec {
    DriftStreamSpec {
        drift_onset,
        ..DriftStreamSpec::default()
    }
}

fn config(window: usize, retrain: RetrainPolicy) -> StreamConfig {
    StreamConfig {
        window,
        floor_min_window: 32,
        floor_cooldown: 400,
        retrain,
        confair: ConFairConfig {
            alpha: AlphaMode::Fixed {
                alpha_u: 2.0,
                alpha_w: 1.0,
            },
            ..ConFairConfig::default()
        },
        ..StreamConfig::default()
    }
}

/// A ring sink plus the `SharedSink` handle the engines take; the concrete
/// `Arc` stays with the test so the captured events can be read back.
fn ring() -> (Arc<Mutex<RingSink>>, SharedSink) {
    let ring = Arc::new(Mutex::new(RingSink::new(1 << 16)));
    let sink: SharedSink = ring.clone();
    (ring, sink)
}

fn events_of(ring: &Arc<Mutex<RingSink>>) -> Vec<TelemetryEvent> {
    ring.lock().unwrap().events()
}

/// Serialise events exactly as [`JsonlSink`] writes them: one compact JSON
/// object per line.
fn jsonl_of(events: &[TelemetryEvent]) -> String {
    events
        .iter()
        .map(|e| serde_json::to_string(e).unwrap())
        .collect::<Vec<_>>()
        .join("\n")
}

fn mirror(c: &GroupCounts) -> WindowCounters {
    WindowCounters {
        total: c.total,
        selected: c.selected,
        violations: c.violations,
        labeled: c.labeled,
        label_positive: c.label_positive,
        true_positive: c.true_positive,
        false_positive: c.false_positive,
    }
}

fn mirror_both(counts: &[GroupCounts]) -> Vec<WindowCounters> {
    counts.iter().map(mirror).collect()
}

fn alert_mirror(a: &DriftAlert) -> AlertData {
    AlertData {
        kind: a.kind.wire_name().to_string(),
        group: a.group,
        at_tuple: a.at_tuple,
        statistic: a.statistic,
        threshold: a.threshold,
    }
}

/// Strip the tuple's label so ground truth can arrive later as feedback.
fn unlabeled(batch: &[StreamTuple]) -> Vec<StreamTuple> {
    batch
        .iter()
        .map(|t| StreamTuple {
            label: None,
            ..t.clone()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole property, sync engine: drive ingest + delayed feedback
    /// + a mid-run checkpoint with a sink installed, then replay the trail
    /// and require the byte-identical snapshot sequence, alert sequence,
    /// and final window counters.
    #[test]
    fn sync_trail_replays_byte_identically(
        window in 64usize..300,
        drift_onset in 0u64..800,
        batch_size in 24usize..200,
        n_batches in 2usize..5,
        stream_seed in 0u64..1_000,
        retrain_on_alert in 0u8..2,
    ) {
        let retrain = if retrain_on_alert == 1 {
            RetrainPolicy::OnAlert { min_window: 48 }
        } else {
            RetrainPolicy::Never
        };
        let reference = spec(drift_onset).reference(800, 19);
        let mut engine = StreamEngine::from_reference(
            &reference, LearnerKind::Logistic, 19, config(window, retrain),
        ).unwrap();
        let (ring, sink) = ring();
        engine.set_sink(sink);

        let mut stream = DriftStream::new(spec(drift_onset), stream_seed);
        let mut live_snapshots: Vec<SnapshotData> = Vec::new();
        for b in 0..n_batches {
            let labeled =
                StreamTuple::rows_from_dataset(&stream.next_batch(batch_size)).unwrap();
            let out = engine.ingest(&unlabeled(&labeled)).unwrap();
            live_snapshots.push(out.snapshot.to_data());

            // Ground truth for every other tuple trails its batch.
            let fb: Vec<LabelFeedback> = labeled
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == 0)
                .map(|(i, t)| LabelFeedback {
                    id: out.first_id + i as u64,
                    label: t.label.unwrap(),
                })
                .collect();
            let fo = engine.feedback(&fb).unwrap();
            live_snapshots.push(fo.snapshot.to_data());

            if b == 0 {
                // A mid-run checkpoint marker must not perturb the replay.
                engine.checkpoint().unwrap();
            }
        }

        let run = replay(&jsonl_of(&events_of(&ring))).unwrap();
        prop_assert_eq!(&run.snapshots, &live_snapshots,
            "replayed snapshot sequence == live sequence");
        let live_alerts: Vec<AlertData> =
            engine.alerts().iter().map(alert_mirror).collect();
        prop_assert_eq!(&run.alerts, &live_alerts);
        prop_assert_eq!(run.counters, mirror_both(engine.window_counts()));
        prop_assert_eq!(run.retrains, engine.retrain_count());
        prop_assert_eq!(run.dropped_tuples, 0u64);
    }

    /// The async engine at quiescence: flushed after every batch, its
    /// trail must be *the sync twin's trail* — event for event, with only
    /// the wall-clock repair duration allowed to differ — and must replay
    /// to the same sequences.
    #[test]
    fn async_trail_at_quiescence_matches_sync_twin(
        window in 64usize..300,
        drift_onset in 0u64..800,
        batch_size in 24usize..200,
        stream_seed in 0u64..1_000,
        retrain_on_alert in 0u8..2,
        queue_depth in 1usize..8,
    ) {
        let retrain = if retrain_on_alert == 1 {
            RetrainPolicy::OnAlert { min_window: 48 }
        } else {
            RetrainPolicy::Never
        };
        let reference = spec(drift_onset).reference(800, 29);
        let mut sync = StreamEngine::from_reference(
            &reference, LearnerKind::Logistic, 29, config(window, retrain),
        ).unwrap();
        let (sync_ring, sync_sink) = ring();
        sync.set_sink(sync_sink);

        let mut inner = StreamEngine::from_reference(
            &reference, LearnerKind::Logistic, 29, config(window, retrain),
        ).unwrap();
        let (async_ring, async_sink) = ring();
        // Installed before the split, so the sink travels with the monitor
        // to its background thread.
        inner.set_sink(async_sink);
        let mut anc = AsyncEngine::from_engine(
            inner,
            AsyncConfig { queue_depth, backpressure: BackpressurePolicy::Block, ..AsyncConfig::default() },
        );

        let mut stream = DriftStream::new(spec(drift_onset), stream_seed);
        let mut live_snapshots: Vec<SnapshotData> = Vec::new();
        for _ in 0..3 {
            let labeled =
                StreamTuple::rows_from_dataset(&stream.next_batch(batch_size)).unwrap();
            let batch = unlabeled(&labeled);
            let out = sync.ingest(&batch).unwrap();
            anc.ingest(&batch).unwrap();
            live_snapshots.push(out.snapshot.to_data());

            let fb: Vec<LabelFeedback> = labeled
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 3 == 0)
                .map(|(i, t)| LabelFeedback {
                    id: out.first_id + i as u64,
                    label: t.label.unwrap(),
                })
                .collect();
            let fo = sync.feedback(&fb).unwrap();
            anc.feedback(&fb).unwrap();
            live_snapshots.push(fo.snapshot.to_data());
            // Quiescence is the contract: the async trail is only
            // well-ordered relative to the sync one at a barrier.
            anc.flush().unwrap();
        }

        // Event-for-event identity, modulo the one wall-clock field.
        let scrub = |events: Vec<TelemetryEvent>| -> Vec<TelemetryEvent> {
            events
                .into_iter()
                .map(|mut e| {
                    if let TelemetryEvent::RepairEnd(re) = &mut e {
                        re.duration_us = 0;
                    }
                    e
                })
                .collect()
        };
        let sync_events = scrub(events_of(&sync_ring));
        let async_events = scrub(events_of(&async_ring));
        prop_assert_eq!(&sync_events, &async_events,
            "at quiescence the async trail is the sync trail");

        // And the async trail replays into the live sequences.
        let run = replay(&jsonl_of(&async_events)).unwrap();
        prop_assert_eq!(&run.snapshots, &live_snapshots);
        let live_alerts: Vec<AlertData> =
            anc.alerts().iter().map(alert_mirror).collect();
        prop_assert_eq!(&run.alerts, &live_alerts);
        prop_assert_eq!(run.counters, mirror_both(&anc.window_counts()[..]));
    }

    /// Sharded: every shard keeps its own trail, and each replays
    /// standalone into that shard's live sequences (empty sub-batches
    /// emit nothing, so shards skipped by the router stay silent).
    #[test]
    fn sharded_trails_replay_per_shard(
        n_shards in 2usize..=3,
        batch_size in 40usize..200,
        stream_seed in 0u64..1_000,
        route_salt in 0u64..1_000,
    ) {
        let reference = spec(400).reference(800, 31);
        let mut engine = ShardedEngine::from_reference(
            &reference, LearnerKind::Logistic, 31,
            config(128, RetrainPolicy::Never), n_shards,
        ).unwrap();
        let mut rings = Vec::new();
        for s in 0..n_shards {
            let (ring, sink) = ring();
            engine.set_sink(s as u32, sink).unwrap();
            rings.push(ring);
        }

        let route = |i: usize| -> u32 {
            let z = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(route_salt);
            ((z >> 7) % n_shards as u64) as u32
        };
        let mut stream = DriftStream::new(spec(400), stream_seed);
        let mut live: Vec<Vec<SnapshotData>> = vec![Vec::new(); n_shards];
        for _ in 0..2 {
            let labeled =
                StreamTuple::rows_from_dataset(&stream.next_batch(batch_size)).unwrap();
            let routed: Vec<ShardedTuple> = unlabeled(&labeled)
                .into_iter()
                .enumerate()
                .map(|(i, tuple)| ShardedTuple { shard: route(i), tuple })
                .collect();
            let mut shard_got = vec![0usize; n_shards];
            for r in &routed {
                shard_got[r.shard as usize] += 1;
            }
            let out = engine.ingest(&routed).unwrap();
            for s in 0..n_shards {
                if shard_got[s] > 0 {
                    live[s].push(out.per_shard[s].snapshot.to_data());
                }
            }

            // Feedback routes by (shard, per-shard id): tuple i of the
            // batch was the k-th tuple of its shard, so its id is that
            // shard's first_id + k.
            let fb: Vec<ShardedFeedback> = routed
                .iter()
                .zip(&labeled)
                .enumerate()
                .scan(vec![0u64; n_shards], |cursors, (i, (r, l))| {
                    let s = r.shard as usize;
                    let k = cursors[s];
                    cursors[s] += 1;
                    Some((i, s, k, l.label.unwrap()))
                })
                .filter(|(i, ..)| i % 2 == 0)
                .map(|(_, s, k, label)| ShardedFeedback {
                    shard: s as u32,
                    feedback: LabelFeedback {
                        id: out.per_shard[s].first_id + k,
                        label,
                    },
                })
                .collect();
            let mut fb_got = vec![0usize; n_shards];
            for r in &fb {
                fb_got[r.shard as usize] += 1;
            }
            let fo = engine.feedback(&fb).unwrap();
            for s in 0..n_shards {
                if fb_got[s] > 0 {
                    live[s].push(fo[s].snapshot.to_data());
                }
            }
        }

        for s in 0..n_shards {
            let run = replay(&jsonl_of(&events_of(&rings[s]))).unwrap();
            prop_assert_eq!(&run.snapshots, &live[s],
                "shard {} trail replays its own sequence", s);
            let shard = engine.shard(s as u32).unwrap();
            prop_assert_eq!(run.counters, mirror_both(shard.window_counts()));
            let live_alerts: Vec<AlertData> =
                shard.alerts().iter().map(alert_mirror).collect();
            prop_assert_eq!(&run.alerts, &live_alerts);
        }
    }
}

/// Sharded async: sinks installed before the split travel with each
/// shard's monitor thread; at quiescence each shard's trail replays into
/// that shard's published state.
#[test]
fn sharded_async_trails_replay_at_quiescence() {
    let n_shards = 2;
    let reference = spec(300).reference(700, 37);
    let mut inner = ShardedEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        37,
        config(128, RetrainPolicy::Never),
        n_shards,
    )
    .unwrap();
    let mut rings = Vec::new();
    for s in 0..n_shards {
        let (ring, sink) = ring();
        inner.set_sink(s as u32, sink).unwrap();
        rings.push(ring);
    }
    let mut anc = ShardedAsyncEngine::from_sharded(inner, AsyncConfig::default());

    let mut stream = DriftStream::new(spec(300), 41);
    for round in 0..3 {
        let routed: Vec<ShardedTuple> =
            StreamTuple::rows_from_dataset(&stream.next_batch(120 + round))
                .unwrap()
                .into_iter()
                .enumerate()
                .map(|(i, tuple)| ShardedTuple {
                    shard: (i % n_shards) as u32,
                    tuple,
                })
                .collect();
        anc.ingest(&routed).unwrap();
    }
    anc.flush().unwrap();
    assert_eq!(anc.monitor_lag(), 0, "max over shards after a flush");

    for (s, ring) in rings.iter().enumerate() {
        let run = replay(&jsonl_of(&events_of(ring))).unwrap();
        let shard = anc.shard(s as u32).unwrap();
        assert_eq!(run.counters, mirror_both(&shard.window_counts()[..]));
        assert_eq!(
            run.snapshots.last().unwrap(),
            &shard.snapshot().to_data(),
            "shard {s}'s last replayed snapshot is its published reading"
        );
    }
}

/// A config that makes the DI*-floor alert (and with it the on-alert
/// retrain) fire early and repeatedly: a floor of 0.99 is essentially
/// unattainable, so every `floor_cooldown` tuples past `floor_min_window`
/// the monitor alerts and stalls in a retrain.
fn alerting_config(window: usize, floor_cooldown: u64) -> StreamConfig {
    StreamConfig {
        di_floor: 0.99,
        floor_min_window: 32,
        floor_cooldown,
        retrain: RetrainPolicy::OnAlert { min_window: 48 },
        ..config(window, RetrainPolicy::Never)
    }
}

/// Event ordering within one batch: ingest_batch → drift_alert (with its
/// moved-cell explanation) → repair_start → repair_end → model_swap.
#[test]
fn events_within_a_batch_are_causally_ordered() {
    let reference = spec(u64::MAX).reference(800, 43);
    let mut engine = StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        43,
        alerting_config(192, 400),
    )
    .unwrap();
    let (ring, sink) = ring();
    engine.set_sink(sink);

    let mut stream = DriftStream::new(spec(u64::MAX), 47);
    let mut retrained = false;
    for _ in 0..6 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(100)).unwrap();
        retrained |= engine.ingest(&batch).unwrap().retrained;
    }
    assert!(retrained, "the 0.99 floor must have forced a retrain");

    let events = events_of(&ring);
    let mut saw_repair = false;
    for (i, event) in events.iter().enumerate() {
        match event {
            TelemetryEvent::DriftAlert(e) => {
                assert!(
                    matches!(events[i - 1], TelemetryEvent::IngestBatch(_))
                        || matches!(events[i - 1], TelemetryEvent::DriftAlert(_)),
                    "an alert follows its batch (or a sibling alert)"
                );
                assert!(!e.explanation.summary.is_empty());
                assert!(e
                    .explanation
                    .cell
                    .contains(&format!("group={}", e.alert.group)));
            }
            TelemetryEvent::RepairStart(_) => {
                saw_repair = true;
                assert!(
                    matches!(events[i - 1], TelemetryEvent::DriftAlert(_)),
                    "repair starts right after the alert(s) that caused it"
                );
                assert!(
                    matches!(events[i + 1], TelemetryEvent::RepairEnd(_)),
                    "repair_end pairs with repair_start"
                );
            }
            TelemetryEvent::RepairEnd(e) if e.outcome == "retrained" => {
                assert!(
                    matches!(events[i + 1], TelemetryEvent::ModelSwap(_)),
                    "a successful repair publishes its model next"
                );
            }
            _ => {}
        }
    }
    assert!(saw_repair);
}

/// `DropOldest` ordering: records evicted under backpressure must surface
/// as drop events in the trail, and the trail must replay into the
/// monitor's *actual* post-drop state — counters, snapshot, and alert
/// sequence all reflecting only what was monitored.
#[test]
fn drop_oldest_trail_replays_the_post_drop_run() {
    // Backpressure is scheduling-dependent; retry seeds until a run
    // actually drops (retrain stalls with queue_depth=1 make that fast).
    for seed in 0..25u64 {
        if try_drop_run(seed) {
            return;
        }
    }
    panic!("no seed produced a dropped record under DropOldest");
}

fn try_drop_run(seed: u64) -> bool {
    let reference = spec(u64::MAX).reference(700, 53);
    let mut inner = StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        53,
        alerting_config(128, 256),
    )
    .unwrap();
    let (ring, sink) = ring();
    inner.set_sink(sink);
    let mut anc = AsyncEngine::from_engine(
        inner,
        AsyncConfig {
            queue_depth: 1,
            backpressure: BackpressurePolicy::DropOldest,
            ..AsyncConfig::default()
        },
    );

    let mut stream = DriftStream::new(spec(u64::MAX), seed);
    for _ in 0..30 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(64)).unwrap();
        anc.ingest(&batch).unwrap();
    }
    anc.flush().unwrap();
    let dropped = anc.dropped();
    if dropped.tuples == 0 {
        return false;
    }

    let events = events_of(&ring);
    let drop_events: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::Drop(d) => Some(d.clone()),
            _ => None,
        })
        .collect();
    assert!(!drop_events.is_empty(), "drops must be audited");
    for pair in drop_events.windows(2) {
        assert!(
            pair[1].tuples >= pair[0].tuples && pair[1].batches >= pair[0].batches,
            "drop counters are cumulative"
        );
    }
    let last = drop_events.last().unwrap();
    assert_eq!(
        (last.batches, last.tuples),
        (dropped.batches, dropped.tuples),
        "the trail accounts for every dropped record"
    );

    // The replay reconstructs what the monitor actually saw — the
    // post-drop sequence, not the lossless fiction.
    let run = replay(&jsonl_of(&events)).unwrap();
    assert_eq!(run.dropped_tuples, dropped.tuples);
    assert_eq!(run.counters, mirror_both(&anc.window_counts()[..]));
    assert_eq!(
        cf_stream::FairnessSnapshot::from_data(SnapshotData::from_counters(
            &run.counters,
            anc.config().di_floor,
        )),
        anc.snapshot(),
        "replayed counters recompute the live post-drop snapshot"
    );
    let live_alerts: Vec<AlertData> = anc.alerts().iter().map(alert_mirror).collect();
    assert_eq!(run.alerts, live_alerts);
    true
}

/// The restart story end to end: a first engine writes a JSONL trail and
/// checkpoints; a second engine restores **with a fresh trail** whose
/// opening `"restored"` event re-anchors the replay — so the second file
/// replays standalone, with no access to the first run's history.
#[test]
fn restored_trail_reanchors_and_replays_standalone() {
    let dir = std::env::temp_dir();
    let first_path = dir.join(format!("cf_stream_trail_a_{}.jsonl", std::process::id()));
    let second_path = dir.join(format!("cf_stream_trail_b_{}.jsonl", std::process::id()));

    let reference = spec(300).reference(700, 59);
    let mut engine = StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        59,
        config(160, RetrainPolicy::Never),
    )
    .unwrap();
    let first_sink = cf_telemetry::shared_sink(JsonlSink::create(&first_path).unwrap());
    engine.set_sink(first_sink.clone());
    let mut stream = DriftStream::new(spec(300), 61);
    for _ in 0..2 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(150)).unwrap();
        engine.ingest(&batch).unwrap();
    }
    let ckpt = engine.checkpoint().unwrap();
    first_sink.lock().unwrap().flush();

    // The first trail replays on its own (and ends at the checkpoint).
    let first_run = replay_file(&first_path).unwrap();
    assert_eq!(first_run.counters, mirror_both(engine.window_counts()));

    // Restore into a new trail: no shared history with the first file.
    let second_sink = cf_telemetry::shared_sink(JsonlSink::create(&second_path).unwrap());
    let mut restored = StreamEngine::restore_with_sink(ckpt, second_sink.clone()).unwrap();
    let mut live_snapshots = Vec::new();
    for _ in 0..2 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(150)).unwrap();
        live_snapshots.push(restored.ingest(&batch).unwrap().snapshot.to_data());
    }
    second_sink.lock().unwrap().flush();

    let second_run = replay_file(&second_path).unwrap();
    assert_eq!(
        &second_run.snapshots, &live_snapshots,
        "the restored event's absolute counters re-anchor the replay"
    );
    assert_eq!(second_run.counters, mirror_both(restored.window_counts()));

    let _ = std::fs::remove_file(&first_path);
    let _ = std::fs::remove_file(&second_path);
}
