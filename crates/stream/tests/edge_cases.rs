//! Integration tests for the streaming subsystem: the end-to-end
//! drift-alert-retrain loop plus the edge cases the engine must survive
//! (empty window, single-group streams, windows smaller than a batch, and
//! alert hysteresis on stationary streams).

use cf_datasets::stream::{DriftStream, DriftStreamSpec};
use cf_learners::LearnerKind;
use cf_stream::{
    AsyncConfig, AsyncEngine, DriftKind, EngineCheckpoint, RetrainPolicy, ShardedEngine,
    ShardedTuple, StreamConfig, StreamEngine, StreamError, StreamTuple, CHECKPOINT_VERSION,
};

fn spec() -> DriftStreamSpec {
    DriftStreamSpec {
        drift_onset: 6_000,
        ..DriftStreamSpec::default()
    }
}

fn engine(config: StreamConfig) -> StreamEngine {
    let reference = spec().reference(4_000, 42);
    StreamEngine::from_reference(&reference, LearnerKind::Logistic, 42, config).unwrap()
}

fn batches(stream: &mut DriftStream, n_batches: usize, batch: usize) -> Vec<Vec<StreamTuple>> {
    (0..n_batches)
        .map(|_| StreamTuple::rows_from_dataset(&stream.next_batch(batch)).unwrap())
        .collect()
}

#[test]
fn drift_is_alerted_after_onset_never_before_and_retrain_restores_di() {
    let config = StreamConfig {
        retrain: RetrainPolicy::OnAlert { min_window: 1_000 },
        ..StreamConfig::default()
    };
    let mut engine = engine(config);
    let mut stream = DriftStream::new(spec(), 7);

    let batch = 250usize;
    let mut saw_drop_below_floor = false;
    for batch_tuples in batches(&mut stream, 80, batch) {
        let outcome = engine.ingest(&batch_tuples).unwrap();
        if outcome.snapshot.passes_di_floor() == Some(false) {
            saw_drop_below_floor = true;
        }
    }

    // 80 × 250 = 20,000 tuples; onset at 6,000.
    assert!(
        !engine.alerts().is_empty(),
        "the injected drift must raise at least one alert"
    );
    for alert in engine.alerts() {
        assert!(
            alert.at_tuple > 6_000,
            "no alert before the drift onset, got one at {}",
            alert.at_tuple
        );
    }
    assert!(
        engine
            .alerts()
            .iter()
            .any(|a| a.kind == DriftKind::ConformanceViolation && a.group == 1),
        "the drifting minority must trip its conformance detector"
    );
    assert!(
        saw_drop_below_floor,
        "the stale model must dip below the DI floor"
    );
    assert!(engine.retrain_count() >= 1, "the retraining hook must run");

    // After retraining, the post-drift distribution is the new normal:
    // the windowed DI* must recover above the EEOC floor.
    let final_snapshot = engine.snapshot();
    let di = final_snapshot.di_star.expect("both groups observed");
    assert!(
        di >= 0.8,
        "retraining must restore DI* above the 0.8 floor, got {di:.3} \
         ({})",
        final_snapshot.one_line()
    );
}

#[test]
fn stationary_stream_never_alerts() {
    // Alert hysteresis: a drift-free stream must stay quiet end to end —
    // no conformance alerts, no DI-floor flapping.
    let mut engine = engine(StreamConfig::default());
    let stationary = DriftStreamSpec {
        drift_onset: u64::MAX,
        ..spec()
    };
    let mut stream = DriftStream::new(stationary, 11);
    for batch_tuples in batches(&mut stream, 60, 250) {
        let outcome = engine.ingest(&batch_tuples).unwrap();
        assert!(
            outcome.alerts.is_empty(),
            "false alarm on a stationary stream at tuple {}: {:?}",
            engine.tuples_seen(),
            outcome.alerts
        );
    }
    assert_eq!(engine.alerts(), &[]);
    assert_eq!(engine.retrain_count(), 0);
}

#[test]
fn empty_window_and_empty_batch_are_well_defined() {
    let engine = engine(StreamConfig::default());
    // Snapshot over an empty window: all readings are absent, none NaN.
    let snapshot = engine.snapshot();
    assert_eq!(snapshot.window_len, 0);
    assert_eq!(snapshot.di_star, None);
    assert_eq!(snapshot.passes_di_floor(), None);
    assert_eq!(snapshot.selection_rate, [None, None]);

    // Ingesting an empty batch is a no-op, not an error.
    let mut engine = engine;
    let outcome = engine.ingest(&[]).unwrap();
    assert!(outcome.decisions.is_empty());
    assert!(outcome.alerts.is_empty());
    assert_eq!(engine.tuples_seen(), 0);

    // A zero-capacity window is rejected at construction.
    let reference = spec().reference(1_000, 1);
    let config = StreamConfig {
        window: 0,
        ..StreamConfig::default()
    };
    assert!(matches!(
        StreamEngine::from_reference(&reference, LearnerKind::Logistic, 1, config),
        Err(StreamError::EmptyWindow)
    ));
}

#[test]
fn single_group_stream_monitors_without_fairness_verdicts() {
    let mut engine = engine(StreamConfig::default());
    let mut stream = DriftStream::new(
        DriftStreamSpec {
            drift_onset: u64::MAX,
            ..spec()
        },
        13,
    );
    // Keep only majority tuples: the DI monitors must stay undefined (not
    // 0, not NaN, no floor alerts) while per-group telemetry still works.
    for _ in 0..20 {
        let all = StreamTuple::rows_from_dataset(&stream.next_batch(300)).unwrap();
        let majority_only: Vec<StreamTuple> = all.into_iter().filter(|t| t.group == 0).collect();
        let outcome = engine.ingest(&majority_only).unwrap();
        assert_eq!(outcome.snapshot.di_star, None);
        assert_eq!(outcome.snapshot.passes_di_floor(), None);
        assert_eq!(outcome.snapshot.selection_rate[1], None);
        assert!(outcome.snapshot.selection_rate[0].is_some());
        assert!(
            outcome.alerts.is_empty(),
            "no fairness verdicts on one group"
        );
    }
    assert!(engine.snapshot().violation_rate[0].is_some());
}

#[test]
fn window_smaller_than_batch_keeps_only_the_tail() {
    let config = StreamConfig {
        window: 64,
        ..StreamConfig::default()
    };
    let mut engine = engine(config);
    let mut stream = DriftStream::new(spec(), 17);
    let batch = StreamTuple::rows_from_dataset(&stream.next_batch(500)).unwrap();
    let outcome = engine.ingest(&batch).unwrap();
    // Decisions cover the whole batch even though the window cannot.
    assert_eq!(outcome.decisions.len(), 500);
    assert_eq!(engine.window_len(), 64);
    assert_eq!(outcome.snapshot.window_len, 64);
    assert_eq!(engine.tuples_seen(), 500);
    // The retained tail is exactly the last 64 tuples, in order.
    let window = engine.window_dataset("tail").unwrap();
    let expected: Vec<u8> = batch[500 - 64..].iter().map(|t| t.label.unwrap()).collect();
    assert_eq!(window.labels(), &expected[..]);
}

#[test]
fn retrain_on_degenerate_window_is_a_clean_error() {
    let mut engine = engine(StreamConfig::default());
    // Window with a single class: retraining must fail loudly, not panic.
    let mut stream = DriftStream::new(spec(), 19);
    let all = StreamTuple::rows_from_dataset(&stream.next_batch(400)).unwrap();
    let positives_only: Vec<StreamTuple> = all.into_iter().filter(|t| t.label == Some(1)).collect();
    engine.ingest(&positives_only).unwrap();
    assert!(matches!(
        engine.retrain_now(),
        Err(StreamError::DegenerateWindow(_))
    ));
}

#[test]
fn schema_mismatch_is_rejected() {
    let mut engine = engine(StreamConfig::default());
    let bad = StreamTuple {
        features: vec![1.0, 2.0, 3.0],
        group: 0,
        label: Some(0),
    };
    assert!(matches!(engine.ingest(&[bad]), Err(StreamError::Schema(_))));
    let bad_group = StreamTuple {
        features: vec![1.0, 2.0],
        group: 7,
        label: None,
    };
    assert!(matches!(
        engine.ingest(&[bad_group]),
        Err(StreamError::BadGroup(7))
    ));
    let bad_label = StreamTuple {
        features: vec![1.0, 2.0],
        group: 0,
        label: Some(3),
    };
    assert!(matches!(
        engine.ingest(&[bad_label]),
        Err(StreamError::BadLabel(3))
    ));
    // A rejected batch must not advance the engine at all.
    assert_eq!(engine.tuples_seen(), 0);
    assert_eq!(engine.window_len(), 0);
}

#[test]
fn k1_stream_has_no_pairs_and_fabricates_no_readings() {
    // K=1: a single cell has no ordered pairs, so every pairwise reading
    // must be *absent* — `None`, never a fabricated 0.0 or NaN — while
    // the cell's own monitors keep working.
    let k1 = DriftStreamSpec {
        groups: 1,
        drift_group: 0,
        drift_onset: u64::MAX,
        ..DriftStreamSpec::default()
    };
    let reference = k1.reference(2_000, 3);
    let config = StreamConfig {
        groups: 1,
        ..StreamConfig::default()
    };
    let mut engine =
        StreamEngine::from_reference(&reference, LearnerKind::Logistic, 3, config).unwrap();
    let mut stream = DriftStream::new(k1, 31);
    for _ in 0..10 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(250)).unwrap();
        let outcome = engine.ingest(&batch).unwrap();
        assert_eq!(outcome.snapshot.di_star, None, "no pair, no DI*");
        assert_eq!(
            outcome.snapshot.demographic_parity_gap, None,
            "no pair, no DP gap"
        );
        assert_eq!(outcome.snapshot.passes_di_floor(), None);
        assert_eq!(outcome.snapshot.selection_rate.len(), 1);
        assert!(outcome.snapshot.selection_rate[0].is_some());
        assert!(outcome.alerts.is_empty(), "no pairwise verdicts at K=1");
    }
    assert!(engine.snapshot().violation_rate[0].is_some());
    // And the single cell is still rejected beyond its range.
    let bad = StreamTuple {
        features: vec![1.0, 2.0],
        group: 1,
        label: None,
    };
    assert!(matches!(
        engine.ingest(&[bad]),
        Err(StreamError::BadGroup(1))
    ));
}

#[test]
fn empty_intersection_cells_stay_absent_not_zero() {
    // An 8-cell engine fed a stream that only ever populates cells 0..4
    // (the realistic sparse-intersection case): the empty cells' readings
    // stay `None`, the populated cells' monitoring is unaffected, and no
    // detector fires for a cell that has seen no tuples.
    let four_cells = DriftStreamSpec {
        groups: 4,
        minority_fraction: 0.6,
        drift_onset: u64::MAX,
        ..DriftStreamSpec::default()
    };
    let reference = four_cells.reference(3_000, 5);
    let config = StreamConfig {
        groups: 8,
        ..StreamConfig::default()
    };
    let mut engine =
        StreamEngine::from_reference(&reference, LearnerKind::Logistic, 5, config).unwrap();
    let mut stream = DriftStream::new(four_cells, 37);
    for _ in 0..8 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(250)).unwrap();
        engine.ingest(&batch).unwrap();
    }
    let snapshot = engine.snapshot();
    assert_eq!(snapshot.selection_rate.len(), 8);
    for cell in 0..4 {
        assert!(
            snapshot.selection_rate[cell].is_some(),
            "populated cell {cell} must report"
        );
    }
    for cell in 4..8 {
        assert_eq!(
            snapshot.selection_rate[cell], None,
            "empty cell {cell} must stay absent, not 0.0"
        );
        assert_eq!(snapshot.violation_rate[cell], None);
        assert_eq!(snapshot.labeled[cell], 0);
    }
    // Worst-pair readings range over populated cells only — defined, and
    // never NaN.
    let di = snapshot.di_star.expect("populated pairs exist");
    assert!(di.is_finite());
    assert!(
        engine.alerts().iter().all(|a| a.group < 4),
        "no detector may fire for a cell that has seen no tuples"
    );
}

#[test]
fn group_beyond_k_is_a_typed_error_at_every_ingest_boundary() {
    let k3 = DriftStreamSpec {
        groups: 3,
        minority_fraction: 0.5,
        drift_onset: u64::MAX,
        ..DriftStreamSpec::default()
    };
    let reference = k3.reference(2_000, 7);
    let config = StreamConfig {
        groups: 3,
        ..StreamConfig::default()
    };
    let bad = StreamTuple {
        features: vec![1.0, 2.0],
        group: 3, // == K: first id past the 0..3 cell range
        label: None,
    };

    // Sync boundary.
    let mut sync =
        StreamEngine::from_reference(&reference, LearnerKind::Logistic, 7, config.clone()).unwrap();
    assert!(matches!(
        sync.ingest(std::slice::from_ref(&bad)),
        Err(StreamError::BadGroup(3))
    ));
    assert_eq!(sync.tuples_seen(), 0, "rejected batch must not advance");

    // Async boundary: rejected at submission, before anything enqueues.
    let inner =
        StreamEngine::from_reference(&reference, LearnerKind::Logistic, 7, config.clone()).unwrap();
    let mut anc = AsyncEngine::from_engine(inner, AsyncConfig::default());
    assert!(matches!(
        anc.ingest(std::slice::from_ref(&bad)),
        Err(StreamError::BadGroup(3))
    ));
    anc.flush().unwrap();
    assert_eq!(anc.snapshot().window_len, 0);

    // Sharded boundary.
    let mut sharded =
        ShardedEngine::from_reference(&reference, LearnerKind::Logistic, 7, config, 2).unwrap();
    assert!(matches!(
        sharded.ingest(&[ShardedTuple {
            shard: 1,
            tuple: bad,
        }]),
        Err(StreamError::BadGroup(3))
    ));
    assert_eq!(sharded.snapshot().window_len, 0);
}

#[test]
fn mid_drift_binary_v3_checkpoint_upgrades_and_resumes_identically() {
    // Checkpoint a binary engine *mid-drift* (detectors warm, window
    // carrying post-onset tuples), rewrite the document to the v3 schema
    // it would have had before the K-ary refactor (no `config.groups`),
    // and restore through the upgrade chain: the document must come back
    // as K=2, re-serialise to the exact live v4 bytes, and resume the
    // stream identically to the uninterrupted engine.
    let drifted = DriftStreamSpec {
        drift_onset: 1_500,
        ..spec()
    };
    let reference = drifted.reference(3_000, 9);
    let mut engine = StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        9,
        StreamConfig::default(),
    )
    .unwrap();
    let mut stream = DriftStream::new(drifted, 41);
    for batch_tuples in batches(&mut stream, 10, 250) {
        engine.ingest(&batch_tuples).unwrap();
    }

    let live = engine.checkpoint().unwrap().to_json();
    // Peel off the fields appended after v3 (`config.groups` and the
    // version stamp; the v5 repair fields ride along — the upgrade chain
    // overwrites them with the same idle defaults either way) to
    // fabricate the pre-refactor document.
    assert!(live.contains("\"groups\":2") && live.contains("\"version\":5"));
    let v3 = live
        .replacen(",\"groups\":2", "", 1)
        .replacen("\"version\":5", "\"version\":3", 1);

    let upgraded = EngineCheckpoint::from_json(&v3).expect("v3 upgrades through the chain");
    assert_eq!(upgraded.version, CHECKPOINT_VERSION);
    assert_eq!(upgraded.config.groups, 2);
    assert_eq!(
        upgraded.to_json(),
        live,
        "upgrade restores the exact live-format bytes"
    );

    // The restored engine serves the remaining stream exactly as the
    // uninterrupted one does.
    let mut restored = StreamEngine::restore(upgraded).unwrap();
    for batch_tuples in batches(&mut stream, 4, 250) {
        let live = engine.ingest(&batch_tuples).unwrap();
        let resumed = restored.ingest(&batch_tuples).unwrap();
        assert_eq!(live.decisions, resumed.decisions);
        assert_eq!(
            serde_json::to_string(&live.snapshot.to_data()).unwrap(),
            serde_json::to_string(&resumed.snapshot.to_data()).unwrap()
        );
    }
    assert_eq!(engine.alerts(), restored.alerts());
}

#[test]
fn failed_on_alert_retrain_keeps_the_alert_log() {
    // Force an alert on a window that cannot retrain (one label per
    // group): the model selects the positives, DI* collapses, the floor
    // alert fires, the on-alert retrain fails on the single-class check —
    // and the engine must surface the error while keeping the batch
    // ingested and the alert logged.
    let config = StreamConfig {
        floor_min_window: 10,
        retrain: RetrainPolicy::OnAlert { min_window: 10 },
        ..StreamConfig::default()
    };
    let mut engine = engine(config);
    // Drift from tuple 0: the stale model rejects the rotated minority
    // positives while accepting the majority's, so DI* collapses.
    let drifted = DriftStreamSpec {
        drift_onset: 0,
        ..spec()
    };
    let mut stream = DriftStream::new(drifted, 23);
    let all = StreamTuple::rows_from_dataset(&stream.next_batch(4_000)).unwrap();
    // Positives only: the floor alert can fire, but the single-class
    // window cannot retrain.
    let skewed: Vec<StreamTuple> = all.into_iter().filter(|t| t.label == Some(1)).collect();
    let outcome = engine.ingest(&skewed).unwrap();
    // The serving work is intact: decisions returned, batch ingested,
    // alert logged — with the retrain failure reported alongside.
    assert_eq!(outcome.decisions.len(), skewed.len());
    assert!(matches!(
        outcome.retrain_error,
        Some(StreamError::DegenerateWindow(_))
    ));
    assert!(!outcome.retrained);
    assert_eq!(engine.tuples_seen(), skewed.len() as u64);
    assert_eq!(engine.retrain_count(), 0);
    assert!(
        !engine.alerts().is_empty(),
        "the alert that triggered the failed retrain must be logged"
    );
}
