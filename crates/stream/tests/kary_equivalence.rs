//! The K=2 equivalence contract: the runtime-K engine, configured with
//! two group cells, must be **byte-identical** to the pre-refactor
//! binary engine — decisions, snapshots, alerts, checkpoint documents,
//! and telemetry trails — across the sync, async-at-quiescence, and
//! sharded engines.
//!
//! The pin is a set of golden fixtures under `tests/fixtures/`, captured
//! once from the binary engine *before* the K-ary refactor landed (run
//! `cargo test --test kary_equivalence -- --ignored capture` against
//! that tree). Every scenario here is fully deterministic — seeded
//! streams, `RetrainPolicy::Never` (the repair episode's wall-clock
//! duration is the one nondeterministic trail field) — so the only
//! permitted divergence is the checkpoint schema version itself:
//! * trail comparison normalises the `"version"` stamp carried by
//!   checkpoint/restored events (the v3→v4 bump is the schema change
//!   this suite exists to police, not a behaviour change);
//! * checkpoint comparison routes the fixture through
//!   [`EngineCheckpoint::from_json`], whose upgrade chain is exactly the
//!   published migration path for pre-K documents.
//!
//! Alongside the pin, the K-ary half of the suite property-checks what
//! the binary engine could never express: drift injected into one of K
//! cells alerts only that cell's detector, and intersection-cell
//! counters sum to their parent marginals.

use cf_datasets::stream::{DriftStream, DriftStreamSpec};
use cf_learners::LearnerKind;
use cf_stream::{
    AsyncConfig, AsyncEngine, BackpressurePolicy, DriftKind, EngineCheckpoint, GroupLayout,
    LabelFeedback, RetrainPolicy, ShardedCheckpoint, ShardedEngine, ShardedFeedback, ShardedTuple,
    SlidingWindow, SlotMeta, StreamConfig, StreamEngine, StreamTuple,
};
use cf_telemetry::{RingSink, SharedSink, TelemetryEvent};
use confair_core::confair::{AlphaMode, ConFairConfig};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture(name: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {path:?} ({e}); fixtures are captured from the \
             pre-refactor binary engine with `cargo test --test kary_equivalence -- \
             --ignored capture_golden_fixtures` and committed"
        )
    })
}

fn spec(drift_onset: u64) -> DriftStreamSpec {
    DriftStreamSpec {
        drift_onset,
        ..DriftStreamSpec::default()
    }
}

/// The scenario config. Struct-update syntax keeps this compiling (and
/// meaning "two groups") on both sides of the refactor.
fn config() -> StreamConfig {
    StreamConfig {
        window: 160,
        floor_min_window: 32,
        floor_cooldown: 400,
        retrain: RetrainPolicy::Never,
        confair: ConFairConfig {
            alpha: AlphaMode::Fixed {
                alpha_u: 2.0,
                alpha_w: 1.0,
            },
            ..ConFairConfig::default()
        },
        ..StreamConfig::default()
    }
}

fn ring() -> (Arc<Mutex<RingSink>>, SharedSink) {
    let ring = Arc::new(Mutex::new(RingSink::new(1 << 16)));
    let sink: SharedSink = ring.clone();
    (ring, sink)
}

fn jsonl_of(ring: &Arc<Mutex<RingSink>>) -> String {
    ring.lock()
        .unwrap()
        .events()
        .iter()
        .map(|e| serde_json::to_string(e).unwrap())
        .collect::<Vec<_>>()
        .join("\n")
}

/// One compact JSON value per line, so fixtures diff line-by-line and
/// never depend on container-level serialisation.
fn jsonl<T: serde::Serialize>(items: &[T]) -> String {
    items
        .iter()
        .map(|x| serde_json::to_string(x).unwrap())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Normalise the one field the v3→v4 schema bump is *allowed* to change
/// in a trail: the checkpoint-format version stamped on checkpoint and
/// restored events. Everything else must match byte for byte.
fn scrub_versions(trail: &str) -> String {
    trail
        .replace("\"version\":3", "\"version\":0")
        .replace("\"version\":4", "\"version\":0")
        .replace("\"version\":5", "\"version\":0")
}

fn unlabeled(batch: &[StreamTuple]) -> Vec<StreamTuple> {
    batch
        .iter()
        .map(|t| StreamTuple {
            label: None,
            ..t.clone()
        })
        .collect()
}

/// Every artifact one scenario produces, as committed fixture strings.
struct Artifacts {
    /// `(file name, contents)`.
    files: Vec<(&'static str, String)>,
}

impl Artifacts {
    fn assert_matches_fixtures(&self) {
        for (name, live) in &self.files {
            let golden = fixture(name);
            let (golden, live) = if name.ends_with(".jsonl") {
                (scrub_versions(&golden), scrub_versions(live))
            } else if name.contains("sharded") {
                // Checkpoint documents: parse both sides through the
                // upgrade chain and compare the re-serialised bytes, so
                // the v3→v4 format bump (the schema change this suite
                // polices) is normalised and *everything else* — window
                // contents, counters, detector positions, model
                // parameters — must still match byte for byte.
                (
                    ShardedCheckpoint::from_json(&golden).unwrap().to_json(),
                    ShardedCheckpoint::from_json(live).unwrap().to_json(),
                )
            } else {
                (
                    EngineCheckpoint::from_json(&golden).unwrap().to_json(),
                    EngineCheckpoint::from_json(live).unwrap().to_json(),
                )
            };
            assert_eq!(
                golden, live,
                "{name}: K=2 run diverged from the pre-refactor binary engine"
            );
        }
    }
}

/// Sync engine: six batches of unlabeled ingest, delayed feedback on
/// every other tuple, a mid-run checkpoint, then a second engine restored
/// from that checkpoint replaying the tail of the stream.
fn sync_scenario() -> Artifacts {
    let reference = spec(300).reference(800, 19);
    let mut engine =
        StreamEngine::from_reference(&reference, LearnerKind::Logistic, 19, config()).unwrap();
    let (ring, sink) = ring();
    engine.set_sink(sink);

    let mut stream = DriftStream::new(spec(300), 7);
    let mut decisions: Vec<Vec<u8>> = Vec::new();
    let mut snapshots = Vec::new();
    let mut checkpoint_json = String::new();
    let mut batches: Vec<Vec<StreamTuple>> = Vec::new();
    let mut feedbacks: Vec<Vec<LabelFeedback>> = Vec::new();
    for b in 0..6 {
        let labeled = StreamTuple::rows_from_dataset(&stream.next_batch(140)).unwrap();
        let batch = unlabeled(&labeled);
        let out = engine.ingest(&batch).unwrap();
        decisions.push(out.decisions.clone());
        snapshots.push(out.snapshot.to_data());

        let fb: Vec<LabelFeedback> = labeled
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(i, t)| LabelFeedback {
                id: out.first_id + i as u64,
                label: t.label.unwrap(),
            })
            .collect();
        snapshots.push(engine.feedback(&fb).unwrap().snapshot.to_data());
        batches.push(batch);
        feedbacks.push(fb);

        if b == 1 {
            checkpoint_json = engine.checkpoint().unwrap().to_json();
        }
    }

    // Restore from the mid-run document (through the JSON round trip, so
    // post-refactor the fixture exercises the v3→v4 upgrade chain) and
    // replay the tail: the continuation must be the original's.
    let restored_ckpt = EngineCheckpoint::from_json(&checkpoint_json).unwrap();
    let mut restored = StreamEngine::restore(restored_ckpt).unwrap();
    let mut restored_snapshots = Vec::new();
    let mut restored_decisions: Vec<Vec<u8>> = Vec::new();
    for b in 2..6 {
        let out = restored.ingest(&batches[b]).unwrap();
        restored_decisions.push(out.decisions.clone());
        restored_snapshots.push(out.snapshot.to_data());
        restored_snapshots.push(restored.feedback(&feedbacks[b]).unwrap().snapshot.to_data());
    }
    assert_eq!(
        restored_decisions,
        decisions[2..6],
        "restore replays the tail"
    );

    Artifacts {
        files: vec![
            ("sync_decisions.jsonl", jsonl(&decisions)),
            ("sync_snapshots.jsonl", jsonl(&snapshots)),
            ("sync_alerts.jsonl", jsonl(engine.alerts())),
            ("sync_checkpoint.json", checkpoint_json),
            ("sync_trail.jsonl", jsonl_of(&ring)),
            ("sync_restored_snapshots.jsonl", jsonl(&restored_snapshots)),
        ],
    }
}

/// Async engine flushed to quiescence after every round: published
/// snapshots, alerts, and the monitor-thread trail.
fn async_scenario() -> Artifacts {
    let reference = spec(250).reference(800, 29);
    let mut inner =
        StreamEngine::from_reference(&reference, LearnerKind::Logistic, 29, config()).unwrap();
    let (ring, sink) = ring();
    inner.set_sink(sink);
    let mut anc = AsyncEngine::from_engine(
        inner,
        AsyncConfig {
            queue_depth: 4,
            backpressure: BackpressurePolicy::Block,
            ..AsyncConfig::default()
        },
    );

    let mut stream = DriftStream::new(spec(250), 11);
    let mut decisions: Vec<Vec<u8>> = Vec::new();
    let mut snapshots = Vec::new();
    let mut first_id = 0u64;
    for _ in 0..4 {
        let labeled = StreamTuple::rows_from_dataset(&stream.next_batch(130)).unwrap();
        decisions.push(anc.ingest(&unlabeled(&labeled)).unwrap());
        let fb: Vec<LabelFeedback> = labeled
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 == 0)
            .map(|(i, t)| LabelFeedback {
                id: first_id + i as u64,
                label: t.label.unwrap(),
            })
            .collect();
        first_id += labeled.len() as u64;
        anc.feedback(&fb).unwrap();
        anc.flush().unwrap();
        snapshots.push(anc.snapshot().to_data());
    }

    Artifacts {
        files: vec![
            ("async_decisions.jsonl", jsonl(&decisions)),
            ("async_snapshots.jsonl", jsonl(&snapshots)),
            ("async_alerts.jsonl", jsonl(&anc.alerts())),
            ("async_trail.jsonl", jsonl_of(&ring)),
        ],
    }
}

/// Two shards under a deterministic router: scattered decisions, merged
/// and per-shard snapshots, per-shard trails, and the sharded checkpoint.
fn sharded_scenario() -> Artifacts {
    let n_shards = 2usize;
    let reference = spec(350).reference(800, 31);
    let mut engine =
        ShardedEngine::from_reference(&reference, LearnerKind::Logistic, 31, config(), n_shards)
            .unwrap();
    let mut rings = Vec::new();
    for s in 0..n_shards {
        let (ring, sink) = ring();
        engine.set_sink(s as u32, sink).unwrap();
        rings.push(ring);
    }

    let route = |i: usize| -> u32 {
        let z = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((z >> 7) % n_shards as u64) as u32
    };
    let mut stream = DriftStream::new(spec(350), 13);
    let mut decisions: Vec<Vec<u8>> = Vec::new();
    let mut merged_snapshots = Vec::new();
    let mut shard_snapshots = Vec::new();
    for _ in 0..4 {
        let labeled = StreamTuple::rows_from_dataset(&stream.next_batch(150)).unwrap();
        let routed: Vec<ShardedTuple> = unlabeled(&labeled)
            .into_iter()
            .enumerate()
            .map(|(i, tuple)| ShardedTuple {
                shard: route(i),
                tuple,
            })
            .collect();
        let out = engine.ingest(&routed).unwrap();
        decisions.push(out.decisions.clone());
        for s in 0..n_shards {
            shard_snapshots.push(out.per_shard[s].snapshot.to_data());
        }

        let fb: Vec<ShardedFeedback> = routed
            .iter()
            .zip(&labeled)
            .enumerate()
            .scan(vec![0u64; n_shards], |cursors, (i, (r, l))| {
                let s = r.shard as usize;
                let k = cursors[s];
                cursors[s] += 1;
                Some((i, s, k, l.label.unwrap()))
            })
            .filter(|(i, ..)| i % 2 == 0)
            .map(|(_, s, k, label)| ShardedFeedback {
                shard: s as u32,
                feedback: LabelFeedback {
                    id: out.per_shard[s].first_id + k,
                    label,
                },
            })
            .collect();
        let fo = engine.feedback(&fb).unwrap();
        for outcome in &fo {
            shard_snapshots.push(outcome.snapshot.to_data());
        }
        merged_snapshots.push(engine.snapshot().to_data());
    }
    let checkpoint_json = engine.checkpoint().unwrap().to_json();

    // The sharded document restores (through the JSON round trip, hence
    // post-refactor through the per-shard upgrade chain) into an engine
    // whose merged snapshot is the live one.
    let restored =
        ShardedEngine::restore(ShardedCheckpoint::from_json(&checkpoint_json).unwrap()).unwrap();
    assert_eq!(
        serde_json::to_string(&restored.snapshot().to_data()).unwrap(),
        serde_json::to_string(&engine.snapshot().to_data()).unwrap(),
        "restored sharded engine republishes the live merged snapshot"
    );

    Artifacts {
        files: vec![
            ("sharded_decisions.jsonl", jsonl(&decisions)),
            ("sharded_merged_snapshots.jsonl", jsonl(&merged_snapshots)),
            ("sharded_shard_snapshots.jsonl", jsonl(&shard_snapshots)),
            ("sharded_trail_s0.jsonl", jsonl_of(&rings[0])),
            ("sharded_trail_s1.jsonl", jsonl_of(&rings[1])),
            ("sharded_checkpoint.json", checkpoint_json),
        ],
    }
}

/// Capture the golden fixtures. Run **only** against the pre-refactor
/// binary tree; refuses to clobber an existing pin.
#[test]
#[ignore = "writes golden fixtures; run once against the pre-refactor binary engine"]
fn capture_golden_fixtures() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for artifacts in [sync_scenario(), async_scenario(), sharded_scenario()] {
        for (name, contents) in &artifacts.files {
            let path = dir.join(name);
            assert!(
                !path.exists(),
                "{path:?} already captured; delete tests/fixtures/ by hand to re-pin"
            );
            std::fs::write(&path, contents).unwrap();
        }
    }
}

#[test]
fn sync_k2_is_byte_identical_to_the_binary_engine() {
    sync_scenario().assert_matches_fixtures();
}

#[test]
fn async_k2_at_quiescence_is_byte_identical_to_the_binary_engine() {
    async_scenario().assert_matches_fixtures();
}

#[test]
fn sharded_k2_is_byte_identical_to_the_binary_engine() {
    sharded_scenario().assert_matches_fixtures();
}

/// The fixture checkpoint — a genuine pre-refactor (v3 or earlier, once
/// upgraded) document — restores through `from_json`'s upgrade chain and
/// re-serialises to exactly what the live engine writes today. This is
/// the round-trip that proves the schema bump is the *only* difference.
#[test]
fn fixture_checkpoint_upgrades_to_the_live_document() {
    let golden = fixture("sync_checkpoint.json");
    let upgraded = EngineCheckpoint::from_json(&golden).unwrap();
    let rewritten = upgraded.to_json();
    let reparsed = EngineCheckpoint::from_json(&rewritten).unwrap();
    assert_eq!(
        rewritten,
        reparsed.to_json(),
        "the upgraded document is a serialisation fixed point"
    );
    // And it must actually restore into a serving engine.
    let mut engine = StreamEngine::restore(reparsed).unwrap();
    let mut stream = DriftStream::new(spec(300), 99);
    let batch = StreamTuple::rows_from_dataset(&stream.next_batch(64)).unwrap();
    engine.ingest(&batch).unwrap();

    let golden_sharded = fixture("sharded_checkpoint.json");
    let upgraded = ShardedCheckpoint::from_json(&golden_sharded).unwrap();
    assert_eq!(upgraded.to_json(), {
        let reparsed = ShardedCheckpoint::from_json(&upgraded.to_json()).unwrap();
        reparsed.to_json()
    });
    ShardedEngine::restore(upgraded).unwrap();
}

/// The K-ary property the binary engine could never express: drift
/// injected into exactly one of K cells trips **only that cell's**
/// Page–Hinkley detector — for every choice of drifted cell. A
/// stationary control run under the same configuration fires no
/// conformance alert at all, so the per-cell detectors neither miss the
/// drifted cell nor cross-talk into quiet ones.
#[test]
fn single_cell_drift_alerts_only_that_cells_detector() {
    let groups = 4usize;
    // Wide class separation: the 90° rotation then moves the drifted
    // cell's label clusters far outside their reference profile, so the
    // violation jump dwarfs any quiet cell's stationary noise. (A π
    // rotation would be *stronger* label drift but weaker signal — a
    // pure label swap leaves the feature marginal unchanged, invisible
    // to decision-plane conformance.)
    let kary_spec = |drift_group: u8, drift_onset: u64| DriftStreamSpec {
        groups,
        minority_fraction: 0.6,
        class_sep: 2.4,
        drift_group,
        drift_onset,
        ..DriftStreamSpec::default()
    };
    // More detector headroom than the binary scenarios: off-axis cells
    // are served less cleanly by the single global model, so their
    // stationary violation series is noisier — the drift jump (~0.5
    // violation probability) still clears λ=30 within a batch or two.
    let kary_config = StreamConfig {
        groups,
        detector: cf_stream::PageHinkleyConfig {
            delta: 0.05,
            lambda: 30.0,
            min_samples: 200,
            cooldown: 1_000,
        },
        ..config()
    };

    for drift_cell in 0..groups as u8 {
        let reference = kary_spec(drift_cell, 400).reference(2_400, 43 + u64::from(drift_cell));
        let mut engine = StreamEngine::from_reference(
            &reference,
            LearnerKind::Logistic,
            43,
            kary_config.clone(),
        )
        .unwrap();
        let mut stream = DriftStream::new(kary_spec(drift_cell, 400), 57 + u64::from(drift_cell));
        for _ in 0..10 {
            let batch = StreamTuple::rows_from_dataset(&stream.next_batch(200)).unwrap();
            engine.ingest(&batch).unwrap();
        }
        let conformance: Vec<_> = engine
            .alerts()
            .iter()
            .filter(|a| a.kind == DriftKind::ConformanceViolation)
            .collect();
        assert!(
            !conformance.is_empty(),
            "drift in cell {drift_cell} must trip its detector"
        );
        for alert in &conformance {
            assert_eq!(
                alert.group, drift_cell,
                "conformance alert for an undrifted cell: {alert:?}"
            );
        }

        // Stationary control: same engine configuration, no drift — no
        // cell's detector may fire.
        let mut control = StreamEngine::from_reference(
            &reference,
            LearnerKind::Logistic,
            43,
            kary_config.clone(),
        )
        .unwrap();
        let mut quiet =
            DriftStream::new(kary_spec(drift_cell, u64::MAX), 57 + u64::from(drift_cell));
        for _ in 0..10 {
            let batch = StreamTuple::rows_from_dataset(&quiet.next_batch(200)).unwrap();
            control.ingest(&batch).unwrap();
        }
        assert!(
            control
                .alerts()
                .iter()
                .all(|a| a.kind != DriftKind::ConformanceViolation),
            "stationary control fired a conformance alert: {:?}",
            control.alerts()
        );
    }
}

/// Intersection cells sum to their parents: pushing one tuple sequence
/// through a K=8 `sex × race` window and through the two collapsed
/// per-axis windows yields marginal counters that agree **exactly** on
/// every field — selection, violations, label joins and all — because
/// `GroupCounts` is additive and [`GroupLayout::marginal`] is plain
/// summation.
#[test]
fn intersection_cells_sum_to_their_parent_marginals() {
    let layout = GroupLayout::new(vec![2, 4]).unwrap();
    let mut intersect = SlidingWindow::new(512, 2, 128, layout.cells()).unwrap();
    let mut by_sex = SlidingWindow::new(512, 2, 128, 2).unwrap();
    let mut by_race = SlidingWindow::new(512, 2, 128, 4).unwrap();

    // splitmix64 — a deterministic tuple sequence without a rand dep.
    let mut state = 0x1234_5678_9ABC_DEFFu64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    for id in 0..5_000u64 {
        let r = next();
        let sex = (r & 1) as usize;
        let race = ((r >> 1) & 3) as usize;
        // A third of the tuples arrive unlabeled; half of those get their
        // label joined later, exercising the feedback plane's counters.
        let label = match r >> 3 & 3 {
            0 => None,
            _ => Some((r >> 5 & 1) as u8),
        };
        let meta = |group: u8| SlotMeta {
            id,
            group,
            label,
            decision: (r >> 6 & 1) as u8,
            violated: r >> 7 & 7 == 0,
        };
        let features = [(r >> 8 & 0xFF) as f64, (r >> 16 & 0xFF) as f64];
        intersect
            .push(meta(layout.cell_of(&[sex, race]).unwrap()), &features)
            .unwrap();
        by_sex.push(meta(sex as u8), &features).unwrap();
        by_race.push(meta(race as u8), &features).unwrap();
        if label.is_none() && r >> 9 & 1 == 0 {
            let late = (r >> 10 & 1) as u8;
            intersect.feedback(id, late);
            by_sex.feedback(id, late);
            by_race.feedback(id, late);
        }
    }

    assert!(
        intersect.counts().iter().all(|c| c.total > 0),
        "every intersection cell must be populated"
    );
    assert_eq!(
        layout.marginal(intersect.counts(), 0).unwrap(),
        by_sex.counts(),
        "sex marginal of the intersection cells"
    );
    assert_eq!(
        layout.marginal(intersect.counts(), 1).unwrap(),
        by_race.counts(),
        "race marginal of the intersection cells"
    );
}

/// Alert events in the fixture trails must keep their exact moved-cell
/// explanation strings at K=2 ("[W, U] = [...]" and `group={g}/...`) —
/// the operator-facing wording the binary engine shipped with.
#[test]
fn fixture_trails_carry_binary_alert_wording() {
    let mut saw_alert = false;
    for name in ["sync_trail.jsonl", "async_trail.jsonl"] {
        for line in fixture(name).lines() {
            let event: TelemetryEvent = serde_json::from_str(line).unwrap();
            if let TelemetryEvent::DriftAlert(e) = event {
                saw_alert = true;
                assert!(
                    e.explanation.summary.contains("[W, U] = ["),
                    "binary wording pinned: {}",
                    e.explanation.summary
                );
                assert!(e
                    .explanation
                    .cell
                    .contains(&format!("group={}", e.alert.group)));
            }
        }
    }
    assert!(saw_alert, "the pinned scenarios must produce drift alerts");
}
