//! The sharded engine's contract, property-checked: routing through a
//! [`ShardedEngine`] must be *observationally identical* to running N
//! standalone [`StreamEngine`]s by hand — byte-identical per-shard
//! decisions, alerts, counters, and clocks — and the cross-shard aggregate
//! snapshot must equal recomputing one from the summed per-shard counters.
//! Shard counts of 1..=4 vary the number of scoped ingest threads, so the
//! properties also pin down that parallel ingestion is deterministic
//! regardless of thread count.

use cf_datasets::stream::{DriftStream, DriftStreamSpec};
use cf_learners::LearnerKind;
use cf_stream::{
    FairnessSnapshot, GroupCounts, RetrainPolicy, ShardedEngine, ShardedTuple, StreamConfig,
    StreamEngine, StreamTuple,
};
use confair_core::confair::{AlphaMode, ConFairConfig};
use proptest::prelude::*;

/// A drifting spec so the streams actually trip detectors and floor alerts.
fn spec() -> DriftStreamSpec {
    DriftStreamSpec {
        drift_onset: 400,
        ..DriftStreamSpec::default()
    }
}

/// Fixed-α ConFair keeps per-case bootstraps cheap without changing any of
/// the routing/merging behaviour under test.
fn config() -> StreamConfig {
    StreamConfig {
        window: 256,
        floor_min_window: 64,
        retrain: RetrainPolicy::Never,
        confair: ConFairConfig {
            alpha: AlphaMode::Fixed {
                alpha_u: 2.0,
                alpha_w: 1.0,
            },
            ..ConFairConfig::default()
        },
        ..StreamConfig::default()
    }
}

/// Deterministic routing key: spreads tuples across shards unevenly enough
/// to leave some shards empty in some batches.
fn route(i: usize, salt: u64, n_shards: usize) -> u32 {
    let z = (i as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt);
    ((z >> 7) % n_shards as u64) as u32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sharded_engine_is_observationally_identical_to_standalone_engines(
        n_shards in 1usize..=4,
        n_batches in 1usize..=3,
        // Spans the router's serial/parallel dispatch threshold (512 per
        // shard), so both paths are pinned to the same observable
        // behaviour.
        batch_size in 40usize..2_500,
        stream_seed in 0u64..1_000,
        route_salt in 0u64..1_000,
    ) {
        let reference = spec().reference(800, 11);
        let mut sharded = ShardedEngine::from_reference(
            &reference, LearnerKind::Logistic, 11, config(), n_shards,
        ).unwrap();
        let mut standalone: Vec<StreamEngine> = (0..n_shards)
            .map(|_| {
                StreamEngine::from_reference(&reference, LearnerKind::Logistic, 11, config())
                    .unwrap()
            })
            .collect();
        // A second sharded engine fed the same batches pins determinism
        // across independent parallel runs.
        let mut sharded_again = ShardedEngine::from_reference(
            &reference, LearnerKind::Logistic, 11, config(), n_shards,
        ).unwrap();

        let mut stream = DriftStream::new(spec(), stream_seed);
        for _ in 0..n_batches {
            let tuples = StreamTuple::rows_from_dataset(&stream.next_batch(batch_size)).unwrap();
            let routed: Vec<ShardedTuple> = tuples
                .iter()
                .enumerate()
                .map(|(i, t)| ShardedTuple {
                    shard: route(i, route_salt, n_shards),
                    tuple: t.clone(),
                })
                .collect();

            let outcome = sharded.ingest(&routed).unwrap();
            let outcome_again = sharded_again.ingest(&routed).unwrap();
            prop_assert_eq!(&outcome.decisions, &outcome_again.decisions);
            prop_assert_eq!(&outcome.snapshot, &outcome_again.snapshot);

            // Hand-route the identical tuples through standalone engines.
            let mut per_shard: Vec<Vec<StreamTuple>> = vec![Vec::new(); n_shards];
            for routed_tuple in &routed {
                per_shard[routed_tuple.shard as usize].push(routed_tuple.tuple.clone());
            }
            for (shard, engine) in standalone.iter_mut().enumerate() {
                let solo = engine.ingest(&per_shard[shard]).unwrap();
                let via_sharded = &outcome.per_shard[shard];
                prop_assert_eq!(&solo.decisions, &via_sharded.decisions,
                    "shard {} decisions", shard);
                prop_assert_eq!(&solo.alerts, &via_sharded.alerts,
                    "shard {} alerts", shard);
                prop_assert_eq!(&solo.snapshot, &via_sharded.snapshot,
                    "shard {} snapshot", shard);
            }

            // The aggregate snapshot is exactly a recomputation from the
            // summed per-shard counters.
            let mut summed = [GroupCounts::default(); 2];
            for shard in 0..n_shards {
                let counts = sharded.shard(shard as u32).unwrap().window_counts();
                summed[0].merge(&counts[0]);
                summed[1].merge(&counts[1]);
            }
            let recomputed = FairnessSnapshot::from_counts(
                &summed,
                sharded.shard(0).unwrap().config().di_floor,
            );
            prop_assert_eq!(&outcome.snapshot, &recomputed);
        }

        // Per-shard engine state converged identically too.
        for (shard, engine) in standalone.iter().enumerate() {
            let via_sharded = sharded.shard(shard as u32).unwrap();
            prop_assert_eq!(engine.tuples_seen(), via_sharded.tuples_seen());
            prop_assert_eq!(engine.alerts(), via_sharded.alerts());
            prop_assert_eq!(engine.window_counts(), via_sharded.window_counts());
        }
    }
}
