//! The two-plane window's core contract, property-checked: **immediate
//! feedback is equivalent to labels at ingest**. A stream served unlabeled
//! whose ground truth is joined back via `feedback` in the same batch must
//! be observationally identical — byte-identical decisions, alerts,
//! snapshots, window counters, and checkpoint JSON — to the same stream
//! served with labels attached, across window sizes, drift onsets, batch
//! shapes, shard counts, and the sync/async engine variants. That pins the
//! plane split itself: nothing on the decision plane (selection rates,
//! DI/DP, Page–Hinkley on decision-conformance) may depend on when labels
//! arrive, and the label plane must land in the same state whichever road
//! the labels took.
//!
//! Retraining is deliberately held at `Never` in the equivalence
//! properties: an on-alert retrain between `ingest` and `feedback`
//! legitimately sees fewer joined labels than one whose batch arrived
//! pre-labeled — that divergence is real serving semantics, not a bug, and
//! it is covered separately by `retrain_on_partial_labels_*` below.
//!
//! The suite also pins the checkpoint story (round-trips with a non-empty
//! pending-join index, v1 documents restoring as fully labeled, corrupted
//! pending/label-ring state rejected with typed errors) and the feedback
//! edge cases (duplicates, evicted/unknown ids, out-of-range labels,
//! future ids, and labels arriving for records dropped under
//! backpressure).

use cf_datasets::stream::{DelayedLabelStream, DriftStream, DriftStreamSpec, LabelDelay};
use cf_learners::LearnerKind;
use cf_stream::{
    AsyncConfig, AsyncEngine, BackpressurePolicy, EngineCheckpoint, LabelFeedback, RetrainPolicy,
    ShardedEngine, ShardedFeedback, ShardedTuple, StreamConfig, StreamEngine, StreamError,
    StreamTuple, CHECKPOINT_VERSION,
};
use confair_core::confair::{AlphaMode, ConFairConfig};
use proptest::prelude::*;

fn spec(drift_onset: u64) -> DriftStreamSpec {
    DriftStreamSpec {
        drift_onset,
        ..DriftStreamSpec::default()
    }
}

/// Small windows/floors and fixed-α ConFair keep per-case bootstraps cheap
/// without weakening the bit-identity contract.
fn config(window: usize, retrain: RetrainPolicy) -> StreamConfig {
    StreamConfig {
        window,
        floor_min_window: 32,
        floor_cooldown: 400,
        retrain,
        confair: ConFairConfig {
            alpha: AlphaMode::Fixed {
                alpha_u: 2.0,
                alpha_w: 1.0,
            },
            ..ConFairConfig::default()
        },
        ..StreamConfig::default()
    }
}

fn engine(reference_seed: u64, window: usize, onset: u64) -> StreamEngine {
    let reference = spec(onset).reference(800, reference_seed);
    StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        reference_seed,
        config(window, RetrainPolicy::Never),
    )
    .unwrap()
}

/// Strip the labels off a batch, returning the withheld feedback records
/// keyed by the ids the engine will assign (`first_id` onward).
fn withhold(batch: &[StreamTuple], first_id: u64) -> (Vec<StreamTuple>, Vec<LabelFeedback>) {
    let unlabeled = batch
        .iter()
        .map(|t| StreamTuple {
            label: None,
            ..t.clone()
        })
        .collect();
    let feedback = batch
        .iter()
        .enumerate()
        .map(|(i, t)| LabelFeedback {
            id: first_id + i as u64,
            label: t.label.expect("generator batches are labeled"),
        })
        .collect();
    (unlabeled, feedback)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The tentpole pin: labels-at-ingest ≡ unlabeled-ingest + same-batch
    /// feedback, for every observable including the serialised checkpoint.
    /// Batch sizes deliberately exceed the window so mid-batch evictions
    /// push unlabeled slots through the pending-join index.
    #[test]
    fn labeled_ingest_equals_unlabeled_ingest_plus_feedback(
        window in 64usize..400,
        drift_onset in 0u64..1_200,
        batch_size in 20usize..600,
        n_batches in 2usize..5,
        stream_seed in 0u64..1_000,
    ) {
        let mut labeled = engine(11, window, drift_onset);
        let mut deferred = engine(11, window, drift_onset);

        let mut stream = DriftStream::new(spec(drift_onset), stream_seed);
        for _ in 0..n_batches {
            let batch =
                StreamTuple::rows_from_dataset(&stream.next_batch(batch_size)).unwrap();
            let (unlabeled, feedback) = withhold(&batch, deferred.ids_issued());

            let a = labeled.ingest(&batch).unwrap();
            let b = deferred.ingest(&unlabeled).unwrap();
            prop_assert_eq!(&a.decisions, &b.decisions,
                "decisions must not depend on label availability");
            prop_assert_eq!(&a.alerts, &b.alerts,
                "the decision plane may not peek at labels");
            prop_assert_eq!(a.first_id, b.first_id);

            let joined = deferred.feedback(&feedback).unwrap();
            prop_assert_eq!(joined.joined, batch.len() as u64, "every label joins");
            prop_assert_eq!(joined.unmatched, 0);
            prop_assert_eq!(joined.duplicates, 0);
            // Once the batch's ground truth has joined, the two engines
            // read identically — snapshot, counters, everything.
            prop_assert_eq!(&a.snapshot, &joined.snapshot);
            prop_assert_eq!(labeled.window_counts(), deferred.window_counts());
            prop_assert_eq!(labeled.pending_labels(), 0);
            prop_assert_eq!(deferred.pending_labels(), 0,
                "same-batch feedback drains the pending index");
        }

        prop_assert_eq!(labeled.alerts(), deferred.alerts());
        prop_assert_eq!(labeled.snapshot(), deferred.snapshot());
        prop_assert_eq!(
            labeled.join_stats().joined,
            deferred.join_stats().joined,
            "both roads join every label exactly once"
        );
        prop_assert_eq!(
            labeled.checkpoint().unwrap().to_json(),
            deferred.checkpoint().unwrap().to_json(),
            "the two roads write byte-identical checkpoint documents"
        );
    }

    /// The async variant: unlabeled ingest + feedback through the queued
    /// control plane, flushed per batch, against the labeled sync engine.
    #[test]
    fn async_deferred_feedback_matches_labeled_sync(
        window in 64usize..300,
        drift_onset in 0u64..800,
        batch_size in 20usize..400,
        stream_seed in 0u64..1_000,
        queue_depth in 1usize..8,
    ) {
        let mut labeled = engine(13, window, drift_onset);
        let mut deferred = AsyncEngine::from_engine(
            engine(13, window, drift_onset),
            AsyncConfig { queue_depth, backpressure: BackpressurePolicy::Block, ..AsyncConfig::default() },
        );

        let mut stream = DriftStream::new(spec(drift_onset), stream_seed);
        for _ in 0..3 {
            let batch =
                StreamTuple::rows_from_dataset(&stream.next_batch(batch_size)).unwrap();
            let (unlabeled, feedback) = withhold(&batch, deferred.tuples_scored());

            let a = labeled.ingest(&batch).unwrap();
            let decisions = deferred.ingest(&unlabeled).unwrap();
            prop_assert_eq!(&a.decisions, &decisions);
            deferred.feedback(&feedback).unwrap();
            deferred.flush().unwrap();

            prop_assert_eq!(a.snapshot, deferred.snapshot());
            prop_assert_eq!(*labeled.window_counts(), deferred.window_counts());
        }
        let deferred_alerts = deferred.alerts();
        prop_assert_eq!(labeled.alerts(), deferred_alerts.as_slice());
        prop_assert_eq!(
            labeled.checkpoint().unwrap().to_json(),
            deferred.checkpoint().unwrap().to_json()
        );
        // Reuniting the halves preserves the joined label plane.
        let reunited = deferred.into_engine().unwrap();
        prop_assert_eq!(labeled.snapshot(), reunited.snapshot());
    }

    /// The sharded variant: mixed-shard batches served unlabeled, ground
    /// truth routed back per shard (ids are per-shard clocks).
    #[test]
    fn sharded_deferred_feedback_matches_labeled_sharded(
        n_shards in 1usize..=3,
        batch_size in 30usize..400,
        stream_seed in 0u64..1_000,
        route_salt in 0u64..1_000,
    ) {
        let reference = spec(400).reference(800, 17);
        let cfg = config(192, RetrainPolicy::Never);
        let mut labeled = ShardedEngine::from_reference(
            &reference, LearnerKind::Logistic, 17, cfg.clone(), n_shards,
        ).unwrap();
        let mut deferred = ShardedEngine::from_reference(
            &reference, LearnerKind::Logistic, 17, cfg, n_shards,
        ).unwrap();

        let route = |i: usize| -> u32 {
            let z = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(route_salt);
            ((z >> 7) % n_shards as u64) as u32
        };
        let mut stream = DriftStream::new(spec(400), stream_seed);
        for _ in 0..2 {
            let tuples =
                StreamTuple::rows_from_dataset(&stream.next_batch(batch_size)).unwrap();
            let mut shard_clock: Vec<u64> = (0..n_shards as u32)
                .map(|s| deferred.shard(s).unwrap().ids_issued())
                .collect();
            let mut routed_labeled = Vec::with_capacity(tuples.len());
            let mut routed_unlabeled = Vec::with_capacity(tuples.len());
            let mut feedback = Vec::with_capacity(tuples.len());
            for (i, tuple) in tuples.into_iter().enumerate() {
                let shard = route(i);
                feedback.push(ShardedFeedback {
                    shard,
                    feedback: LabelFeedback {
                        id: shard_clock[shard as usize],
                        label: tuple.label.unwrap(),
                    },
                });
                shard_clock[shard as usize] += 1;
                routed_unlabeled.push(ShardedTuple {
                    shard,
                    tuple: StreamTuple { label: None, ..tuple.clone() },
                });
                routed_labeled.push(ShardedTuple { shard, tuple });
            }

            let a = labeled.ingest(&routed_labeled).unwrap();
            let b = deferred.ingest(&routed_unlabeled).unwrap();
            prop_assert_eq!(&a.decisions, &b.decisions);

            let outcomes = deferred.feedback(&feedback).unwrap();
            prop_assert_eq!(outcomes.len(), n_shards);
            prop_assert_eq!(
                outcomes.iter().map(|o| o.joined).sum::<u64>(),
                a.decisions.len() as u64
            );
            prop_assert_eq!(a.snapshot, deferred.snapshot());
            prop_assert_eq!(labeled.merged_counts(), deferred.merged_counts());
        }
        prop_assert_eq!(
            labeled.checkpoint().unwrap().to_json(),
            deferred.checkpoint().unwrap().to_json()
        );
    }

    /// Checkpoint round-trip with a **non-empty pending-join index**:
    /// serve unlabeled past window rotation, checkpoint mid-wait, restore,
    /// and only then deliver the late labels — the restored engine joins
    /// them exactly like the one that never stopped.
    #[test]
    fn checkpoint_round_trips_with_pending_joins(
        window in 64usize..200,
        batch_size in 250usize..500,
        stream_seed in 0u64..1_000,
    ) {
        let mut uninterrupted = engine(19, window, 400);
        let mut stream = DriftStream::new(spec(400), stream_seed);
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(batch_size)).unwrap();
        let (unlabeled, feedback) = withhold(&batch, 0);
        uninterrupted.ingest(&unlabeled).unwrap();
        prop_assert!(
            uninterrupted.pending_labels() > 0,
            "batch > window must leave evicted slots awaiting labels"
        );

        let doc = uninterrupted.checkpoint().unwrap().to_json();
        let mut restored =
            StreamEngine::restore(EngineCheckpoint::from_json(&doc).unwrap()).unwrap();
        prop_assert_eq!(restored.pending_labels(), uninterrupted.pending_labels());
        prop_assert_eq!(restored.ids_issued(), uninterrupted.ids_issued());

        // The late labels arrive only now — after the "crash".
        let a = uninterrupted.feedback(&feedback).unwrap();
        let b = restored.feedback(&feedback).unwrap();
        prop_assert_eq!(&a, &b, "late joins replay identically");
        prop_assert_eq!(a.joined, batch.len() as u64);
        prop_assert_eq!(uninterrupted.window_counts(), restored.window_counts());

        // And the engines keep agreeing on subsequent mixed traffic.
        let next = StreamTuple::rows_from_dataset(&stream.next_batch(200)).unwrap();
        let oa = uninterrupted.ingest(&next).unwrap();
        let ob = restored.ingest(&next).unwrap();
        prop_assert_eq!(oa.decisions, ob.decisions);
        prop_assert_eq!(oa.snapshot, ob.snapshot);
        prop_assert_eq!(
            uninterrupted.checkpoint().unwrap().to_json(),
            restored.checkpoint().unwrap().to_json()
        );
    }
}

// ---------------------------------------------------------------------------
// v1 checkpoint compatibility
// ---------------------------------------------------------------------------

/// Down-convert a v2 checkpoint document to the v1 layout: strip the
/// two-plane fields and the per-slot ids, unwrap the labels. Exactly what
/// a pre-split build would have written for a fully-labeled engine.
fn downgrade_to_v1(doc: &str) -> String {
    let mut v = serde_json::from_str::<serde::Value>(doc).unwrap();
    fn remove(obj: &mut serde::Value, key: &str) {
        if let serde::Value::Object(fields) = obj {
            fields.retain(|(k, _)| k != key);
        }
    }
    fn set(obj: &mut serde::Value, key: &str, value: serde::Value) {
        if let serde::Value::Object(fields) = obj {
            match fields.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = value,
                None => fields.push((key.to_string(), value)),
            }
        }
    }
    set(&mut v, "version", serde::Value::Number(1.0));
    remove(&mut v, "ids_issued");
    if let serde::Value::Object(fields) = &mut v {
        for (key, value) in fields.iter_mut() {
            match key.as_str() {
                "config" => remove(value, "pending_labels"),
                "window" => {
                    remove(value, "labels");
                    remove(value, "pending");
                    if let Some(serde::Value::Array(meta)) = {
                        if let serde::Value::Object(wf) = value {
                            wf.iter_mut().find(|(k, _)| k == "meta").map(|(_, m)| m)
                        } else {
                            None
                        }
                    } {
                        for slot in meta {
                            remove(slot, "id");
                            // v1 labels were plain numbers; `Some(x)`
                            // already serialises as `x`, so nothing to
                            // unwrap — just assert it is not null.
                            assert!(
                                slot.get("label").is_some_and(|l| !l.is_null()),
                                "v1 downgrades require a fully-labeled window"
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }
    serde_json::to_string(&v).unwrap()
}

/// A v1 document (no ids, no label ring, no pending index, mandatory
/// labels) restores as a fully-labeled two-plane engine that replays
/// bit-identically with the v2 restore of the same state.
#[test]
fn v1_documents_restore_as_fully_labeled() {
    let mut original = engine(23, 192, 300);
    let mut stream = DriftStream::new(spec(300), 29);
    let batch = StreamTuple::rows_from_dataset(&stream.next_batch(400)).unwrap();
    original.ingest(&batch).unwrap();

    let v2_doc = original.checkpoint().unwrap().to_json();
    let v1_doc = downgrade_to_v1(&v2_doc);
    assert!(v1_doc.contains("\"version\":1"));
    assert!(!v1_doc.contains("pending"));

    let ckpt = EngineCheckpoint::from_json(&v1_doc).unwrap();
    assert_eq!(ckpt.version, CHECKPOINT_VERSION, "upgraded on parse");
    assert_eq!(ckpt.ids_issued, original.ids_issued());
    let mut restored = StreamEngine::restore(ckpt).unwrap();

    // Fully labeled: the label plane mirrors the decision plane.
    assert_eq!(restored.labeled_len(), restored.window_len());
    assert_eq!(restored.pending_labels(), 0);
    assert_eq!(restored.window_counts(), original.window_counts());
    assert_eq!(restored.snapshot(), original.snapshot());

    // And it serves + joins onward exactly like the original, including
    // late feedback addressed by the reconstructed sequential ids.
    let next = StreamTuple::rows_from_dataset(&stream.next_batch(150)).unwrap();
    let a = original.ingest(&next).unwrap();
    let b = restored.ingest(&next).unwrap();
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.snapshot, b.snapshot);
    assert_eq!(
        original.checkpoint().unwrap().to_json(),
        restored.checkpoint().unwrap().to_json()
    );
}

/// Unsupported versions and corrupted two-plane state fail with typed
/// errors — never panics, never a half-load.
#[test]
fn corrupted_and_mismatched_documents_are_typed_errors() {
    let mut engine = engine(3, 128, u64::MAX);
    let mut stream = DriftStream::new(spec(u64::MAX), 5);
    let batch = StreamTuple::rows_from_dataset(&stream.next_batch(300)).unwrap();
    let (unlabeled, _) = withhold(&batch, 0);
    engine.ingest(&unlabeled).unwrap();
    assert!(engine.pending_labels() > 0);
    let good = engine.checkpoint().unwrap();

    // Versions outside [1, CHECKPOINT_VERSION] are rejected up front.
    for version in [0u32, CHECKPOINT_VERSION + 1, 999] {
        let doc = good
            .to_json()
            .replacen("\"version\":5", &format!("\"version\":{version}"), 1);
        assert!(matches!(
            EngineCheckpoint::from_json(&doc),
            Err(StreamError::CheckpointVersion { .. })
        ));
    }

    // A pending entry colliding with the decision ring.
    let mut ckpt = good.clone();
    ckpt.window.pending[0].id = ckpt.window.meta[0].id;
    assert!(matches!(
        StreamEngine::restore(ckpt),
        Err(StreamError::Checkpoint(_))
    ));

    // More pending entries than the configured bound.
    let mut ckpt = good.clone();
    ckpt.config.pending_labels = 1;
    assert!(matches!(
        StreamEngine::restore(ckpt),
        Err(StreamError::Checkpoint(_))
    ));

    // A label ring wider than the window capacity.
    let mut ckpt = good.clone();
    let pair = cf_stream::LabelSlot {
        group: 0,
        decision: 1,
        label: 1,
    };
    ckpt.window.labels = vec![pair; ckpt.window.capacity + 1];
    assert!(matches!(
        StreamEngine::restore(ckpt),
        Err(StreamError::Checkpoint(_))
    ));

    // A non-binary label smuggled into the label ring.
    let mut ckpt = good.clone();
    ckpt.window.labels.push(cf_stream::LabelSlot {
        group: 0,
        decision: 0,
        label: 9,
    });
    assert!(matches!(
        StreamEngine::restore(ckpt),
        Err(StreamError::BadLabel(9))
    ));

    // An id clock behind the tuples it supposedly issued.
    let mut ckpt = good.clone();
    ckpt.ids_issued = 0;
    assert!(matches!(
        StreamEngine::restore(ckpt),
        Err(StreamError::Checkpoint(_))
    ));

    // A non-binary group smuggled into a window slot (the replay must
    // reject it, not index out of bounds).
    let mut ckpt = good.clone();
    ckpt.window.meta[0].group = 3;
    assert!(matches!(
        StreamEngine::restore(ckpt),
        Err(StreamError::BadGroup(3))
    ));

    // Window slot ids out of order (a silent restore would misroute every
    // later feedback join).
    let mut ckpt = good.clone();
    ckpt.window.meta.swap(0, 1);
    assert!(matches!(
        StreamEngine::restore(ckpt),
        Err(StreamError::Checkpoint(_))
    ));

    // A truncated v1 document (missing `seen`) is a parse error, not a
    // panic, on the upgrade path too.
    let v1_missing = r#"{"version":1,"window":{"meta":[]}}"#;
    assert!(matches!(
        EngineCheckpoint::from_json(v1_missing),
        Err(StreamError::Checkpoint(_))
    ));
}

// ---------------------------------------------------------------------------
// Feedback edge cases
// ---------------------------------------------------------------------------

#[test]
fn duplicate_feedback_is_counted_and_ignored() {
    let mut engine = engine(7, 128, u64::MAX);
    let mut stream = DriftStream::new(spec(u64::MAX), 7);
    let batch = StreamTuple::rows_from_dataset(&stream.next_batch(64)).unwrap();
    let (unlabeled, feedback) = withhold(&batch, 0);
    engine.ingest(&unlabeled).unwrap();

    let first = engine.feedback(&feedback).unwrap();
    assert_eq!(first.joined, 64);
    let again = engine.feedback(&feedback).unwrap();
    assert_eq!(again.joined, 0);
    assert_eq!(again.duplicates, 64);
    assert_eq!(again.snapshot, first.snapshot, "duplicates change nothing");
    assert_eq!(engine.join_stats().duplicates, 64);

    // A label attached at ingest counts as joined, so feedback for it is
    // a duplicate too.
    let labeled = StreamTuple::rows_from_dataset(&stream.next_batch(8)).unwrap();
    let outcome = engine.ingest(&labeled).unwrap();
    let echo = engine
        .feedback(&[LabelFeedback {
            id: outcome.first_id,
            label: labeled[0].label.unwrap(),
        }])
        .unwrap();
    assert_eq!(echo.duplicates, 1);
}

#[test]
fn forgotten_and_future_ids_resolve_as_specified() {
    // pending_labels: 0 forgets every unlabeled eviction immediately.
    let reference = spec(u64::MAX).reference(600, 31);
    let mut engine = StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        31,
        StreamConfig {
            window: 32,
            pending_labels: 0,
            ..config(32, RetrainPolicy::Never)
        },
    )
    .unwrap();
    let mut stream = DriftStream::new(spec(u64::MAX), 37);
    let batch = StreamTuple::rows_from_dataset(&stream.next_batch(100)).unwrap();
    let (unlabeled, feedback) = withhold(&batch, 0);
    engine.ingest(&unlabeled).unwrap();
    assert_eq!(engine.pending_labels(), 0);
    assert_eq!(
        engine.join_stats().pending_evicted,
        68,
        "100 - window of 32"
    );

    // Labels for the 68 evicted-and-forgotten tuples are unmatched; the
    // 32 in-window ones join.
    let outcome = engine.feedback(&feedback).unwrap();
    assert_eq!(outcome.joined, 32);
    assert_eq!(outcome.joined_late, 0);
    assert_eq!(outcome.unmatched, 68);
    assert_eq!(engine.join_stats().unmatched, 68);

    // A future id is a typed error and applies nothing, even when other
    // records in the batch are valid.
    let mixed = [
        LabelFeedback { id: 99, label: 1 },
        LabelFeedback { id: 100, label: 1 },
    ];
    let before = engine.join_stats();
    assert!(matches!(
        engine.feedback(&mixed),
        Err(StreamError::FutureFeedback {
            id: 100,
            issued: 100
        })
    ));
    assert_eq!(engine.join_stats(), before, "whole-batch rejection");

    // An out-of-range label is equally typed and equally atomic.
    assert!(matches!(
        engine.feedback(&[LabelFeedback { id: 0, label: 2 }]),
        Err(StreamError::BadLabel(2))
    ));
    assert_eq!(engine.join_stats(), before);
}

/// Labels arriving for records dropped under `DropOldest` backpressure:
/// whichever records the queue sacrificed, the aggregate accounting is
/// exact — every monitored tuple's label joins, every dropped tuple's
/// label counts as unmatched, and the engine never errors.
#[test]
fn dropped_records_resolve_their_late_labels_as_unmatched() {
    let reference = spec(u64::MAX).reference(600, 41);
    let sync = StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        41,
        StreamConfig {
            pending_labels: 100_000,
            ..config(256, RetrainPolicy::Never)
        },
    )
    .unwrap();
    let mut engine = AsyncEngine::from_engine(
        sync,
        AsyncConfig {
            queue_depth: 1,
            backpressure: BackpressurePolicy::DropOldest,
            ..AsyncConfig::default()
        },
    );
    let mut stream = DriftStream::new(spec(u64::MAX), 43);
    // Push many batches back-to-back: with queue depth 1 the monitor
    // cannot keep up and sheds load.
    for _ in 0..50 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(64)).unwrap();
        let (unlabeled, _) = withhold(&batch, 0);
        engine.ingest(&unlabeled).unwrap();
    }
    engine.flush().unwrap();
    let dropped = engine.dropped();
    assert_eq!(
        engine.tuples_monitored() + dropped.tuples,
        engine.tuples_scored(),
        "every scored tuple is either monitored or counted as dropped"
    );

    // Deliver ground truth for *every* id ever scored.
    let all: Vec<LabelFeedback> = (0..engine.tuples_scored())
        .map(|id| LabelFeedback { id, label: 0 })
        .collect();
    engine.feedback(&all).unwrap();
    engine.flush().unwrap();
    let joins = engine.join_stats();
    assert_eq!(
        joins.joined,
        engine.tuples_monitored(),
        "every monitored tuple's label joins (pending index sized for all)"
    );
    assert_eq!(
        joins.unmatched, dropped.tuples,
        "every dropped tuple's label resolves as unmatched, not an error"
    );
    assert!(engine.monitor_error().is_none());
}

/// The same scenario at the monitor seam, deterministically: a record
/// dropped under backpressure reaches the monitor as an id gap, and
/// feedback into the gap is unmatched while its neighbours join.
#[test]
fn id_gaps_from_dropped_records_join_around_the_gap() {
    let reference = spec(u64::MAX).reference(600, 47);
    let engine = StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        47,
        config(256, RetrainPolicy::Never),
    )
    .unwrap();
    let (mut scorer, mut monitor) = engine.into_parts();
    let mut stream = DriftStream::new(spec(u64::MAX), 53);

    let batch = StreamTuple::rows_from_dataset(&stream.next_batch(20)).unwrap();
    let (unlabeled, _) = withhold(&batch, 0);
    let decisions = scorer.score(&unlabeled).unwrap();
    monitor.observe_with_ids(&unlabeled, &decisions, 0).unwrap();
    // Ids 20..40 are a dropped record: the monitor never sees them.
    let batch2 = StreamTuple::rows_from_dataset(&stream.next_batch(20)).unwrap();
    let (unlabeled2, _) = withhold(&batch2, 0);
    let decisions2 = scorer.score(&unlabeled2).unwrap();
    monitor
        .observe_with_ids(&unlabeled2, &decisions2, 40)
        .unwrap();
    assert_eq!(monitor.ids_issued(), 60);
    assert_eq!(monitor.tuples_seen(), 40);

    let outcome = monitor
        .feedback(&[
            LabelFeedback { id: 5, label: 1 },
            LabelFeedback { id: 25, label: 1 },
            LabelFeedback { id: 45, label: 1 },
        ])
        .unwrap();
    assert_eq!(outcome.joined, 2);
    assert_eq!(outcome.unmatched, 1, "the gap id was never monitored");

    // Replaying an already-observed id range is rejected loudly.
    assert!(monitor
        .observe_with_ids(&unlabeled2, &decisions2, 30)
        .is_err());
}

// ---------------------------------------------------------------------------
// Label-plane gating (the tpr-family fix) and retraining on partial labels
// ---------------------------------------------------------------------------

/// A stream served entirely without ground truth: decision-plane metrics
/// flow, label-plane metrics stay `None` — never a fabricated 0.0 that
/// could trip a floor — until feedback joins.
#[test]
fn label_metrics_stay_none_until_ground_truth_joins() {
    let mut engine = engine(57, 256, u64::MAX);
    let mut stream = DriftStream::new(spec(u64::MAX), 59);
    let batch = StreamTuple::rows_from_dataset(&stream.next_batch(500)).unwrap();
    let (unlabeled, feedback) = withhold(&batch, 0);
    let outcome = engine.ingest(&unlabeled).unwrap();

    let s = &outcome.snapshot;
    assert!(s.selection_rate[0].is_some() && s.selection_rate[1].is_some());
    assert!(s.di_star.is_some(), "decision plane needs no labels");
    assert_eq!(s.equal_opportunity_gap, None, "no labels, no EO verdict");
    assert_eq!(s.labeled, [0, 0]);
    for counts in engine.window_counts() {
        assert_eq!(counts.tpr(), None, "decisions without labels have no TPR");
        assert_eq!(counts.fpr(), None);
        assert!(counts.total > 0);
    }

    // Ground truth joins → the label plane switches on.
    let joined = engine.feedback(&feedback).unwrap();
    assert!(joined.snapshot.equal_opportunity_gap.is_some());
    assert!(joined.snapshot.labeled[0] > 0 && joined.snapshot.labeled[1] > 0);
    assert!(engine.window_counts()[0].tpr().is_some());
}

/// On-alert retraining under partial labels: with no ground truth joined
/// the retrain fails loudly (degenerate window) while serving continues;
/// once labels join, the same window retrains fine.
#[test]
fn retrain_uses_only_joined_labels() {
    let reference = spec(0).reference(2_000, 61);
    let mut engine = StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        61,
        StreamConfig {
            floor_min_window: 10,
            retrain: RetrainPolicy::OnAlert { min_window: 10 },
            ..config(2_000, RetrainPolicy::OnAlert { min_window: 10 })
        },
    )
    .unwrap();
    // Drift from tuple 0 collapses DI* fast; everything arrives unlabeled.
    let mut stream = DriftStream::new(spec(0), 67);
    let batch = StreamTuple::rows_from_dataset(&stream.next_batch(3_000)).unwrap();
    let (unlabeled, feedback) = withhold(&batch, 0);
    let outcome = engine.ingest(&unlabeled).unwrap();
    assert!(
        !engine.alerts().is_empty(),
        "decision-plane drift must alert with zero labels"
    );
    assert!(
        matches!(
            outcome.retrain_error,
            Some(StreamError::DegenerateWindow(_))
        ),
        "a retrain without ground truth must fail loudly, got {:?}",
        outcome.retrain_error
    );
    assert_eq!(outcome.decisions.len(), 3_000, "serving never stopped");

    // Join the labels for whatever is still in the window; now the
    // retrain has a training set.
    engine.feedback(&feedback).unwrap();
    assert!(engine.labeled_len() > 0);
    engine.retrain_now().unwrap();
    assert_eq!(engine.retrain_count(), 1);
}

/// End to end against the generator: a `DelayedLabelStream` drives the
/// engine through the full delayed regime and every label that ever
/// arrives joins (none unmatched while the pending index is sized right).
#[test]
fn delayed_label_stream_drives_the_join_path() {
    let stream_spec = DriftStreamSpec {
        drift_onset: u64::MAX,
        label_delay: LabelDelay::Uniform {
            min: 100,
            max: 1_200,
        },
        missing_label_rate: 0.1,
        ..DriftStreamSpec::default()
    };
    let reference = stream_spec.reference(800, 71);
    let mut engine = StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        71,
        StreamConfig {
            window: 256,
            pending_labels: 2_048,
            ..config(256, RetrainPolicy::Never)
        },
    )
    .unwrap();
    let mut stream = DelayedLabelStream::new(stream_spec, 73);
    for _ in 0..16 {
        let (batch, due) = stream.next_batch(250);
        let unlabeled = StreamTuple::rows_unlabeled_from_dataset(&batch).unwrap();
        engine.ingest(&unlabeled).unwrap();
        let feedback: Vec<LabelFeedback> = due
            .into_iter()
            .map(|(id, label)| LabelFeedback { id, label })
            .collect();
        let outcome = engine.feedback(&feedback).unwrap();
        assert_eq!(outcome.unmatched, 0, "pending index holds every wait");
    }
    let joins = engine.join_stats();
    assert_eq!(joins.joined, stream.delivered());
    assert!(
        joins.joined_late > 0,
        "long delays join via the pending index"
    );
    assert_eq!(joins.pending_evicted, 0);
    assert!(engine.snapshot().equal_opportunity_gap.is_some());
}
