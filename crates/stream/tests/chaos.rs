//! Chaos suite: deterministic fault injection against the supervision
//! layer, property-checked. The contract under test is the issue's
//! acceptance bar —
//!
//! 1. **Never wedge**: while the restart budget lasts, `ingest` never
//!    returns a permanent error, no injected panic escapes to the
//!    caller, and a flush still drains to quiescence.
//! 2. **Reconverge**: after the fault schedule is exhausted and the
//!    window has fully rotated on fresh tuples, a supervised engine is
//!    byte-identical to a fault-free twin fed the same stream.
//! 3. **Account for everything**: the audit trail records every
//!    monitor-death gap (`monitor_restart` events whose `gap_tuples`
//!    sum to the engine's counter) and every degraded-mode transition,
//!    and `scored == monitored + dropped + gap` holds at quiescence.
//!
//! Faults are *schedules*, not probabilities (see `cf_stream::faults`),
//! so every failure here replays exactly.

#![cfg(feature = "fault-injection")]

use cf_datasets::stream::{DriftStream, DriftStreamSpec};
use cf_learners::LearnerKind;
use cf_stream::{
    AsyncConfig, AsyncEngine, FaultKind, FaultPlan, MonitorPanics, RepairConfig, RetrainFaults,
    RetrainPolicy, ShardHealth, ShardedAsyncEngine, ShardedTuple, StreamConfig, StreamEngine,
    StreamError, StreamTuple, SupervisorConfig,
};
use cf_telemetry::{RingSink, SharedSink, TelemetryEvent};
use confair_core::confair::{AlphaMode, ConFairConfig};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

fn spec(drift_onset: u64) -> DriftStreamSpec {
    DriftStreamSpec {
        drift_onset,
        ..DriftStreamSpec::default()
    }
}

/// Zero-backoff repair budget: two attempts, no sleeping, so a chaos
/// case burns through its episode instantly and deterministically.
fn fast_repair() -> RepairConfig {
    RepairConfig {
        max_attempts: 2,
        backoff_base_ms: 0,
        backoff_max_ms: 0,
        timeout_ms: 30_000,
        ..RepairConfig::default()
    }
}

/// Zero-backoff supervisor: deaths respawn on the very next serving
/// call, keeping chaos cases fast while still walking the whole
/// detect → charge budget → respawn → re-anchor path.
fn fast_supervisor(max_restarts: u32) -> SupervisorConfig {
    SupervisorConfig {
        max_restarts,
        backoff_base_ms: 0,
        backoff_max_ms: 0,
        snapshot_every: 4,
        ..SupervisorConfig::default()
    }
}

fn config(window: usize, retrain: RetrainPolicy) -> StreamConfig {
    StreamConfig {
        window,
        floor_min_window: 32,
        floor_cooldown: 400,
        retrain,
        repair: fast_repair(),
        confair: ConFairConfig {
            alpha: AlphaMode::Fixed {
                alpha_u: 2.0,
                alpha_w: 1.0,
            },
            ..ConFairConfig::default()
        },
        ..StreamConfig::default()
    }
}

/// A DI* floor high enough that repair episodes trigger within a few
/// batches — the chaos suite needs retrains to *happen* to fault them.
fn alerting_config(window: usize) -> StreamConfig {
    StreamConfig {
        di_floor: 0.99,
        floor_min_window: 32,
        floor_cooldown: 256,
        retrain: RetrainPolicy::OnAlert { min_window: 48 },
        ..config(window, RetrainPolicy::Never)
    }
}

fn ring() -> (Arc<Mutex<RingSink>>, SharedSink) {
    let ring = Arc::new(Mutex::new(RingSink::new(1 << 16)));
    let sink: SharedSink = ring.clone();
    (ring, sink)
}

fn events_of(ring: &Arc<Mutex<RingSink>>) -> Vec<TelemetryEvent> {
    ring.lock().unwrap().events()
}

/// Exhausting the repair budget flips degraded mode (entered once, with
/// the episode's attempt count and final error on the trail), the stale
/// model keeps serving, and the next successful retrain clears it — all
/// of which survives a checkpoint round-trip.
#[test]
fn exhausted_repair_budget_enters_and_clears_degraded_mode() {
    let reference = spec(u64::MAX).reference(700, 53);
    let mut engine =
        StreamEngine::from_reference(&reference, LearnerKind::Logistic, 53, alerting_config(128))
            .unwrap();
    let (ring, sink) = ring();
    engine.set_sink(sink);
    // Both attempts of the first repair episode fail; attempt 2 onwards
    // succeeds.
    engine.inject_faults(
        FaultPlan::new().with_retrain(RetrainFaults::fail_first(2, FaultKind::Error)),
    );

    let mut stream = DriftStream::new(spec(u64::MAX), 53);
    for _ in 0..20 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(100)).unwrap();
        // Serving survives the failing episode: ingest returns decisions.
        let out = engine.ingest(&batch).unwrap();
        assert_eq!(out.decisions.len(), 100);
        if engine.is_degraded() {
            break;
        }
    }
    assert!(
        engine.is_degraded(),
        "a repair episode must have exhausted its budget"
    );
    assert!(engine.snapshot().degraded);
    assert!(
        engine.snapshot().to_string().contains("DEGRADED"),
        "operators see the flag in the one-line reading"
    );

    // Degraded mode is durable state: it survives checkpoint/restore.
    let restored = StreamEngine::restore(engine.checkpoint().unwrap()).unwrap();
    assert!(restored.is_degraded());

    // The next successful retrain — here forced by the operator — clears it.
    engine.retrain_now().unwrap();
    assert!(!engine.is_degraded());
    assert!(!engine.snapshot().degraded);

    let degraded: Vec<_> = events_of(&ring)
        .into_iter()
        .filter_map(|e| match e {
            TelemetryEvent::DegradedMode(d) => Some(d),
            _ => None,
        })
        .collect();
    assert_eq!(degraded.len(), 2, "one enter, one clear");
    assert!(degraded[0].entered);
    assert_eq!(degraded[0].attempts, 2, "the episode burned its budget");
    assert!(
        degraded[0]
            .error
            .as_deref()
            .is_some_and(|e| e.contains("injected")),
        "the final attempt's error travels with the transition"
    );
    assert!(!degraded[1].entered);
    assert_eq!(degraded[1].attempts, 0);

    // The repair seam's shape is unchanged: every episode is exactly one
    // repair_start/repair_end pair, however many attempts it burned.
    let events = events_of(&ring);
    let starts = events
        .iter()
        .filter(|e| matches!(e, TelemetryEvent::RepairStart(_)))
        .count();
    let ends = events
        .iter()
        .filter(|e| matches!(e, TelemetryEvent::RepairEnd(_)))
        .count();
    assert_eq!(starts, ends);
    assert!(starts >= 1);
}

/// An injected retrain *panic* is contained by the engine's
/// `catch_unwind` seam and surfaces as a typed error — the caller never
/// unwinds, and the engine keeps serving afterwards.
#[test]
fn injected_retrain_panics_become_typed_errors() {
    let reference = spec(u64::MAX).reference(600, 7);
    let mut engine = StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        7,
        config(128, RetrainPolicy::Never),
    )
    .unwrap();
    engine.inject_faults(
        FaultPlan::new().with_retrain(RetrainFaults::fail_first(1, FaultKind::Panic)),
    );

    let mut stream = DriftStream::new(spec(u64::MAX), 7);
    let batch = StreamTuple::rows_from_dataset(&stream.next_batch(150)).unwrap();
    engine.ingest(&batch).unwrap();

    match engine.retrain_now() {
        Err(StreamError::RetrainPanicked(msg)) => {
            assert!(msg.contains("injected"), "payload: {msg}")
        }
        other => panic!("expected RetrainPanicked, got {other:?}"),
    }
    // The schedule is spent; the engine is fully operational.
    engine.retrain_now().unwrap();
    let batch = StreamTuple::rows_from_dataset(&stream.next_batch(50)).unwrap();
    assert_eq!(engine.ingest(&batch).unwrap().decisions.len(), 50);
}

/// One scheduled monitor death: the supervisor respawns from the
/// recovery clone, serving never errors, the flush still reaches
/// quiescence, and the trail's `monitor_restart` event accounts for the
/// exact gap.
#[test]
fn monitor_death_is_supervised_and_gap_accounted() {
    let reference = spec(u64::MAX).reference(600, 11);
    let mut inner = StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        11,
        config(128, RetrainPolicy::Never),
    )
    .unwrap();
    let (ring, sink) = ring();
    inner.set_sink(sink);
    inner.inject_faults(FaultPlan::new().with_monitor_panics(MonitorPanics::after(2)));
    let mut anc = AsyncEngine::from_engine(
        inner,
        AsyncConfig {
            supervisor: fast_supervisor(3),
            ..AsyncConfig::default()
        },
    );

    let mut stream = DriftStream::new(spec(u64::MAX), 11);
    for _ in 0..10 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(48)).unwrap();
        assert_eq!(anc.ingest(&batch).unwrap().len(), 48);
    }
    anc.flush().unwrap();

    assert_eq!(anc.health(), ShardHealth::Live);
    assert_eq!(anc.monitor_restarts(), 1);
    assert!(
        anc.monitor_gap_tuples() >= 48,
        "the batch the monitor died on is part of the gap"
    );
    // Quiescence closes the books: every scored tuple is monitored,
    // dropped, or in a recorded gap.
    assert_eq!(anc.monitor_lag(), 0);

    let restarts: Vec<_> = events_of(&ring)
        .into_iter()
        .filter_map(|e| match e {
            TelemetryEvent::MonitorRestart(r) => Some(r),
            _ => None,
        })
        .collect();
    assert_eq!(restarts.len(), 1);
    assert_eq!(restarts[0].restarts, 1);
    assert_eq!(restarts[0].gap_tuples, anc.monitor_gap_tuples());
}

/// Deaths beyond the restart budget are a *permanent*, typed failure:
/// health pins to `Dead`, and every subsequent serving or barrier call
/// reports it instead of hanging or panicking.
#[test]
fn restart_budget_exhaustion_is_permanent_and_typed() {
    let reference = spec(u64::MAX).reference(600, 13);
    let mut inner = StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        13,
        config(128, RetrainPolicy::Never),
    )
    .unwrap();
    inner.inject_faults(
        FaultPlan::new().with_monitor_panics(MonitorPanics::at_batches(vec![1, 2, 3, 4, 5, 6])),
    );
    let mut anc = AsyncEngine::from_engine(
        inner,
        AsyncConfig {
            supervisor: fast_supervisor(1),
            ..AsyncConfig::default()
        },
    );

    let mut stream = DriftStream::new(spec(u64::MAX), 13);
    let mut died = false;
    for _ in 0..200 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(16)).unwrap();
        match anc.ingest(&batch) {
            Ok(_) => {}
            Err(StreamError::Async(_)) => {
                died = true;
                break;
            }
            Err(other) => panic!("unexpected error kind: {other:?}"),
        }
        // Force the barrier path to detect the death promptly too.
        if anc.flush().is_err() {
            died = true;
            break;
        }
    }
    assert!(died, "two deaths against a budget of one must be fatal");
    assert_eq!(anc.health(), ShardHealth::Dead);
    assert!(matches!(anc.flush(), Err(StreamError::Async(_))));
    let batch = StreamTuple::rows_from_dataset(&stream.next_batch(16)).unwrap();
    assert!(matches!(anc.ingest(&batch), Err(StreamError::Async(_))));
}

/// Per-shard failure domains: a shard whose budget is exhausted reads
/// `Dead` while its siblings keep reading `Live` — the all-or-nothing
/// fleet error is gone.
#[test]
fn sharded_health_isolates_a_dead_shard() {
    let reference = spec(u64::MAX).reference(600, 17);
    let make = || {
        StreamEngine::from_reference(
            &reference,
            LearnerKind::Logistic,
            17,
            config(128, RetrainPolicy::Never),
        )
        .unwrap()
    };
    let mut sick = make();
    // A zero budget turns the first death into a permanent one.
    sick.inject_faults(
        FaultPlan::new().with_monitor_panics(MonitorPanics::at_batches(vec![1, 2, 3])),
    );
    let mut fleet = ShardedAsyncEngine::from_engines(
        vec![sick, make()],
        AsyncConfig {
            supervisor: fast_supervisor(0),
            ..AsyncConfig::default()
        },
    )
    .unwrap();

    let mut stream = DriftStream::new(spec(u64::MAX), 17);
    let mut saw_error = false;
    for _ in 0..200 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(32)).unwrap();
        let tuples: Vec<ShardedTuple> = batch
            .iter()
            .enumerate()
            .map(|(i, t)| ShardedTuple {
                shard: (i % 2) as u32,
                tuple: t.clone(),
            })
            .collect();
        if fleet.ingest(&tuples).is_err() {
            saw_error = true;
            break;
        }
    }
    assert!(saw_error, "the dead shard must surface its typed error");
    assert_eq!(
        fleet.shard_health(),
        vec![ShardHealth::Dead, ShardHealth::Live],
        "failure domains are per shard"
    );
    // The healthy shard still answers barriers through its own handle.
    assert_eq!(fleet.shard(1).unwrap().health(), ShardHealth::Live);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline chaos property. A random-but-reproducible fault
    /// schedule (retrain errors/panics *and* monitor deaths) against a
    /// generous restart budget: serving never returns an error, no
    /// panic escapes, the flush drains to quiescence, and the trail
    /// accounts for every gap and every degraded transition.
    #[test]
    fn random_fault_schedules_never_wedge_serving(seed in 0u64..512) {
        let plan = FaultPlan::seeded(seed);
        let reference = spec(u64::MAX).reference(600, 29);
        let mut inner = StreamEngine::from_reference(
            &reference, LearnerKind::Logistic, 29, alerting_config(128),
        ).unwrap();
        let (ring, sink) = ring();
        inner.set_sink(sink);
        inner.inject_faults(plan.clone());
        let mut anc = AsyncEngine::from_engine(
            inner,
            AsyncConfig {
                supervisor: fast_supervisor(8),
                ..AsyncConfig::default()
            },
        );

        let mut stream = DriftStream::new(spec(u64::MAX), seed);
        for _ in 0..26 {
            let batch =
                StreamTuple::rows_from_dataset(&stream.next_batch(48)).unwrap();
            let decisions = anc.ingest(&batch).unwrap();
            prop_assert_eq!(decisions.len(), 48, "serving never degrades below answers");
        }
        anc.flush().unwrap();

        // Quiescence closes the books.
        prop_assert_eq!(anc.monitor_lag(), 0);
        prop_assert_eq!(anc.health(), ShardHealth::Live);

        let events = events_of(&ring);
        let restart_gaps: u64 = events.iter().filter_map(|e| match e {
            TelemetryEvent::MonitorRestart(r) => Some(r.gap_tuples),
            _ => None,
        }).sum();
        let restart_events = events.iter()
            .filter(|e| matches!(e, TelemetryEvent::MonitorRestart(_)))
            .count() as u64;
        prop_assert_eq!(restart_gaps, anc.monitor_gap_tuples(),
            "every gap tuple is on the trail");
        prop_assert_eq!(restart_events, anc.monitor_restarts(),
            "every respawn is on the trail");
        if let Some(deaths) = &plan.monitor {
            prop_assert_eq!(anc.monitor_restarts(), deaths.fired(),
                "each fired death costs exactly one restart");
        }

        // Degraded transitions on the trail are always real flips:
        // every `degraded_mode` event changes the flag, and every
        // `monitor_restart` re-anchors it (a death rolls the flag back
        // to the clone's, like the window counters). At the end the
        // engine's live flag agrees with the trail's reading.
        let mut flag = false;
        for event in &events {
            match event {
                TelemetryEvent::DegradedMode(d) => {
                    prop_assert!(d.entered != flag, "transitions are real flips");
                    flag = d.entered;
                }
                TelemetryEvent::MonitorRestart(r) => flag = r.degraded,
                _ => {}
            }
        }
        prop_assert_eq!(anc.is_degraded(), flag);
    }

    /// Byte-identical reconvergence: after the schedule is exhausted and
    /// the window has fully rotated on fresh tuples, the supervised
    /// engine and a fault-free twin agree on every decision and on the
    /// exact windowed state.
    #[test]
    fn recovered_engine_reconverges_with_fault_free_twin(seed in 0u64..512) {
        let window = 128usize;
        let reference = spec(u64::MAX).reference(600, 31);
        let make = || StreamEngine::from_reference(
            &reference, LearnerKind::Logistic, 31, config(window, RetrainPolicy::Never),
        ).unwrap();
        let plan = FaultPlan::seeded(seed);
        // Clones share the plan's counters, so the test can watch the
        // schedule burn down from outside the engine.
        let deaths = plan.monitor.clone();
        let fired = |d: &Option<MonitorPanics>| d.as_ref().map_or(0, MonitorPanics::fired);
        let scheduled = deaths.as_ref().map_or(0, MonitorPanics::scheduled);
        let mut sick = make();
        sick.inject_faults(plan);
        let mut faulted = AsyncEngine::from_engine(
            sick,
            AsyncConfig { supervisor: fast_supervisor(8), ..AsyncConfig::default() },
        );
        let mut clean = AsyncEngine::from_engine(make(), AsyncConfig::default());

        // Deaths are scheduled by *observed* batch count, so they can
        // fire arbitrarily late in wall-clock terms. Keep feeding until
        // the whole schedule has provably fired and then a full window
        // rotation (plus a margin for the respawn rollback) of fresh
        // labelled tuples has passed with no further death — including
        // none during the final flush drain.
        let mut stream = DriftStream::new(spec(u64::MAX), seed);
        let mut last_fired = 0;
        let mut fresh = 0u64;
        let mut guard = 0;
        loop {
            guard += 1;
            prop_assert!(guard < 200, "fault schedule never exhausted");
            let batch =
                StreamTuple::rows_from_dataset(&stream.next_batch(48)).unwrap();
            let a = faulted.ingest(&batch).unwrap();
            let b = clean.ingest(&batch).unwrap();
            prop_assert_eq!(a, b, "the model never swapped, so decisions match");
            fresh += 48;
            if fired(&deaths) != last_fired {
                last_fired = fired(&deaths);
                fresh = 0;
                continue;
            }
            if fired(&deaths) == scheduled && fresh >= window as u64 + 192 {
                faulted.flush().unwrap();
                clean.flush().unwrap();
                if fired(&deaths) == last_fired {
                    break;
                }
                // A death fired while the flush drained: its respawn
                // rolled back to a pre-death clone, so rotate again.
                last_fired = fired(&deaths);
                fresh = 0;
            }
        }

        prop_assert_eq!(faulted.monitor_lag(), 0);
        prop_assert_eq!(clean.monitor_gap_tuples(), 0, "the twin saw everything");
        // The window has fully rotated past every gap: the two engines'
        // windowed state — counters and the snapshot computed from them —
        // is byte-identical again.
        prop_assert_eq!(faulted.window_counts(), clean.window_counts());
        prop_assert_eq!(faulted.snapshot(), clean.snapshot());
    }
}

/// Satellite: tier-3 exhaustion under the repair ladder. When every
/// retrain attempt in the tier-3 episode faults, the engine flags
/// degraded mode but the cheap rungs keep serving repairs — the ladder
/// falls back to tier 2 with the projection installed, and `ingest`
/// never wedges. Once the fault schedule is spent, the re-entered
/// tier-3 episode retrains, clears degraded mode, and resets the
/// serve-time artifacts to the identity. The trail reconciles the whole
/// outage: exactly one degraded enter/clear pair, a `failed` tier-3
/// episode before the `retrained` one, and a tier-2 fallback re-arm in
/// between.
#[test]
fn ladder_tier3_exhaustion_degrades_while_cheap_tiers_keep_serving() {
    let reference = spec(350).reference(900, 23);
    let cfg = StreamConfig {
        window: 128,
        di_floor: 0.8,
        floor_min_window: 48,
        floor_cooldown: 300,
        retrain: RetrainPolicy::OnAlert { min_window: 64 },
        repair: RepairConfig {
            ladder: true,
            tier_patience: 3,
            nudge_step: 0.25,
            // Tier 1 is impotent: every nudge clamps immediately, which
            // forces the climb into the faulted retrain path.
            nudge_max: 0.0,
            recovery_hold: 2,
            ..fast_repair()
        },
        confair: ConFairConfig {
            alpha: AlphaMode::Fixed {
                alpha_u: 2.0,
                alpha_w: 1.0,
            },
            ..ConFairConfig::default()
        },
        ..StreamConfig::default()
    };
    let mut engine =
        StreamEngine::from_reference(&reference, LearnerKind::Logistic, 23, cfg).unwrap();
    let (ring, sink) = ring();
    engine.set_sink(sink);
    // Both attempts of the first tier-3 episode fail; the schedule is
    // then spent, so the re-entered episode succeeds.
    let faults = RetrainFaults::fail_first(2, FaultKind::Error);
    engine.inject_faults(FaultPlan::new().with_retrain(faults.clone()));

    let mut stream = DriftStream::new(spec(350), 9);
    let mut served_degraded = false;
    for _ in 0..60 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(64)).unwrap();
        // Never wedges: the faulted episode surfaces on the trail, not
        // as an ingest error.
        engine.ingest(&batch).unwrap();
        if engine.is_degraded() {
            // The retrain path is down, but tiers 1-2 still serve: the
            // ladder rests on tier 2 with the projection installed.
            assert_eq!(
                engine.repair_tier(),
                Some(cf_stream::RepairTier::DiffFairProjection)
            );
            assert!(engine.repair_projection_active());
            served_degraded = true;
        }
        if served_degraded && engine.retrain_count() >= 1 {
            break;
        }
    }

    assert!(
        served_degraded,
        "the faulted episode must flag degraded mode"
    );
    assert_eq!(faults.injected(), 2, "both scheduled faults fired");
    assert!(
        engine.retrain_count() >= 1,
        "the re-entered tier-3 episode must retrain once the faults are spent"
    );
    assert!(
        !engine.is_degraded(),
        "a successful retrain clears degraded mode"
    );
    assert_eq!(engine.repair_tier(), None);
    assert!(engine.repair_thresholds().iter().all(|&t| t == 0.0));
    assert!(!engine.repair_projection_active());

    // Trail reconciliation: one enter (with the episode's attempt count
    // and final error) and one clear, in that order.
    let degraded: Vec<(bool, u64, bool)> = events_of(&ring)
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::DegradedMode(d) => Some((d.entered, d.attempts, d.error.is_some())),
            _ => None,
        })
        .collect();
    assert_eq!(degraded.len(), 2, "exactly one outage: {degraded:?}");
    assert_eq!(
        (degraded[0].0, degraded[0].1, degraded[0].2),
        (true, 2, true)
    );
    assert!(!degraded[1].0);

    // The repair episodes on the trail tell the same story: a failed
    // tier-3 climb, the tier-2 fallback re-arm, then the successful
    // retrain.
    let repairs: Vec<(String, String)> = events_of(&ring)
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::RepairStart(s) => Some((s.tier.clone(), String::new())),
            TelemetryEvent::RepairEnd(s) => Some((s.tier.clone(), s.outcome.clone())),
            _ => None,
        })
        .collect();
    let failed_at = repairs
        .iter()
        .position(|r| r == &("confair_retrain".into(), "failed".into()))
        .expect("the exhausted episode closes as failed");
    let retrained_at = repairs
        .iter()
        .position(|r| r == &("confair_retrain".into(), "retrained".into()))
        .expect("the re-entered episode closes as retrained");
    assert!(failed_at < retrained_at);
    assert!(
        repairs[failed_at..retrained_at].contains(&("difffair_projection".into(), String::new())),
        "the fallback re-arms tier 2 between the episodes: {repairs:?}"
    );
}
