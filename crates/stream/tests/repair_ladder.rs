//! The repair-ladder equivalence contract: an engine with the escalation
//! ladder *disabled* (the default — all-zero per-cell thresholds, no
//! projection) must be **byte-identical** to the pre-ladder engine —
//! decisions, snapshots, alerts, checkpoint documents, and telemetry
//! trails — across the sync, async-at-quiescence, and sharded engines.
//!
//! The pin is a set of `ladder_*` golden fixtures under `tests/fixtures/`,
//! captured once from the pre-ladder tree (run `cargo test --test
//! repair_ladder -- --ignored capture` against that tree) and **never
//! regenerated** — see `tests/fixtures/README.md`. The scenarios
//! deliberately include an on-alert ConFair retrain, so the legacy repair
//! episode's trail bytes (`repair_start`/`repair_end` with the
//! `confair_retrain` tier) are pinned alongside the serving path. Two
//! normalisations are permitted, both scrubbed before comparison:
//! * the checkpoint-format `"version"` stamp on checkpoint/restored
//!   events (the v4→v5 bump is the schema change this suite polices);
//! * `"duration_us"` on `repair_end` events — the one wall-clock field a
//!   deterministic run cannot reproduce.
//!
//! Alongside the pin, the ladder half of the suite property-checks what
//! the pre-ladder engine could never do: recover DI* past the EEOC 0.8
//! floor with zero retrains (tier 1), escalate monotonically through the
//! tiers and de-escalate after recovery, and agree across the sync,
//! async-at-quiescence, and sharded engines through a full ladder episode.

use cf_datasets::stream::{DriftStream, DriftStreamSpec};
use cf_learners::LearnerKind;
use cf_stream::{
    AsyncConfig, AsyncEngine, BackpressurePolicy, EngineCheckpoint, GroupLayout, LabelFeedback,
    RepairConfig, RepairTier, RetrainPolicy, ShardedCheckpoint, ShardedEngine, ShardedTuple,
    StreamConfig, StreamEngine, StreamTuple,
};
use cf_telemetry::{RingSink, SharedSink, TelemetryEvent};
use confair_core::confair::{AlphaMode, ConFairConfig};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture(name: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {path:?} ({e}); fixtures are captured from the \
             pre-ladder engine with `cargo test --test repair_ladder -- \
             --ignored capture_ladder_fixtures` and committed"
        )
    })
}

fn spec(drift_onset: u64) -> DriftStreamSpec {
    DriftStreamSpec {
        drift_onset,
        ..DriftStreamSpec::default()
    }
}

/// The pinned scenario config: on-alert retraining against a floor the
/// post-drift stream violates, so each scenario walks the full legacy
/// repair path (alert → episode → retrain → model swap). Struct-update
/// syntax keeps this compiling — and meaning "ladder off" — on both
/// sides of the refactor.
fn config() -> StreamConfig {
    StreamConfig {
        window: 192,
        di_floor: 0.95,
        floor_min_window: 48,
        floor_cooldown: 300,
        retrain: RetrainPolicy::OnAlert { min_window: 64 },
        confair: ConFairConfig {
            alpha: AlphaMode::Fixed {
                alpha_u: 2.0,
                alpha_w: 1.0,
            },
            ..ConFairConfig::default()
        },
        ..StreamConfig::default()
    }
}

fn ring() -> (Arc<Mutex<RingSink>>, SharedSink) {
    let ring = Arc::new(Mutex::new(RingSink::new(1 << 16)));
    let sink: SharedSink = ring.clone();
    (ring, sink)
}

fn jsonl_of(ring: &Arc<Mutex<RingSink>>) -> String {
    ring.lock()
        .unwrap()
        .events()
        .iter()
        .map(|e| serde_json::to_string(e).unwrap())
        .collect::<Vec<_>>()
        .join("\n")
}

/// One compact JSON value per line, so fixtures diff line-by-line.
fn jsonl<T: serde::Serialize>(items: &[T]) -> String {
    items
        .iter()
        .map(|x| serde_json::to_string(x).unwrap())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Normalise the two fields a trail is *allowed* to change across the
/// refactor: the checkpoint-format version stamped on checkpoint and
/// restored events, and the wall-clock `duration_us` carried by
/// `repair_end` events. Everything else must match byte for byte.
fn scrub(trail: &str) -> String {
    let mut out = String::with_capacity(trail.len());
    for line in trail.lines() {
        if !out.is_empty() {
            out.push('\n');
        }
        let mut scrubbed = line.to_string();
        for v in 1..=9 {
            scrubbed = scrubbed.replace(&format!("\"version\":{v}"), "\"version\":0");
        }
        out.push_str(&scrub_field_digits(&scrubbed, "\"duration_us\":"));
    }
    out
}

/// Replace the digit run following every occurrence of `key` with `0`.
fn scrub_field_digits(line: &str, key: &str) -> String {
    let mut parts = line.split(key);
    let mut out = String::with_capacity(line.len());
    out.push_str(parts.next().unwrap_or(""));
    for rest in parts {
        out.push_str(key);
        out.push('0');
        out.push_str(rest.trim_start_matches(|c: char| c.is_ascii_digit()));
    }
    out
}

/// Every artifact one scenario produces, as committed fixture strings.
struct Artifacts {
    /// `(file name, contents)`.
    files: Vec<(&'static str, String)>,
}

impl Artifacts {
    fn assert_matches_fixtures(&self) {
        for (name, live) in &self.files {
            let golden = fixture(name);
            let (golden, live) = if name.ends_with(".jsonl") {
                (scrub(&golden), scrub(live))
            } else if name.contains("sharded") {
                // Checkpoint documents: parse both sides through the
                // upgrade chain and compare the re-serialised bytes, so
                // the v4→v5 format bump (the schema change this suite
                // polices) is normalised and *everything else* — window
                // contents, counters, detector positions, model
                // parameters — must still match byte for byte.
                (
                    ShardedCheckpoint::from_json(&golden).unwrap().to_json(),
                    ShardedCheckpoint::from_json(live).unwrap().to_json(),
                )
            } else {
                (
                    EngineCheckpoint::from_json(&golden).unwrap().to_json(),
                    EngineCheckpoint::from_json(live).unwrap().to_json(),
                )
            };
            assert_eq!(
                golden, live,
                "{name}: ladder-off run diverged from the pre-ladder engine"
            );
        }
    }
}

/// Sync engine: eight labeled drifting batches through the full
/// alert → repair-episode → retrain path, a mid-run checkpoint, and a
/// restored engine replaying the tail.
fn sync_scenario() -> Artifacts {
    let reference = spec(350).reference(900, 23);
    let mut engine =
        StreamEngine::from_reference(&reference, LearnerKind::Logistic, 23, config()).unwrap();
    let (ring, sink) = ring();
    engine.set_sink(sink);

    let mut stream = DriftStream::new(spec(350), 9);
    let mut decisions: Vec<Vec<u8>> = Vec::new();
    let mut snapshots = Vec::new();
    let mut checkpoint_json = String::new();
    let mut batches: Vec<Vec<StreamTuple>> = Vec::new();
    for b in 0..8 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(150)).unwrap();
        let out = engine.ingest(&batch).unwrap();
        decisions.push(out.decisions.clone());
        snapshots.push(out.snapshot.to_data());
        batches.push(batch);
        if b == 3 {
            checkpoint_json = engine.checkpoint().unwrap().to_json();
        }
    }
    assert!(
        engine.retrain_count() >= 1,
        "the pinned scenario must walk the legacy repair path"
    );

    // Restore from the mid-run document (through the JSON round trip, so
    // post-refactor the fixture exercises the v4→v5 upgrade chain) and
    // replay the tail: the continuation must be the original's.
    let restored_ckpt = EngineCheckpoint::from_json(&checkpoint_json).unwrap();
    let mut restored = StreamEngine::restore(restored_ckpt).unwrap();
    let mut restored_decisions: Vec<Vec<u8>> = Vec::new();
    for batch in &batches[4..8] {
        restored_decisions.push(restored.ingest(batch).unwrap().decisions);
    }
    assert_eq!(
        restored_decisions,
        decisions[4..8],
        "restore replays the tail"
    );

    Artifacts {
        files: vec![
            ("ladder_sync_decisions.jsonl", jsonl(&decisions)),
            ("ladder_sync_snapshots.jsonl", jsonl(&snapshots)),
            ("ladder_sync_alerts.jsonl", jsonl(engine.alerts())),
            ("ladder_sync_checkpoint.json", checkpoint_json),
            ("ladder_sync_trail.jsonl", jsonl_of(&ring)),
        ],
    }
}

/// Async engine flushed to quiescence after every round: unlabeled
/// ingest with feedback joins, the retrain happening off-thread.
fn async_scenario() -> Artifacts {
    let reference = spec(250).reference(900, 37);
    let mut inner =
        StreamEngine::from_reference(&reference, LearnerKind::Logistic, 37, config()).unwrap();
    let (ring, sink) = ring();
    inner.set_sink(sink);
    let mut anc = AsyncEngine::from_engine(
        inner,
        AsyncConfig {
            queue_depth: 4,
            backpressure: BackpressurePolicy::Block,
            ..AsyncConfig::default()
        },
    );

    let mut stream = DriftStream::new(spec(250), 15);
    let mut decisions: Vec<Vec<u8>> = Vec::new();
    let mut snapshots = Vec::new();
    let mut first_id = 0u64;
    for _ in 0..6 {
        let labeled = StreamTuple::rows_from_dataset(&stream.next_batch(120)).unwrap();
        let unlabeled: Vec<StreamTuple> = labeled
            .iter()
            .map(|t| StreamTuple {
                label: None,
                ..t.clone()
            })
            .collect();
        decisions.push(anc.ingest(&unlabeled).unwrap());
        let fb: Vec<LabelFeedback> = labeled
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(i, t)| LabelFeedback {
                id: first_id + i as u64,
                label: t.label.unwrap(),
            })
            .collect();
        first_id += labeled.len() as u64;
        anc.feedback(&fb).unwrap();
        anc.flush().unwrap();
        snapshots.push(anc.snapshot().to_data());
    }
    assert!(
        anc.retrain_count() >= 1,
        "the pinned async scenario must retrain off-thread"
    );

    Artifacts {
        files: vec![
            ("ladder_async_decisions.jsonl", jsonl(&decisions)),
            ("ladder_async_snapshots.jsonl", jsonl(&snapshots)),
            ("ladder_async_alerts.jsonl", jsonl(&anc.alerts())),
            ("ladder_async_trail.jsonl", jsonl_of(&ring)),
        ],
    }
}

/// Two shards under a deterministic router, labeled ingest, a final
/// sharded checkpoint.
fn sharded_scenario() -> Artifacts {
    let n_shards = 2usize;
    let reference = spec(300).reference(900, 41);
    let mut engine =
        ShardedEngine::from_reference(&reference, LearnerKind::Logistic, 41, config(), n_shards)
            .unwrap();
    let mut rings = Vec::new();
    for s in 0..n_shards {
        let (ring, sink) = ring();
        engine.set_sink(s as u32, sink).unwrap();
        rings.push(ring);
    }

    let route = |i: usize| -> u32 {
        let z = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((z >> 9) % n_shards as u64) as u32
    };
    let mut stream = DriftStream::new(spec(300), 25);
    let mut decisions: Vec<Vec<u8>> = Vec::new();
    let mut merged_snapshots = Vec::new();
    for _ in 0..6 {
        let labeled = StreamTuple::rows_from_dataset(&stream.next_batch(150)).unwrap();
        let routed: Vec<ShardedTuple> = labeled
            .into_iter()
            .enumerate()
            .map(|(i, tuple)| ShardedTuple {
                shard: route(i),
                tuple,
            })
            .collect();
        let out = engine.ingest(&routed).unwrap();
        decisions.push(out.decisions.clone());
        merged_snapshots.push(engine.snapshot().to_data());
    }
    let checkpoint_json = engine.checkpoint().unwrap().to_json();
    let restored =
        ShardedEngine::restore(ShardedCheckpoint::from_json(&checkpoint_json).unwrap()).unwrap();
    assert_eq!(
        serde_json::to_string(&restored.snapshot().to_data()).unwrap(),
        serde_json::to_string(&engine.snapshot().to_data()).unwrap(),
        "restored sharded engine republishes the live merged snapshot"
    );

    Artifacts {
        files: vec![
            ("ladder_sharded_decisions.jsonl", jsonl(&decisions)),
            ("ladder_sharded_snapshots.jsonl", jsonl(&merged_snapshots)),
            ("ladder_sharded_trail_s0.jsonl", jsonl_of(&rings[0])),
            ("ladder_sharded_trail_s1.jsonl", jsonl_of(&rings[1])),
            ("ladder_sharded_checkpoint.json", checkpoint_json),
        ],
    }
}

/// Capture the golden fixtures. Run **only** against the pre-ladder
/// tree; refuses to clobber an existing pin.
#[test]
#[ignore = "writes golden fixtures; run once against the pre-ladder engine"]
fn capture_ladder_fixtures() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for artifacts in [sync_scenario(), async_scenario(), sharded_scenario()] {
        for (name, contents) in &artifacts.files {
            let path = dir.join(name);
            assert!(
                !path.exists(),
                "{path:?} already captured; the pin is never regenerated \
                 (see tests/fixtures/README.md)"
            );
            std::fs::write(&path, contents).unwrap();
        }
    }
}

// ---------------------------------------------------------------------------
// Ladder-on properties: what the pre-ladder engine could never do.
// ---------------------------------------------------------------------------

/// A ladder-enabled config. `patience` bounds how long each rung may fail
/// before escalating; `nudge_max` 0.0 makes tier 1 deliberately impotent
/// (every nudge clamps immediately), which is how the escalation tests
/// force the climb.
fn ladder_config(retrain: RetrainPolicy, patience: u32, nudge_max: f64) -> StreamConfig {
    StreamConfig {
        window: 128,
        di_floor: 0.8,
        floor_min_window: 48,
        floor_cooldown: 300,
        retrain,
        repair: RepairConfig {
            ladder: true,
            tier_patience: patience,
            nudge_step: 0.25,
            nudge_max,
            recovery_hold: 2,
            ..RepairConfig::default()
        },
        confair: ConFairConfig {
            alpha: AlphaMode::Fixed {
                alpha_u: 2.0,
                alpha_w: 1.0,
            },
            ..ConFairConfig::default()
        },
        ..StreamConfig::default()
    }
}

/// The `(tier, outcome)` sequence of every `repair_start` (outcome `""`)
/// and `repair_end` event on the trail, in emission order.
fn repair_events(ring: &Arc<Mutex<RingSink>>) -> Vec<(String, String)> {
    ring.lock()
        .unwrap()
        .events()
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::RepairStart(s) => Some((s.tier.clone(), String::new())),
            TelemetryEvent::RepairEnd(s) => Some((s.tier.clone(), s.outcome.clone())),
            _ => None,
        })
        .collect()
}

/// Property (b): a drifted stream that breaks the EEOC 0.8 floor is
/// repaired by tier-1 threshold nudges alone — DI* recrosses the floor,
/// the episode closes with a `recovered` trail event, and the retrain
/// counter never moves (the whole point of the µs rung).
#[test]
fn tier1_nudges_lift_di_star_over_the_floor_with_zero_retrains() {
    let reference = spec(350).reference(900, 23);
    let mut engine = StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        23,
        // Patience 200: tier 1 gets all the room it needs, so any
        // recovery in this test is the nudge's alone.
        ladder_config(RetrainPolicy::Never, 200, 6.0),
    )
    .unwrap();
    let (ring, sink) = ring();
    engine.set_sink(sink);

    let mut stream = DriftStream::new(spec(350), 9);
    let mut episode_opened = false;
    let mut recrossed = false;
    for _ in 0..40 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(64)).unwrap();
        let out = engine.ingest(&batch).unwrap();
        if engine.repair_tier() == Some(RepairTier::ThresholdNudge) {
            episode_opened = true;
        }
        if episode_opened && out.snapshot.passes_di_floor() == Some(true) {
            recrossed = true;
        }
    }

    assert!(episode_opened, "the drift must open a tier-1 episode");
    assert!(recrossed, "DI* must recross the floor under nudges alone");
    assert_eq!(engine.retrain_count(), 0, "tier 1 never retrains");
    assert!(
        engine.repair_thresholds().iter().any(|&t| t < 0.0),
        "recovery was produced by a non-identity threshold vector"
    );
    let events = repair_events(&ring);
    assert!(
        events.contains(&("threshold_nudge".into(), "recovered".into())),
        "the episode must close as recovered: {events:?}"
    );
    assert!(
        events.iter().all(|(tier, _)| tier == "threshold_nudge"),
        "no rung above tier 1 may appear on the trail: {events:?}"
    );
    // Threshold motion is audited: every nudge leaves a trail event
    // carrying the full per-cell vector, and the last one matches the
    // engine's live state.
    let last_thresholds = ring
        .lock()
        .unwrap()
        .events()
        .iter()
        .rev()
        .find_map(|e| match e {
            TelemetryEvent::ThresholdChange(t) => Some(t.thresholds.clone()),
            _ => None,
        })
        .expect("nudges emit threshold_change events");
    assert_eq!(last_thresholds, engine.repair_thresholds());
}

/// Property (c): with tier 1 made impotent (`nudge_max` 0.0) the ladder
/// escalates monotonically — nudge → projection → retrain, never
/// skipping or descending mid-episode — and a successful tier-3 retrain
/// de-escalates to idle with the serve-time artifacts reset.
#[test]
fn escalation_is_monotone_and_a_retrain_deescalates_to_identity() {
    let reference = spec(350).reference(900, 23);
    let mut engine = StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        23,
        ladder_config(RetrainPolicy::OnAlert { min_window: 64 }, 3, 0.0),
    )
    .unwrap();
    let (ring, sink) = ring();
    engine.set_sink(sink);

    let mut stream = DriftStream::new(spec(350), 9);
    for _ in 0..30 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(64)).unwrap();
        engine.ingest(&batch).unwrap();
        if engine.retrain_count() >= 1 {
            break;
        }
    }
    assert!(
        engine.retrain_count() >= 1,
        "the impotent cheap rungs must escalate into a tier-3 retrain"
    );

    // The start events climb the ladder in index order, without skips.
    let starts: Vec<u8> = repair_events(&ring)
        .iter()
        .filter(|(_, outcome)| outcome.is_empty())
        .map(|(tier, _)| match tier.as_str() {
            "threshold_nudge" => 1,
            "difffair_projection" => 2,
            "confair_retrain" => 3,
            other => panic!("unknown tier {other}"),
        })
        .collect();
    assert_eq!(
        starts[..3],
        [1, 2, 3],
        "the first episode must climb rung by rung: {starts:?}"
    );
    let events = repair_events(&ring);
    assert!(
        events.contains(&("threshold_nudge".into(), "escalated".into()))
            && events.contains(&("difffair_projection".into(), "escalated".into())),
        "each abandoned rung closes as escalated: {events:?}"
    );
    assert!(
        events.contains(&("confair_retrain".into(), "retrained".into())),
        "the tier-3 episode closes as retrained: {events:?}"
    );

    // De-escalation: the successful retrain repaired the stream at the
    // root, so the ladder is idle and the serve-time overlay is back to
    // the identity.
    assert_eq!(engine.repair_tier(), None);
    assert!(engine.repair_thresholds().iter().all(|&t| t == 0.0));
    assert!(!engine.repair_projection_active());
}

/// Property (d): sync, async-at-quiescence, and sharded engines agree —
/// decisions, snapshots, ladder state — through a full ladder episode.
#[test]
fn engines_agree_at_quiescence_through_a_ladder_episode() {
    let config = ladder_config(RetrainPolicy::Never, 200, 6.0);
    let reference = spec(350).reference(900, 23);
    let build =
        || StreamEngine::from_reference(&reference, LearnerKind::Logistic, 23, config.clone());

    let mut sync = build().unwrap();
    let mut anc = AsyncEngine::from_engine(build().unwrap(), AsyncConfig::default());
    let n_shards = 2usize;
    let mut sharded =
        ShardedEngine::from_engines((0..n_shards).map(|_| build().unwrap()).collect()).unwrap();
    // Per-shard mirrors: each shard must behave exactly like a standalone
    // engine fed only its slice of the traffic.
    let mut mirrors: Vec<StreamEngine> = (0..n_shards).map(|_| build().unwrap()).collect();

    let route = |i: usize| -> u32 {
        let z = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((z >> 9) % n_shards as u64) as u32
    };
    let mut stream = DriftStream::new(spec(350), 9);
    for _ in 0..30 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(64)).unwrap();

        let sync_out = sync.ingest(&batch).unwrap();
        let async_decisions = anc.ingest(&batch).unwrap();
        anc.flush().unwrap();
        assert_eq!(sync_out.decisions, async_decisions);
        assert_eq!(
            serde_json::to_string(&sync_out.snapshot.to_data()).unwrap(),
            serde_json::to_string(&anc.snapshot().to_data()).unwrap()
        );

        let routed: Vec<ShardedTuple> = batch
            .iter()
            .enumerate()
            .map(|(i, tuple)| ShardedTuple {
                shard: route(i),
                tuple: tuple.clone(),
            })
            .collect();
        let sharded_out = sharded.ingest(&routed).unwrap();
        for (s, mirror) in mirrors.iter_mut().enumerate() {
            let slice: Vec<StreamTuple> = routed
                .iter()
                .filter(|t| t.shard == s as u32)
                .map(|t| t.tuple.clone())
                .collect();
            let mirror_out = mirror.ingest(&slice).unwrap();
            let sharded_slice: Vec<u8> = routed
                .iter()
                .zip(&sharded_out.decisions)
                .filter(|(t, _)| t.shard == s as u32)
                .map(|(_, &d)| d)
                .collect();
            assert_eq!(mirror_out.decisions, sharded_slice);
        }
    }

    // A ladder episode actually ran (otherwise this test pins nothing).
    assert!(
        sync.repair_thresholds().iter().any(|&t| t != 0.0) || sync.repair_tier().is_some(),
        "the scenario must exercise the ladder"
    );
    // Quiescent agreement on the full ladder state.
    assert_eq!(sync.repair_tier(), anc.repair_tier());
    assert_eq!(sync.repair_thresholds(), anc.repair_thresholds());
    assert_eq!(
        sync.repair_projection_active(),
        anc.repair_projection_active()
    );
    for (s, mirror) in mirrors.iter().enumerate() {
        let shard = sharded.shard(s as u32).unwrap();
        assert_eq!(shard.repair_tier(), mirror.repair_tier());
        assert_eq!(shard.repair_thresholds(), mirror.repair_thresholds());
    }
    assert_eq!(
        sharded.repair_tiers(),
        mirrors
            .iter()
            .map(StreamEngine::repair_tier)
            .collect::<Vec<_>>()
    );
}

/// Satellite: per-cell nudges never touch the window counters, so the
/// intersectional marginal arithmetic stays exactly additive under an
/// active repair episode.
#[test]
fn marginals_stay_exactly_additive_under_nudges() {
    let layout = GroupLayout::new(vec![2, 2]).unwrap();
    let config = StreamConfig {
        groups: layout.cells(),
        ..ladder_config(RetrainPolicy::Never, 200, 6.0)
    };
    let reference = spec(350).reference(900, 23);
    let mut engine =
        StreamEngine::from_reference(&reference, LearnerKind::Logistic, 23, config).unwrap();

    let mut stream = DriftStream::new(spec(350), 9);
    for _ in 0..30 {
        let mut batch = StreamTuple::rows_from_dataset(&stream.next_batch(64)).unwrap();
        // Second axis synthesised deterministically, so every (group,
        // region) cell fills.
        for (i, t) in batch.iter_mut().enumerate() {
            t.group = layout.cell_of(&[usize::from(t.group), i % 2]).unwrap();
        }
        engine.ingest(&batch).unwrap();
    }
    assert!(
        engine.repair_thresholds().iter().any(|&t| t != 0.0),
        "the scenario must nudge at least one cell"
    );

    let counts = engine.window_counts();
    for axis in 0..2 {
        let marginal = layout.marginal(counts, axis).unwrap();
        // Every marginal cell is the exact sum of its constituent cells.
        for (m, cell) in marginal.iter().enumerate() {
            let mut expect = cf_stream::GroupCounts::default();
            for (c, full) in counts.iter().enumerate() {
                let coords = [c / 2, c % 2];
                if coords[axis] == m {
                    expect.total += full.total;
                    expect.selected += full.selected;
                    expect.violations += full.violations;
                    expect.labeled += full.labeled;
                    expect.label_positive += full.label_positive;
                    expect.true_positive += full.true_positive;
                    expect.false_positive += full.false_positive;
                }
            }
            assert_eq!(*cell, expect, "axis {axis}, marginal cell {m}");
        }
    }
}

/// Satellite: the committed fixture corpus — pre-ladder v4 checkpoint
/// documents — parses through the upgrade chain, lands at the live
/// format version, restores, and comes out with the ladder idle and the
/// serve-time overlay at the identity.
#[test]
fn fixture_checkpoints_upgrade_through_the_chain_to_the_identity_ladder() {
    let sync = EngineCheckpoint::from_json(&fixture("ladder_sync_checkpoint.json")).unwrap();
    assert_eq!(sync.version, cf_stream::CHECKPOINT_VERSION);
    assert_eq!(sync.repair_tier, 0);
    assert_eq!(sync.repair_thresholds, vec![0.0; sync.config.groups]);
    assert!(!sync.repair_projection);
    assert!(
        !sync.config.repair.ladder,
        "upgraded documents keep the ladder off"
    );
    let restored = StreamEngine::restore(sync).unwrap();
    assert_eq!(restored.repair_tier(), None);
    assert!(restored.repair_thresholds().iter().all(|&t| t == 0.0));

    let sharded = ShardedCheckpoint::from_json(&fixture("ladder_sharded_checkpoint.json")).unwrap();
    assert_eq!(sharded.version, cf_stream::CHECKPOINT_VERSION);
    for shard in &sharded.shards {
        assert_eq!(shard.repair_tier, 0);
        assert_eq!(shard.repair_thresholds, vec![0.0; shard.config.groups]);
    }
    ShardedEngine::restore(sharded).unwrap();
}

/// A checkpoint taken mid-episode restores the full ladder state — rung,
/// thresholds, counters — and the restored engine continues the stream
/// exactly as the uninterrupted one.
/// Satellite: the whole committed corpus, not just the ladder family —
/// every `.json` checkpoint fixture parses through the upgrade chain
/// (v1 → … → live) and lands at the live format version. Fixture
/// documents are captured at whatever version was current when their
/// family was added and are never hand-bumped (see
/// `tests/fixtures/README.md`), so this sweep is what keeps the chain's
/// oldest rungs exercised forever.
#[test]
fn every_fixture_checkpoint_parses_at_the_live_version() {
    let mut swept = 0;
    for entry in std::fs::read_dir(fixture_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let doc = std::fs::read_to_string(&path).unwrap();
        let version = if let Ok(ckpt) = EngineCheckpoint::from_json(&doc) {
            StreamEngine::restore(ckpt.clone()).unwrap();
            ckpt.version
        } else {
            let ckpt = ShardedCheckpoint::from_json(&doc).unwrap_or_else(|e| {
                panic!(
                    "{} parses as neither engine nor sharded: {e}",
                    path.display()
                )
            });
            ShardedEngine::restore(ckpt.clone()).unwrap();
            ckpt.version
        };
        assert_eq!(
            version,
            cf_stream::CHECKPOINT_VERSION,
            "{} must upgrade to the live version",
            path.display()
        );
        swept += 1;
    }
    assert!(
        swept >= 4,
        "the corpus holds at least 4 checkpoint documents, found {swept}"
    );
}

#[test]
fn mid_episode_checkpoint_restores_the_ladder_bit_identically() {
    let reference = spec(350).reference(900, 23);
    let mut engine = StreamEngine::from_reference(
        &reference,
        LearnerKind::Logistic,
        23,
        ladder_config(RetrainPolicy::Never, 200, 6.0),
    )
    .unwrap();

    let mut stream = DriftStream::new(spec(350), 9);
    let mut batches = Vec::new();
    for _ in 0..12 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(64)).unwrap();
        engine.ingest(&batch).unwrap();
        batches.push(batch);
    }
    assert!(
        engine.repair_tier().is_some() || engine.repair_thresholds().iter().any(|&t| t != 0.0),
        "the checkpoint must capture a live episode"
    );

    let doc = engine.checkpoint().unwrap().to_json();
    let mut restored = StreamEngine::restore(EngineCheckpoint::from_json(&doc).unwrap()).unwrap();
    assert_eq!(restored.repair_tier(), engine.repair_tier());
    assert_eq!(restored.repair_thresholds(), engine.repair_thresholds());

    for _ in 0..8 {
        let batch = StreamTuple::rows_from_dataset(&stream.next_batch(64)).unwrap();
        let a = engine.ingest(&batch).unwrap();
        let b = restored.ingest(&batch).unwrap();
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(
            serde_json::to_string(&a.snapshot.to_data()).unwrap(),
            serde_json::to_string(&b.snapshot.to_data()).unwrap()
        );
    }
    // `repair_work_us` is wall-clock and legitimately differs between
    // the twins; everything else in the documents must be byte-equal.
    let mut a = engine.checkpoint().unwrap();
    let mut b = restored.checkpoint().unwrap();
    a.repair_work_us = 0;
    b.repair_work_us = 0;
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn sync_ladder_off_is_byte_identical_to_the_pre_ladder_engine() {
    sync_scenario().assert_matches_fixtures();
}

#[test]
fn async_ladder_off_at_quiescence_is_byte_identical_to_the_pre_ladder_engine() {
    async_scenario().assert_matches_fixtures();
}

#[test]
fn sharded_ladder_off_is_byte_identical_to_the_pre_ladder_engine() {
    sharded_scenario().assert_matches_fixtures();
}
