//! Deterministic fault injection for the stream stack (compiled only
//! with the default-on `fault-injection` feature).
//!
//! A [`FaultPlan`] is a *schedule*, not a probability: it names the
//! exact retrain attempts that fail (and how — typed error or panic)
//! and the exact batch counts at which the monitor thread dies. Two
//! runs with the same plan inject the same faults at the same points,
//! which is what lets the chaos suite assert byte-identical recovery
//! against a fault-free twin. [`FaultPlan::seeded`] derives a random
//! schedule from a seed for property tests.
//!
//! The counters inside a plan are `Arc`-shared **across monitor
//! clones**. That matters for supervision: the recovery clone a
//! supervisor respawns from was taken *before* the crash, but it shares
//! the plan's fired-fault cursor with the monitor that died — so a
//! scheduled panic fires exactly once per scheduled point, not once per
//! incarnation, and a respawned monitor does not re-enter the crash
//! loop it just recovered from.
//!
//! The third seam the issue names — sink write failures — lives with
//! the sinks themselves: see `WriteFaultPlan` in `cf-telemetry`.
//!
//! Injected panics unwind via [`std::panic::resume_unwind`], skipping
//! the global panic hook: chaos runs do not spray backtraces for
//! failures the test itself scheduled.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The panic payload every injected panic carries, so tests (and the
/// supervisor's reaped join handles) can tell scheduled faults from
/// genuine bugs.
pub const INJECTED_PANIC: &str = "cf-stream injected fault";

/// Unwind with the [`INJECTED_PANIC`] payload, bypassing the panic hook.
pub(crate) fn injected_panic() -> ! {
    std::panic::resume_unwind(Box::new(INJECTED_PANIC))
}

/// How a scheduled retrain fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The retrain attempt returns
    /// [`StreamError::Injected`](crate::StreamError::Injected).
    Error,
    /// The retrain attempt panics (the engine converts this to an error
    /// via `catch_unwind`, exercising the panic-recovery path).
    Panic,
}

/// A schedule of failing retrain attempts, keyed by a global 0-based
/// attempt counter that every clone of the owning
/// [`Monitor`](crate::Monitor) shares.
#[derive(Debug, Clone)]
pub struct RetrainFaults {
    /// `(attempt index, kind)`, sorted by attempt index.
    schedule: Arc<Vec<(u64, FaultKind)>>,
    attempts: Arc<AtomicU64>,
    injected: Arc<AtomicU64>,
}

impl RetrainFaults {
    /// Fault the given 0-based attempt indices (order and duplicates are
    /// normalised away).
    pub fn at_attempts(mut entries: Vec<(u64, FaultKind)>) -> Self {
        entries.sort_by_key(|(i, _)| *i);
        entries.dedup_by_key(|(i, _)| *i);
        RetrainFaults {
            schedule: Arc::new(entries),
            attempts: Arc::new(AtomicU64::new(0)),
            injected: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Fault the first `n` attempts, all with the same `kind` — the
    /// "learner is down, then recovers" shape.
    pub fn fail_first(n: u64, kind: FaultKind) -> Self {
        Self::at_attempts((0..n).map(|i| (i, kind)).collect())
    }

    /// Consume one attempt slot; `Some(kind)` when this attempt is
    /// scheduled to fault.
    pub(crate) fn on_attempt(&self) -> Option<FaultKind> {
        let attempt = self.attempts.fetch_add(1, Ordering::SeqCst);
        let kind = self
            .schedule
            .binary_search_by_key(&attempt, |(i, _)| *i)
            .ok()
            .map(|ix| self.schedule[ix].1);
        if kind.is_some() {
            self.injected.fetch_add(1, Ordering::SeqCst);
        }
        kind
    }

    /// Retrain attempts the plan has seen (across all clones).
    pub fn attempts_seen(&self) -> u64 {
        self.attempts.load(Ordering::SeqCst)
    }

    /// Faults actually fired so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Total faults the schedule will ever fire.
    pub fn scheduled(&self) -> u64 {
        self.schedule.len() as u64
    }
}

/// A schedule of monitor-thread deaths, keyed by a global count of
/// batches observed (shared across monitor clones — see module docs).
#[derive(Debug, Clone)]
pub struct MonitorPanics {
    /// Cumulative batch counts at which to panic, strictly increasing.
    at_batches: Arc<Vec<u64>>,
    observed: Arc<AtomicU64>,
    cursor: Arc<AtomicUsize>,
}

impl MonitorPanics {
    /// Panic when the cumulative observed-batch count reaches each of
    /// `batches` (1-based: `vec![3]` dies processing the 3rd batch).
    /// Zeroes and duplicates are normalised away.
    pub fn at_batches(mut batches: Vec<u64>) -> Self {
        batches.retain(|&b| b > 0);
        batches.sort_unstable();
        batches.dedup();
        MonitorPanics {
            at_batches: Arc::new(batches),
            observed: Arc::new(AtomicU64::new(0)),
            cursor: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Die once, processing the `n`th batch.
    pub fn after(n: u64) -> Self {
        Self::at_batches(vec![n])
    }

    /// Count one observed batch; `true` when the thread should die now.
    pub(crate) fn on_batch(&self) -> bool {
        let n = self.observed.fetch_add(1, Ordering::SeqCst) + 1;
        let cursor = self.cursor.load(Ordering::SeqCst);
        if cursor < self.at_batches.len() && n >= self.at_batches[cursor] {
            self.cursor.store(cursor + 1, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    /// Panics fired so far.
    pub fn fired(&self) -> u64 {
        self.cursor.load(Ordering::SeqCst) as u64
    }

    /// Total deaths the schedule will ever fire.
    pub fn scheduled(&self) -> u64 {
        self.at_batches.len() as u64
    }
}

/// A complete, deterministic fault schedule for one engine.
///
/// Install with
/// [`StreamEngine::inject_faults`](crate::StreamEngine::inject_faults)
/// *before* wrapping the engine in
/// an [`AsyncEngine`](crate::AsyncEngine) — the plan travels with the
/// monitor half, shared counters and all.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Scheduled retrain failures, if any.
    pub retrain: Option<RetrainFaults>,
    /// Scheduled monitor-thread deaths, if any.
    pub monitor: Option<MonitorPanics>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a retrain fault schedule.
    pub fn with_retrain(mut self, faults: RetrainFaults) -> Self {
        self.retrain = Some(faults);
        self
    }

    /// Add a monitor-death schedule.
    pub fn with_monitor_panics(mut self, panics: MonitorPanics) -> Self {
        self.monitor = Some(panics);
        self
    }

    /// Derive a random-but-reproducible schedule from a seed: up to 4
    /// faulted retrain attempts among the first 6, and up to 2 monitor
    /// deaths within the first 24 batches. Same seed, same schedule.
    pub fn seeded(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let retrain_faults = rng.gen_range(0..=4u32);
        let mut entries = Vec::new();
        for _ in 0..retrain_faults {
            let kind = if rng.gen_bool(0.5) {
                FaultKind::Error
            } else {
                FaultKind::Panic
            };
            entries.push((rng.gen_range(0..6u64), kind));
        }
        let deaths = rng.gen_range(0..=2u32);
        let batches = (0..deaths).map(|_| rng.gen_range(1..=24u64)).collect();
        FaultPlan {
            retrain: (!entries.is_empty()).then(|| RetrainFaults::at_attempts(entries)),
            monitor: (deaths > 0).then(|| MonitorPanics::at_batches(batches)),
        }
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.retrain.is_none() && self.monitor.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retrain_schedule_fires_exactly_at_its_indices() {
        let faults = RetrainFaults::at_attempts(vec![(3, FaultKind::Panic), (1, FaultKind::Error)]);
        let observed: Vec<Option<FaultKind>> = (0..5).map(|_| faults.on_attempt()).collect();
        assert_eq!(
            observed,
            vec![
                None,
                Some(FaultKind::Error),
                None,
                Some(FaultKind::Panic),
                None
            ]
        );
        assert_eq!(faults.attempts_seen(), 5);
        assert_eq!(faults.injected(), 2);
    }

    #[test]
    fn clones_share_the_attempt_counter() {
        let faults = RetrainFaults::fail_first(1, FaultKind::Error);
        let twin = faults.clone();
        assert_eq!(faults.on_attempt(), Some(FaultKind::Error));
        // The clone sees attempt 1, already past the scheduled fault.
        assert_eq!(twin.on_attempt(), None);
        assert_eq!(faults.attempts_seen(), 2);
    }

    #[test]
    fn monitor_panics_fire_once_per_scheduled_point() {
        let panics = MonitorPanics::at_batches(vec![2, 4]);
        let clone = panics.clone();
        assert!(!panics.on_batch()); // batch 1
        assert!(panics.on_batch()); // batch 2: die
                                    // The respawned clone continues the shared count — no re-fire at 2.
        assert!(!clone.on_batch()); // batch 3
        assert!(clone.on_batch()); // batch 4: die again
        assert!(!clone.on_batch()); // batch 5: schedule exhausted
        assert_eq!(panics.fired(), 2);
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = FaultPlan::seeded(seed);
            let b = FaultPlan::seeded(seed);
            assert_eq!(
                a.retrain.as_ref().map(RetrainFaults::scheduled),
                b.retrain.as_ref().map(RetrainFaults::scheduled)
            );
            assert_eq!(
                a.monitor.as_ref().map(MonitorPanics::scheduled),
                b.monitor.as_ref().map(MonitorPanics::scheduled)
            );
        }
    }
}
