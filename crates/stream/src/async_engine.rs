//! Asynchronous ingestion: score now, monitor in the background.
//!
//! The paper's non-invasive premise is that fairness repair must not slow
//! down serving. The synchronous [`StreamEngine`]
//! couples the two anyway: every `ingest` call pays for window updates,
//! Page–Hinkley steps, and — on alert — a full ConFair retrain before a
//! single decision is returned. [`AsyncEngine`] runs the same two halves
//! ([`Scorer`] / [`Monitor`]) as a
//! pipeline instead:
//!
//! 1. **Score path** (caller's thread): validate, take any pending model
//!    swap, run the forward pass, enqueue the `(tuples, decisions)` record
//!    on a bounded queue, return the decisions. No monitoring work, no
//!    locks around the model parameters — the scorer owns its predictor
//!    outright and replacement models arrive through an atomically-swapped
//!    single-slot mailbox (arc-swap-style; see `ModelSlot` in the source).
//! 2. **Monitor thread** (single consumer): drains the queue in order,
//!    folds each record into the window/detectors, appends alerts, runs
//!    on-alert retrains, and publishes refreshed state — fairness
//!    snapshots and counters under a stats mutex (observability path, not
//!    the score path), replacement predictors through the model slot.
//!
//! Because the monitor consumes records in exactly the order they were
//! scored, the async engine is *deterministic given a quiescent point*:
//! after [`AsyncEngine::flush`], its decisions, snapshots, alert log, and
//! checkpoints are byte-identical to a synchronous engine fed the same
//! batches (property-pinned by `tests/async_equivalence.rs`).
//!
//! Backpressure is explicit ([`BackpressurePolicy`]): `Block` bounds
//! memory by stalling the producer when the monitor falls more than
//! `queue_depth` batches behind; `DropOldest` keeps the score path
//! wait-free by discarding the oldest *unprocessed* record and counting
//! what was lost ([`AsyncEngine::dropped`]) — the monitor's windowed view
//! degrades to a sample, the serving path never stalls, and the drop
//! counters tell operators which trade they are living with.

use crate::engine::{
    checkpoint_from_parts, validate_tuple, LabelFeedback, StreamConfig, StreamEngine, StreamTuple,
};
use crate::monitor::{FairnessSnapshot, Monitor};
use crate::repair::{RepairTier, RepairUpdate};
use crate::scorer::Scorer;
use crate::supervise::{Backoff, ShardHealth, SupervisorConfig};
use crate::telemetry::StreamMetrics;
use crate::window::{GroupCounts, JoinStats};
use crate::{DriftAlert, EngineCheckpoint, Result, StreamError};
use cf_data::Dataset;
use cf_learners::LearnerKind;
use cf_telemetry::{DropEvent, MetricsRegistry, MonitorRestartEvent, SharedSink, TelemetryEvent};
use confair_core::Predictor;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// What the score path does when the monitor queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Stall `ingest` until the monitor frees a slot. Nothing is ever
    /// dropped: the monitor sees every tuple, and a long retrain
    /// back-pressures the producer once the queue has absorbed
    /// `queue_depth` batches. This is the deterministic default.
    Block,
    /// Discard the **oldest** unprocessed record to make room, count it in
    /// [`AsyncEngine::dropped`], and enqueue the new record without
    /// waiting. The score path becomes wait-free, at the price of a
    /// monitoring view that degrades to a (newest-biased) sample under
    /// sustained overload.
    DropOldest,
}

/// Configuration of the asynchronous pipeline between the two halves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsyncConfig {
    /// Maximum `(tuples, decisions)` records the queue holds before the
    /// backpressure policy applies. Control messages (flush barriers,
    /// checkpoint requests, shutdown) never count against the depth and
    /// are never dropped.
    pub queue_depth: usize,
    /// What to do when the queue is full.
    pub backpressure: BackpressurePolicy,
    /// Monitor-thread supervision: restart budget, respawn backoff, and
    /// how often the recovery clone is refreshed.
    pub supervisor: SupervisorConfig,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            queue_depth: 32,
            backpressure: BackpressurePolicy::Block,
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// Tuples and batches discarded under [`BackpressurePolicy::DropOldest`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropCounters {
    /// Whole records (micro-batches) discarded.
    pub batches: u64,
    /// Tuples those records carried.
    pub tuples: u64,
}

/// Human-readable one-liner, e.g. `dropped batches=2 tuples=503`.
impl std::fmt::Display for DropCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dropped batches={} tuples={}", self.batches, self.tuples)
    }
}

/// What flows from the score path to the monitor thread.
enum MonitorMsg {
    /// One served micro-batch, in scoring order. `first_id` is the
    /// scorer-assigned id of the first tuple: ids travel with the record
    /// so a dropped record leaves a gap in the monitor's id space instead
    /// of shifting every later feedback join.
    Record {
        first_id: u64,
        tuples: Vec<StreamTuple>,
        decisions: Vec<u8>,
    },
    /// Late ground truth for already-served tuples — a control-plane
    /// record: it bypasses the queue bound and is never dropped under
    /// [`BackpressurePolicy::DropOldest`] (labels are scarcer and more
    /// precious than monitoring samples), but it stays in FIFO order so a
    /// join can never overtake the record that carries its tuple.
    Feedback(Vec<LabelFeedback>),
    /// Barrier: acknowledged only after every record enqueued before it
    /// has been fully processed (including any retrain it triggered).
    Flush(mpsc::Sender<()>),
    /// Quiescent-point state request: answered with a coherent clone of
    /// the monitor half.
    Checkpoint(mpsc::Sender<Box<Monitor>>),
    /// Install (`Some`) or remove (`None`) the monitor's telemetry sink —
    /// a control-plane record so the change lands in FIFO order with the
    /// records around it.
    SetSink(Option<SharedSink>),
    /// Install metrics handles on the monitor half.
    SetMetrics(StreamMetrics),
    /// Stop consuming and hand the monitor half back through the thread's
    /// join value.
    Shutdown,
}

/// The bounded queue between the score path and the monitor thread.
///
/// Only `Record` messages count against `depth`; control messages bypass
/// the bound so a full queue can never deadlock a flush or shutdown.
///
/// Record pushes deliberately do **not** signal the consumer: on a busy
/// single core, a wakeup per batch preempts the score path with a context
/// switch it just paid to avoid. Instead the monitor polls on a short
/// timed wait ([`POLL_INTERVAL`]) and drains everything queued per wake —
/// bounded extra lag, amortised switches. Control messages (flush,
/// checkpoint, shutdown) and `not_full` transitions signal immediately,
/// because somebody is provably waiting on them.
struct BoundedQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    depth: usize,
    /// Set (with both condvars signalled) when the consumer exits for any
    /// reason — clean shutdown or a panic unwinding the monitor thread —
    /// so producers blocked on backpressure or waiting on a flush ack can
    /// fail with a typed error instead of hanging on a queue nobody will
    /// ever drain.
    closed: std::sync::atomic::AtomicBool,
}

/// How long the idle monitor sleeps between queue polls — the upper bound
/// a record can sit unprocessed before the consumer self-wakes (on top of
/// processing time). Small enough to be irrelevant next to the window
/// dynamics being monitored, large enough to keep the idle engine silent.
const POLL_INTERVAL: std::time::Duration = std::time::Duration::from_millis(1);

struct QueueInner {
    messages: VecDeque<MonitorMsg>,
    /// `Record` entries currently queued (≤ `depth` after every push).
    records: usize,
    dropped: DropCounters,
}

impl BoundedQueue {
    fn new(depth: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                messages: VecDeque::new(),
                records: 0,
                dropped: DropCounters::default(),
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            depth,
            closed: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Whether the consumer is gone (see the `closed` field).
    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Mark the consumer gone and wake every waiter on both condvars.
    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Reopen after a replacement consumer is about to take over.
    /// Everything still queued — records the dead consumer never reached
    /// and control messages alike — is retained for the new consumer to
    /// drain in the original FIFO order.
    fn reopen(&self) {
        self.closed.store(false, Ordering::Release);
    }

    /// Tuples currently sitting in queued records (the supervisor's gap
    /// arithmetic: queued tuples are *not* lost, they will be monitored
    /// by the respawned consumer).
    fn queued_tuple_count(&self) -> u64 {
        let inner = self.inner.lock().expect("queue mutex poisoned");
        inner
            .messages
            .iter()
            .map(|m| match m {
                MonitorMsg::Record { tuples, .. } => tuples.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Enqueue one record under the configured backpressure policy.
    ///
    /// # Errors
    /// [`StreamError::Async`] when the consumer is gone — including while
    /// blocked on a full queue under [`BackpressurePolicy::Block`], so a
    /// monitor-thread panic can never wedge the serving path.
    fn push_record(
        &self,
        first_id: u64,
        tuples: Vec<StreamTuple>,
        decisions: Vec<u8>,
        policy: BackpressurePolicy,
    ) -> Result<()> {
        let dead = || StreamError::Async("the monitor thread is no longer running".into());
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        match policy {
            BackpressurePolicy::Block => {
                while inner.records >= self.depth {
                    if self.is_closed() {
                        return Err(dead());
                    }
                    inner = self
                        .not_full
                        .wait_timeout(inner, POLL_INTERVAL)
                        .expect("queue mutex poisoned")
                        .0;
                }
            }
            BackpressurePolicy::DropOldest => {
                while inner.records >= self.depth {
                    // Drop the oldest *record*; control messages ahead of
                    // it (flush barriers already enqueued) are preserved.
                    let oldest = inner
                        .messages
                        .iter()
                        .position(|m| matches!(m, MonitorMsg::Record { .. }))
                        .expect("records > 0 implies a Record in the queue");
                    if let Some(MonitorMsg::Record { tuples, .. }) = inner.messages.remove(oldest) {
                        inner.records -= 1;
                        inner.dropped.batches += 1;
                        inner.dropped.tuples += tuples.len() as u64;
                    }
                }
            }
        }
        if self.is_closed() {
            return Err(dead());
        }
        inner.records += 1;
        inner.messages.push_back(MonitorMsg::Record {
            first_id,
            tuples,
            decisions,
        });
        // No notify: the consumer self-wakes within POLL_INTERVAL (see the
        // queue's type-level comment).
        Ok(())
    }

    /// Enqueue a control message (never bounded, never dropped).
    fn push_control(&self, msg: MonitorMsg) {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        inner.messages.push_back(msg);
        drop(inner);
        self.not_empty.notify_one();
    }

    /// Blocking pop, in FIFO order (monitor thread only). Waits on a timed
    /// poll so record pushes never have to signal.
    fn pop(&self) -> MonitorMsg {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        loop {
            if let Some(msg) = inner.messages.pop_front() {
                if matches!(msg, MonitorMsg::Record { .. }) {
                    inner.records -= 1;
                    self.not_full.notify_one();
                }
                return msg;
            }
            inner = self
                .not_empty
                .wait_timeout(inner, POLL_INTERVAL)
                .expect("queue mutex poisoned")
                .0;
        }
    }

    fn dropped(&self) -> DropCounters {
        self.inner.lock().expect("queue mutex poisoned").dropped
    }

    /// Records currently waiting (the monitor's backlog, in batches).
    fn backlog(&self) -> usize {
        self.inner.lock().expect("queue mutex poisoned").records
    }
}

/// Arc-swap-style single-slot mailbox for replacement predictors: the
/// monitor thread publishes with one atomic swap, the score path takes
/// with one atomic swap — no locks on either side, and an unconsumed
/// older model is simply superseded (latest wins).
struct ModelSlot {
    /// Owning pointer to a heap-allocated `Box<dyn Predictor>` (double
    /// boxed so the atomic cell is a thin pointer), or null when empty.
    ptr: AtomicPtr<Box<dyn Predictor>>,
}

impl ModelSlot {
    fn empty() -> Self {
        ModelSlot {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Publish a replacement model, dropping any unconsumed predecessor.
    fn publish(&self, model: Box<dyn Predictor>) {
        let raw = Box::into_raw(Box::new(model));
        let old = self.ptr.swap(raw, Ordering::AcqRel);
        if !old.is_null() {
            // SAFETY: `old` came from `Box::into_raw` in a previous
            // `publish` and the swap above made this thread its only
            // owner.
            drop(unsafe { Box::from_raw(old) });
        }
    }

    /// Take the pending model, if any (score path; wait-free).
    fn take(&self) -> Option<Box<dyn Predictor>> {
        let raw = self.ptr.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if raw.is_null() {
            None
        } else {
            // SAFETY: `raw` came from `Box::into_raw` in `publish` and the
            // swap above made this thread its only owner.
            Some(*unsafe { Box::from_raw(raw) })
        }
    }
}

impl Drop for ModelSlot {
    fn drop(&mut self) {
        let raw = *self.ptr.get_mut();
        if !raw.is_null() {
            // SAFETY: exclusive access in `drop`; the pointer was produced
            // by `Box::into_raw` and never freed (it is still in the slot).
            drop(unsafe { Box::from_raw(raw) });
        }
    }
}

/// The same latest-wins mailbox, for repair-ladder publications. Safe to
/// collapse intermediate updates because a [`RepairUpdate`] carries
/// *absolute* state (full threshold vector, full projection profiles),
/// never deltas.
struct RepairSlot {
    ptr: AtomicPtr<RepairUpdate>,
}

impl RepairSlot {
    fn empty() -> Self {
        RepairSlot {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Publish a repair-state update, dropping any unconsumed predecessor.
    fn publish(&self, update: RepairUpdate) {
        let raw = Box::into_raw(Box::new(update));
        let old = self.ptr.swap(raw, Ordering::AcqRel);
        if !old.is_null() {
            // SAFETY: `old` came from `Box::into_raw` in a previous
            // `publish` and the swap above made this thread its only
            // owner.
            drop(unsafe { Box::from_raw(old) });
        }
    }

    /// Take the pending update, if any (score path; wait-free).
    fn take(&self) -> Option<RepairUpdate> {
        let raw = self.ptr.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if raw.is_null() {
            None
        } else {
            // SAFETY: `raw` came from `Box::into_raw` in `publish` and the
            // swap above made this thread its only owner.
            Some(*unsafe { Box::from_raw(raw) })
        }
    }
}

impl Drop for RepairSlot {
    fn drop(&mut self) {
        let raw = *self.ptr.get_mut();
        if !raw.is_null() {
            // SAFETY: exclusive access in `drop`; the pointer was produced
            // by `Box::into_raw` and never freed (it is still in the slot).
            drop(unsafe { Box::from_raw(raw) });
        }
    }
}

/// The monitor thread's published view, refreshed after every processed
/// record. Read under a short mutex by the observability accessors — never
/// by the score path.
struct PublishedState {
    snapshot: FairnessSnapshot,
    counts: Vec<GroupCounts>,
    window_len: usize,
    seen: u64,
    retrains: u64,
    /// A second copy of the monitor's alert log, so `alerts()` never has
    /// to round-trip to the monitor thread. Alert volume is bounded by
    /// the detectors' cooldown hysteresis (at most one alert per group
    /// per `cooldown`/`floor_cooldown` tuples), so the duplication stays
    /// small relative to the traffic that produced it.
    alerts: Vec<DriftAlert>,
    /// The most recent failed repair episodes, oldest first — a bounded
    /// ring ([`RETRAIN_ERROR_CAP`]) so a persistently failing retrain
    /// cannot grow memory without bound; `retrain_failures` keeps the
    /// cumulative count.
    retrain_errors: VecDeque<StreamError>,
    /// Failed repair *episodes* ever, including those whose errors have
    /// rotated out of the ring.
    retrain_failures: u64,
    monitor_error: Option<StreamError>,
    /// Label-plane observability: cumulative join counters and the
    /// pending-join backlog, refreshed with every record and feedback
    /// message the monitor processes.
    joins: JoinStats,
    pending_labels: usize,
    /// The rung of the open repair-ladder episode per the monitor's latest
    /// published state (`None` while the ladder is idle or disabled).
    repair_tier: Option<RepairTier>,
}

/// Most recent retrain errors retained in the published ring.
const RETRAIN_ERROR_CAP: usize = 32;

impl PublishedState {
    /// Reset the monitoring view to a recovery clone's state (the dead
    /// incarnation's unpublished progress is part of the gap). Cumulative
    /// operational history — retrain errors/failures, the monitor-error
    /// diagnostic — is deliberately kept: those events really happened.
    fn reset_from(&mut self, monitor: &Monitor) {
        self.snapshot = monitor.snapshot();
        self.counts = monitor.window_counts().to_vec();
        self.window_len = monitor.window_len();
        self.seen = monitor.tuples_seen();
        self.retrains = monitor.retrain_count();
        self.alerts = monitor.alerts().to_vec();
        self.joins = monitor.join_stats();
        self.pending_labels = monitor.pending_labels();
        self.repair_tier = monitor.repair_tier();
    }
}

/// The supervisor's view of the monitor thread, updated by both sides:
/// the monitor thread refreshes the recovery clone, the serving side
/// (which owns the join handle) detects deaths and respawns.
struct Supervision {
    /// A coherent clone of the monitor half, seeded before the first
    /// spawn and refreshed by the monitor thread every
    /// [`SupervisorConfig::clone_interval`] records — what a respawn
    /// resumes from.
    recovery: Option<Box<Monitor>>,
    /// Times a dead monitor thread has been respawned.
    restarts: u64,
    /// When the pending respawn is allowed to happen (`Some` while
    /// health is [`ShardHealth::Restarting`]).
    next_restart_at: Option<std::time::Instant>,
    /// Seeded-jitter respawn backoff, shared across this engine's whole
    /// restart budget (it resets only with the engine).
    backoff: Backoff,
    health: ShardHealth,
    /// Cumulative tuples scored but never monitored because they fell
    /// into a monitor-death gap (lost with a dead incarnation's
    /// un-cloned progress, or served unmonitored during restart backoff).
    gap_tuples: u64,
}

/// Everything the two sides share.
struct Shared {
    queue: BoundedQueue,
    model: ModelSlot,
    repair: RepairSlot,
    stats: Mutex<PublishedState>,
    sup: Mutex<Supervision>,
    /// Records between recovery-clone refreshes on the monitor thread.
    clone_every: u32,
    /// The last drop counters acknowledged by a drop event on the trail.
    /// Lives here — not on the monitor thread's stack — so the baseline
    /// survives a respawn (no re-emission of already-reported drops) and
    /// starts at zero from engine construction (drops racing ahead of a
    /// freshly spawned thread's first poll are still diffed and emitted).
    dropped_reported: Mutex<DropCounters>,
}

/// The asynchronous serving engine: `ingest` returns decisions straight
/// off the forward pass while a background thread owns the
/// [`Monitor`] half and performs the window, detector, and
/// retrain work behind a bounded queue.
///
/// # Example
///
/// ```
/// use cf_datasets::stream::{DriftStream, DriftStreamSpec};
/// use cf_learners::LearnerKind;
/// use cf_stream::{AsyncConfig, AsyncEngine, StreamConfig, StreamTuple};
/// use confair_core::confair::{AlphaMode, ConFairConfig};
///
/// let spec = DriftStreamSpec::default();
/// let reference = spec.reference(600, 7);
/// let config = StreamConfig {
///     window: 256,
///     confair: ConFairConfig {
///         alpha: AlphaMode::Fixed { alpha_u: 2.0, alpha_w: 1.0 },
///         ..ConFairConfig::default()
///     },
///     ..StreamConfig::default()
/// };
/// let mut engine = AsyncEngine::from_reference(
///     &reference, LearnerKind::Logistic, 7, config, AsyncConfig::default())?;
///
/// let mut stream = DriftStream::new(spec, 1);
/// let batch = StreamTuple::rows_from_dataset(&stream.next_batch(100))?;
/// // Decisions come back without waiting for any monitoring work…
/// let decisions = engine.ingest(&batch)?;
/// assert_eq!(decisions.len(), 100);
/// // …and `flush` is the barrier that makes the monitor's view current.
/// engine.flush()?;
/// assert_eq!(engine.tuples_monitored(), 100);
/// println!("{}", engine.snapshot());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct AsyncEngine {
    /// `Some` until the engine is consumed by [`AsyncEngine::into_engine`]
    /// (the `Option` lets that method move the scorer out from under the
    /// `Drop` impl).
    scorer: Option<Scorer>,
    shared: Arc<Shared>,
    handle: Option<JoinHandle<Monitor>>,
    async_config: AsyncConfig,
    stream_config: StreamConfig,
    scored: u64,
    /// Serving-side metrics handles (latency histogram, backlog/lag/drop
    /// gauges); the monitor thread holds its own clone for its half.
    metrics: Option<StreamMetrics>,
}

impl AsyncEngine {
    /// Bootstrap an async engine from reference data — a
    /// [`StreamEngine::from_reference`] whose halves are then split across
    /// the queue.
    pub fn from_reference(
        reference: &Dataset,
        learner: LearnerKind,
        seed: u64,
        config: StreamConfig,
        async_config: AsyncConfig,
    ) -> Result<Self> {
        Ok(Self::from_engine(
            StreamEngine::from_reference(reference, learner, seed, config)?,
            async_config,
        ))
    }

    /// Split a synchronous engine into the async pipeline: the scorer
    /// stays with the caller, the monitor moves to a background thread.
    /// The engine's observable state (window, alerts, clocks) carries over
    /// exactly: `tuples_scored` starts at the engine's ingested-tuple
    /// clock (everything previously ingested was both scored and
    /// monitored), so `monitor_lag` reads 0 until new batches arrive.
    pub fn from_engine(engine: StreamEngine, async_config: AsyncConfig) -> Self {
        // Clamp once, up front, so the stored config (what `async_config()`
        // reports) always matches the bound the queue actually enforces.
        let async_config = AsyncConfig {
            queue_depth: async_config.queue_depth.max(1),
            ..async_config
        };
        let (scorer, monitor) = engine.into_parts();
        let metrics = monitor.metrics.clone();
        let stream_config = monitor.config().clone();
        // The scorer inherits the engine's id clock (not `tuples_seen`:
        // an engine that dropped records under earlier backpressure has
        // issued more ids than it monitored).
        let scored = monitor.ids_issued();
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(async_config.queue_depth),
            model: ModelSlot::empty(),
            repair: RepairSlot::empty(),
            stats: Mutex::new(PublishedState {
                snapshot: monitor.snapshot(),
                counts: monitor.window_counts().to_vec(),
                window_len: monitor.window_len(),
                seen: monitor.tuples_seen(),
                retrains: monitor.retrain_count(),
                alerts: monitor.alerts().to_vec(),
                retrain_errors: VecDeque::new(),
                retrain_failures: 0,
                monitor_error: None,
                joins: monitor.join_stats(),
                pending_labels: monitor.pending_labels(),
                repair_tier: monitor.repair_tier(),
            }),
            sup: Mutex::new(Supervision {
                // Seed the recovery clone *before* the first spawn, so a
                // monitor that dies on its very first record is still
                // recoverable.
                recovery: Some(Box::new(monitor.clone())),
                restarts: 0,
                next_restart_at: None,
                backoff: async_config.supervisor.backoff(),
                health: ShardHealth::Live,
                gap_tuples: 0,
            }),
            clone_every: async_config.supervisor.clone_interval(),
            dropped_reported: Mutex::new(DropCounters::default()),
        });
        let handle = spawn_monitor(monitor, &shared);
        AsyncEngine {
            scorer: Some(scorer),
            shared,
            handle: Some(handle),
            async_config,
            stream_config,
            scored,
            metrics,
        }
    }

    /// Rebuild an async engine from a checkpoint (same format and
    /// validation as [`StreamEngine::restore`]; checkpoints do not record
    /// the queue because [`AsyncEngine::checkpoint`] drains it first).
    ///
    /// `tuples_scored` restarts at the monitor's restored clock, so the
    /// scored/monitored lag reads 0 on a fresh restore — exactly the
    /// quiescent state the checkpoint captured.
    pub fn restore(ckpt: EngineCheckpoint, async_config: AsyncConfig) -> Result<Self> {
        Ok(Self::from_engine(
            StreamEngine::restore(ckpt)?,
            async_config,
        ))
    }

    /// [`AsyncEngine::restore`] with a telemetry sink installed before the
    /// monitor thread starts, so the trail opens with the `"restored"`
    /// checkpoint event that re-anchors a replay mid-trail.
    pub fn restore_with_sink(
        ckpt: EngineCheckpoint,
        sink: SharedSink,
        async_config: AsyncConfig,
    ) -> Result<Self> {
        Ok(Self::from_engine(
            StreamEngine::restore_with_sink(ckpt, sink)?,
            async_config,
        ))
    }

    /// Install a telemetry sink on the background monitor. The change
    /// travels the queue as a control message, so it takes effect in FIFO
    /// order: records already enqueued are emitted (or not) under the sink
    /// that was installed when they were scored.
    ///
    /// # Errors
    /// [`StreamError::Async`] when the monitor thread is gone.
    pub fn set_sink(&mut self, sink: SharedSink) -> Result<()> {
        self.supervise(false)?;
        self.shared
            .queue
            .push_control(MonitorMsg::SetSink(Some(sink)));
        Ok(())
    }

    /// Remove the monitor's telemetry sink (FIFO-ordered, like
    /// [`AsyncEngine::set_sink`]).
    ///
    /// # Errors
    /// [`StreamError::Async`] when the monitor thread is gone.
    pub fn clear_sink(&mut self) -> Result<()> {
        self.supervise(false)?;
        self.shared.queue.push_control(MonitorMsg::SetSink(None));
        Ok(())
    }

    /// Register this engine's instruments on `registry` and start keeping
    /// them fresh: the serving half updates the ingest-latency histogram
    /// and the backlog/lag/drop gauges, the monitor thread the
    /// alert/retrain/join instruments.
    ///
    /// # Errors
    /// [`StreamError::Async`] when the monitor thread is gone.
    pub fn install_metrics(&mut self, registry: &MetricsRegistry) -> Result<()> {
        self.set_metrics(StreamMetrics::register(registry))
    }

    /// Install pre-registered metrics handles (the sharded router's path,
    /// where each shard's instruments carry a `shard` label).
    ///
    /// # Errors
    /// [`StreamError::Async`] when the monitor thread is gone.
    pub fn set_metrics(&mut self, metrics: StreamMetrics) -> Result<()> {
        self.supervise(false)?;
        self.shared
            .queue
            .push_control(MonitorMsg::SetMetrics(metrics.clone()));
        self.metrics = Some(metrics);
        self.refresh_serving_metrics();
        Ok(())
    }

    /// The metrics handles installed on this engine, if any.
    pub fn metrics(&self) -> Option<&StreamMetrics> {
        self.metrics.as_ref()
    }

    /// Refresh the serving-side gauges (queue backlog, monitor lag, drop
    /// counters).
    fn refresh_serving_metrics(&self) {
        if let Some(m) = &self.metrics {
            m.queue_backlog.set_u64(self.shared.queue.backlog() as u64);
            m.monitor_lag.set_u64(self.monitor_lag());
            let dropped = self.dropped();
            m.dropped_batches.set_u64(dropped.batches);
            m.dropped_tuples.set_u64(dropped.tuples);
        }
    }

    /// Score one micro-batch and return its decisions immediately; the
    /// monitoring work (window, detectors, floor check, on-alert retrain)
    /// happens on the background thread after this call returns.
    ///
    /// The batch is copied once onto the queue; use
    /// [`AsyncEngine::ingest_owned`] to hand the tuples over without the
    /// copy.
    ///
    /// # Errors
    /// Validation errors reject the whole batch before anything is scored
    /// or enqueued, exactly as in the sync engine;
    /// [`StreamError::Async`] only once the monitor thread has died
    /// *and* the supervisor's restart budget is exhausted
    /// ([`ShardHealth::Dead`]). While restarts remain, a monitor death
    /// never fails `ingest`: decisions keep flowing, and tuples served
    /// during the restart window are accounted as a monitoring gap
    /// ([`AsyncEngine::monitor_gap_tuples`]).
    pub fn ingest(&mut self, batch: &[StreamTuple]) -> Result<Vec<u8>> {
        let d = self.scorer().schema().len();
        let groups = self.stream_config.groups;
        for (i, t) in batch.iter().enumerate() {
            validate_tuple(t, d, i, groups)?;
        }
        self.ingest_prevalidated_owned(batch.to_vec())
    }

    /// [`AsyncEngine::ingest`] without the queue-bound copy: the batch is
    /// moved onto the queue after scoring.
    pub fn ingest_owned(&mut self, batch: Vec<StreamTuple>) -> Result<Vec<u8>> {
        let d = self.scorer().schema().len();
        let groups = self.stream_config.groups;
        for (i, t) in batch.iter().enumerate() {
            validate_tuple(t, d, i, groups)?;
        }
        self.ingest_prevalidated_owned(batch)
    }

    /// Score + enqueue after validation (shared with the sharded router,
    /// which validates whole mixed batches itself).
    pub(crate) fn ingest_prevalidated_owned(&mut self, batch: Vec<StreamTuple>) -> Result<Vec<u8>> {
        self.supervise(false)?;
        let started = self.metrics.as_ref().map(|_| std::time::Instant::now());
        // Pick up a pending retrain before scoring: one wait-free atomic
        // swap, no lock around the model parameters. Repair-ladder
        // publications (threshold nudges, projection installs) arrive the
        // same way.
        if let Some(model) = self.shared.model.take() {
            self.scorer_mut().install(model);
        }
        if let Some(update) = self.shared.repair.take() {
            self.scorer_mut().apply_repair(update);
        }
        let decisions = self.scorer_mut().score(&batch)?;
        if batch.is_empty() {
            // Nothing to monitor; the sync engine's empty ingest is a
            // no-op on state too.
            return Ok(decisions);
        }
        let n = batch.len() as u64;
        if self.health() == ShardHealth::Restarting {
            // The monitor is between incarnations: serve unmonitored
            // rather than block or fail. These tuples burn ids but never
            // reach a queue, so the gap arithmetic at respawn counts
            // them automatically.
            self.scored += n;
            self.refresh_serving_metrics();
            return Ok(decisions);
        }
        if let Err(push_err) = self.shared.queue.push_record(
            self.scored,
            batch,
            decisions.clone(),
            self.async_config.backpressure,
        ) {
            // The consumer died between the liveness check and the push.
            // The batch was served either way, so burn its ids *first* —
            // the tuples never reached a queue, which makes them gap
            // tuples at the respawn the supervisor now schedules (or
            // performs). Only a dead budget surfaces as an error.
            self.scored += n;
            self.supervise(false).map_err(|_| push_err)?;
            self.refresh_serving_metrics();
            return Ok(decisions);
        }
        self.scored += n;
        if let (Some(m), Some(started)) = (&self.metrics, started) {
            m.ingest_latency_us
                .observe(started.elapsed().as_micros() as f64);
            m.ingest_batches.inc();
            m.ingest_tuples.add(n);
        }
        self.refresh_serving_metrics();
        Ok(decisions)
    }

    /// Join late ground truth into the label plane: the records are
    /// enqueued as a control-plane message behind everything already
    /// scored (FIFO, never dropped, exempt from the queue bound) and the
    /// background monitor applies them in order. Observable after a
    /// [`AsyncEngine::flush`] via [`AsyncEngine::join_stats`],
    /// [`AsyncEngine::snapshot`], and the label-plane counters.
    ///
    /// Tuple `k` of an `ingest` batch has id `tuples_scored()-before + k`;
    /// ids of records dropped under [`BackpressurePolicy::DropOldest`]
    /// were never monitored, so their feedback counts as unmatched rather
    /// than erroring.
    ///
    /// # Errors
    /// [`StreamError::BadLabel`] for a non-binary label,
    /// [`StreamError::FutureFeedback`] for an id not scored yet (both
    /// validated here, synchronously, before anything is enqueued);
    /// [`StreamError::Async`] when the monitor thread is gone.
    pub fn feedback(&mut self, feedback: &[LabelFeedback]) -> Result<()> {
        self.supervise(false)?;
        for record in feedback {
            if record.label >= 2 {
                return Err(StreamError::BadLabel(record.label));
            }
            if record.id >= self.scored {
                return Err(StreamError::FutureFeedback {
                    id: record.id,
                    issued: self.scored,
                });
            }
        }
        if feedback.is_empty() {
            return Ok(());
        }
        self.shared
            .queue
            .push_control(MonitorMsg::Feedback(feedback.to_vec()));
        Ok(())
    }

    /// Barrier: block until every record enqueued so far has been fully
    /// processed (including any retrain it triggered), then install any
    /// model the monitor published. After `flush`, the engine's
    /// observable state is byte-identical to a synchronous engine fed the
    /// same batches.
    ///
    /// # Errors
    /// [`StreamError::Async`] only once the restart budget is exhausted:
    /// a monitor death mid-flush is respawned (immediately — a barrier
    /// wants quiescence, not backoff pacing) and the flush retried, each
    /// death charging the same bounded budget.
    pub fn flush(&mut self) -> Result<()> {
        loop {
            self.supervise(true)?;
            let (ack_tx, ack_rx) = mpsc::channel();
            self.shared.queue.push_control(MonitorMsg::Flush(ack_tx));
            // A dead consumer leaves the un-acked barrier in the queue;
            // the respawned one (next iteration) acks it into a dropped
            // receiver, which is harmless.
            if self.recv_from_monitor(&ack_rx, "flush").is_ok() {
                break;
            }
        }
        if let Some(model) = self.shared.model.take() {
            self.scorer_mut().install(model);
        }
        if let Some(update) = self.shared.repair.take() {
            self.scorer_mut().apply_repair(update);
        }
        self.refresh_serving_metrics();
        Ok(())
    }

    /// Wait for the monitor thread's reply to a control message, bailing
    /// out with a typed error if the thread dies first. A plain `recv()`
    /// would hang: the un-acked sender sits *inside* the engine-held
    /// queue, so it is never dropped when the consumer is gone.
    fn recv_from_monitor<T>(&self, rx: &mpsc::Receiver<T>, during: &str) -> Result<T> {
        let dead = || StreamError::Async(format!("monitor thread terminated during {during}"));
        loop {
            match rx.recv_timeout(POLL_INTERVAL) {
                Ok(value) => return Ok(value),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if self.shared.queue.is_closed() {
                        return Err(dead());
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return Err(dead()),
            }
        }
    }

    /// Drain to a quiescent point and capture the complete engine state as
    /// a versioned [`EngineCheckpoint`] — the same document
    /// [`StreamEngine::checkpoint`] writes, so sync and async engines
    /// restore each other's checkpoints interchangeably.
    ///
    /// The flush-first contract is what keeps restores bit-identical: no
    /// record is in flight when the monitor clone is taken, so the
    /// document never captures a window the scorer is ahead of.
    ///
    /// # Errors
    /// [`StreamError::Async`] when the monitor thread is gone;
    /// [`StreamError::Checkpoint`] when the predictor does not support
    /// serialisation.
    pub fn checkpoint(&mut self) -> Result<EngineCheckpoint> {
        let monitor = loop {
            self.flush()?;
            let (tx, rx) = mpsc::channel();
            self.shared.queue.push_control(MonitorMsg::Checkpoint(tx));
            // A death between the flush ack and the state reply re-runs
            // both (each death bounded by the restart budget).
            if let Ok(monitor) = self.recv_from_monitor(&rx, "checkpoint") {
                break monitor;
            }
        };
        // The clone shares the live monitor's sink (it is an `Arc`), so
        // the `"taken"` marker lands on the same trail — at the quiescent
        // point the flush above established.
        monitor.emit(crate::checkpoint::checkpoint_event(&monitor, "taken"));
        checkpoint_from_parts(self.scorer(), &monitor)
    }

    /// Shut the pipeline down and reunite the halves into a synchronous
    /// [`StreamEngine`] carrying the exact same state (flushes first, so
    /// nothing in flight is lost).
    ///
    /// # Errors
    /// [`StreamError::Async`] when the monitor thread is gone or panicked.
    pub fn into_engine(mut self) -> Result<StreamEngine> {
        self.flush()?;
        let handle = self
            .handle
            .take()
            .ok_or_else(|| StreamError::Async("monitor thread already shut down".into()))?;
        self.shared.queue.push_control(MonitorMsg::Shutdown);
        let monitor = handle
            .join()
            .map_err(|_| StreamError::Async("monitor thread panicked".into()))?;
        let scorer = self.scorer.take().expect("scorer present until consumed");
        StreamEngine::from_parts(scorer, monitor)
    }

    /// Tuples scored (and therefore served) by this engine.
    pub fn tuples_scored(&self) -> u64 {
        self.scored
    }

    /// Tuples the background monitor has fully processed so far.
    pub fn tuples_monitored(&self) -> u64 {
        self.stats(|s| s.seen)
    }

    /// How far the monitor lags the scorer, in tuples. 0 after a
    /// [`AsyncEngine::flush`] (tuples dropped under
    /// [`BackpressurePolicy::DropOldest`] and tuples lost to
    /// monitor-death gaps are subtracted — they will never be monitored).
    pub fn monitor_lag(&self) -> u64 {
        self.scored.saturating_sub(
            self.stats(|s| s.seen) + self.dropped().tuples + self.monitor_gap_tuples(),
        )
    }

    /// Records currently waiting in the queue (the monitor's backlog).
    pub fn queue_backlog(&self) -> usize {
        self.shared.queue.backlog()
    }

    /// Batches/tuples discarded under [`BackpressurePolicy::DropOldest`]
    /// (always zero under [`BackpressurePolicy::Block`]).
    pub fn dropped(&self) -> DropCounters {
        self.shared.queue.dropped()
    }

    /// The monitor's latest published label-join counters (current after a
    /// [`AsyncEngine::flush`]).
    pub fn join_stats(&self) -> JoinStats {
        self.stats(|s| s.joins)
    }

    /// Evicted decisions currently awaiting labels in the monitor's
    /// pending-join index, per its latest published state.
    pub fn pending_labels(&self) -> usize {
        self.stats(|s| s.pending_labels)
    }

    /// The monitor's latest published fairness reading. Lags the scorer by
    /// at most the queue backlog; current after a [`AsyncEngine::flush`].
    pub fn snapshot(&self) -> FairnessSnapshot {
        self.stats(|s| s.snapshot.clone())
    }

    /// The monitor's latest published per-cell window counters
    /// (index = group cell id).
    pub fn window_counts(&self) -> Vec<GroupCounts> {
        self.stats(|s| s.counts.clone())
    }

    /// Tuples currently retained in the monitor's window.
    pub fn window_len(&self) -> usize {
        self.stats(|s| s.window_len)
    }

    /// Every alert raised so far, in stream order (cloned out of the
    /// published state; the log itself lives with the monitor thread).
    pub fn alerts(&self) -> Vec<DriftAlert> {
        self.stats(|s| s.alerts.clone())
    }

    /// How many times the on-alert retraining hook has run.
    pub fn retrain_count(&self) -> u64 {
        self.stats(|s| s.retrains)
    }

    /// Errors from the most recent failed repair episodes, oldest first.
    /// The sync engine reports these per batch in
    /// [`IngestOutcome::retrain_error`](crate::IngestOutcome); here they
    /// accumulate because the failing batch was already served when the
    /// retrain ran — bounded to the last `RETRAIN_ERROR_CAP` (32) so a
    /// persistently failing retrain cannot grow memory without limit
    /// ([`AsyncEngine::retrain_failure_count`] keeps the total).
    pub fn retrain_errors(&self) -> Vec<StreamError> {
        self.stats(|s| s.retrain_errors.iter().cloned().collect())
    }

    /// Failed repair episodes ever, including those whose errors have
    /// rotated out of the [`AsyncEngine::retrain_errors`] ring.
    pub fn retrain_failure_count(&self) -> u64 {
        self.stats(|s| s.retrain_failures)
    }

    /// Whether the monitor's latest published state reports degraded
    /// mode (a repair episode exhausted its budget; the stale model
    /// keeps serving). Current after a [`AsyncEngine::flush`].
    pub fn is_degraded(&self) -> bool {
        self.stats(|s| s.snapshot.degraded)
    }

    /// The rung of the open repair-ladder episode per the monitor's
    /// latest published state (current after a [`AsyncEngine::flush`];
    /// `None` while the ladder is idle or disabled).
    pub fn repair_tier(&self) -> Option<RepairTier> {
        self.stats(|s| s.repair_tier)
    }

    /// The per-cell serve-time margin cutoffs the *scorer* currently
    /// applies (the serving-side truth; all zeros means the model's
    /// native boundary).
    pub fn repair_thresholds(&self) -> &[f64] {
        self.scorer().repair_thresholds()
    }

    /// Whether the tier-2 conformance projection is installed on the
    /// serving path.
    pub fn repair_projection_active(&self) -> bool {
        self.scorer().repair_projection()
    }

    /// A monitoring-side failure, if one ever occurred (record shape
    /// errors are impossible for validated input, so this is a
    /// should-never-happen diagnostic, kept visible rather than
    /// swallowed).
    pub fn monitor_error(&self) -> Option<StreamError> {
        self.stats(|s| s.monitor_error.clone())
    }

    /// The stream configuration the engine was built with.
    pub fn config(&self) -> &StreamConfig {
        &self.stream_config
    }

    /// The async pipeline configuration (queue depth, backpressure).
    pub fn async_config(&self) -> &AsyncConfig {
        &self.async_config
    }

    /// The reference schema's column names.
    pub fn schema(&self) -> &[String] {
        self.scorer().schema()
    }

    fn scorer(&self) -> &Scorer {
        self.scorer.as_ref().expect("scorer present until consumed")
    }

    fn scorer_mut(&mut self) -> &mut Scorer {
        self.scorer.as_mut().expect("scorer present until consumed")
    }

    fn stats<R>(&self, read: impl FnOnce(&PublishedState) -> R) -> R {
        read(&self.shared.stats.lock().expect("stats mutex poisoned"))
    }

    /// The supervisor: make sure a monitor thread is (or will be) running.
    ///
    /// The fast path — thread alive — is two atomic loads. On a detected
    /// death the dead handle is reaped, one restart attempt is charged
    /// against [`SupervisorConfig::max_restarts`], and the respawn is
    /// scheduled behind the seeded backoff. Until that deadline the
    /// engine keeps *serving*: health reads [`ShardHealth::Restarting`]
    /// and `ingest` skips the queue (the skipped tuples are accounted as
    /// gap at respawn). A respawn resumes from the last recovery clone,
    /// reopens the queue (retained records are drained in order), resets
    /// the published view to the clone, and emits a
    /// [`TelemetryEvent::MonitorRestart`] that re-anchors a replayed
    /// trail at the clone's absolute counters.
    ///
    /// `force` (the flush/checkpoint path) respawns immediately instead
    /// of waiting out the backoff — a barrier wants quiescence, not
    /// pacing, and the restart budget still bounds a crash loop.
    ///
    /// # Errors
    /// [`StreamError::Async`] once the budget is exhausted: health is
    /// [`ShardHealth::Dead`] and stays there.
    fn supervise(&mut self, force: bool) -> Result<()> {
        if let Some(handle) = &self.handle {
            if !handle.is_finished() && !self.shared.queue.is_closed() {
                return Ok(());
            }
        }
        let dead_err = || {
            StreamError::Async("the monitor thread died and the restart budget is exhausted".into())
        };
        // Reap the dead incarnation. Its panic payload (if any) already
        // went through the panic hook; the supervisor only needs the
        // thread gone before a replacement takes the queue.
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        let mut sup = self.shared.sup.lock().expect("supervision mutex poisoned");
        if sup.health == ShardHealth::Dead {
            return Err(dead_err());
        }
        let now = std::time::Instant::now();
        let deadline = match sup.next_restart_at {
            Some(deadline) => deadline,
            None => {
                // First detection of this death: charge one restart
                // attempt and schedule the respawn behind the backoff.
                if sup.restarts >= u64::from(self.async_config.supervisor.max_restarts) {
                    sup.health = ShardHealth::Dead;
                    return Err(dead_err());
                }
                sup.health = ShardHealth::Restarting;
                let deadline = now + sup.backoff.next_delay();
                sup.next_restart_at = Some(deadline);
                deadline
            }
        };
        if !force && now < deadline {
            // Not yet: keep serving unmonitored through the backoff
            // window. The skipped tuples are captured by the gap
            // arithmetic at respawn.
            return Ok(());
        }
        // Respawn from the recovery clone (which stays in place — if the
        // replacement dies before its first clone refresh, the next
        // respawn resumes from the same point; injected fault schedules
        // share their counters across clones, so a scheduled panic fires
        // once, not once per incarnation).
        let monitor = sup
            .recovery
            .as_ref()
            .expect("recovery clone is seeded before the first spawn")
            .clone();
        // Every id ever issued is exactly one of: monitored along the
        // surviving lineage (`clone.tuples_seen()`), dropped under
        // backpressure, still queued (the respawned monitor will drain
        // it), or gone — the gap.
        let gap = self
            .scored
            .saturating_sub(self.shared.queue.dropped().tuples)
            .saturating_sub(self.shared.queue.queued_tuple_count())
            .saturating_sub(monitor.tuples_seen());
        sup.gap_tuples += gap;
        sup.restarts += 1;
        sup.health = ShardHealth::Live;
        sup.next_restart_at = None;
        let restarts = sup.restarts;
        let gap_total = sup.gap_tuples;
        drop(sup);
        {
            let mut stats = self.shared.stats.lock().expect("stats mutex poisoned");
            stats.reset_from(&monitor);
        }
        // The restart marker lands before the respawned thread processes
        // anything (the dead consumer is reaped, so nothing else emits),
        // carrying the clone's absolute counters — the same re-anchor
        // mechanism a "restored" checkpoint event uses.
        monitor.emit(TelemetryEvent::MonitorRestart(MonitorRestartEvent {
            at_tuple: monitor.tuples_seen(),
            restarts,
            gap_tuples: gap,
            resumed_from: monitor.ids_issued(),
            counters: crate::telemetry::both_counters(monitor.window_counts()),
            di_floor: monitor.config().di_floor,
            degraded: monitor.is_degraded(),
        }));
        if let Some(m) = &self.metrics {
            m.monitor_restarts.set_u64(restarts);
            m.monitor_gap_tuples.set_u64(gap_total);
        }
        self.shared.queue.reopen();
        self.handle = Some(spawn_monitor(*monitor, &self.shared));
        Ok(())
    }

    /// This engine's monitor-thread health: [`ShardHealth::Live`] under
    /// normal operation, [`ShardHealth::Restarting`] while a respawn
    /// waits out its backoff (serving continues, unmonitored), and
    /// [`ShardHealth::Dead`] — permanently — once the restart budget is
    /// exhausted.
    pub fn health(&self) -> ShardHealth {
        self.shared
            .sup
            .lock()
            .expect("supervision mutex poisoned")
            .health
    }

    /// Times the supervisor respawned a dead monitor thread.
    pub fn monitor_restarts(&self) -> u64 {
        self.shared
            .sup
            .lock()
            .expect("supervision mutex poisoned")
            .restarts
    }

    /// Cumulative tuples scored but never monitored because they fell
    /// into a monitor-death gap. Every one of them is accounted in the
    /// audit trail by a `monitor_restart` event's `gap_tuples`.
    pub fn monitor_gap_tuples(&self) -> u64 {
        self.shared
            .sup
            .lock()
            .expect("supervision mutex poisoned")
            .gap_tuples
    }
}

impl Drop for AsyncEngine {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shared.queue.push_control(MonitorMsg::Shutdown);
            // A panicked monitor already detached; nothing to salvage in
            // `drop`.
            let _ = handle.join();
        }
    }
}

/// Spawn the background consumer for `shared`'s queue — used for the
/// first spawn and for every supervisor respawn, so both incarnations
/// behave identically (including the close-on-exit guard that lets
/// blocked producers and the supervisor detect a death).
fn spawn_monitor(monitor: Monitor, shared: &Arc<Shared>) -> JoinHandle<Monitor> {
    let thread_shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name("cf-stream-monitor".into())
        .spawn(move || {
            // Close the queue on *any* exit — clean shutdown or a
            // panic unwinding this thread — so producers blocked on
            // backpressure or a flush ack fail fast instead of
            // hanging (the guard's Drop runs during unwinding too).
            struct CloseOnExit<'a>(&'a BoundedQueue);
            impl Drop for CloseOnExit<'_> {
                fn drop(&mut self) {
                    self.0.close();
                }
            }
            let _guard = CloseOnExit(&thread_shared.queue);
            monitor_loop(monitor, &thread_shared)
        })
        .expect("spawn monitor thread")
}

/// The single-consumer monitor loop: drain records in order, publish
/// refreshed state, answer control messages, return the monitor on
/// shutdown.
fn monitor_loop(mut monitor: Monitor, shared: &Shared) -> Monitor {
    // Records evicted under `DropOldest` vanish from the queue without
    // ever reaching the monitor, so the trail learns about them here —
    // by diffing the queue's counters against `shared.dropped_reported`
    // before processing each surviving message, which places the drop
    // event at its queue-order position. The baseline lives in `Shared`
    // (not on this stack) so drops racing ahead of a freshly spawned
    // thread are still diffed, and a respawn never re-emits drops its
    // dead predecessor already reported.
    //
    // Records since the recovery clone was last refreshed; the clone is
    // the supervisor's respawn point, so the interval bounds how much
    // monitoring progress one thread death can lose.
    let mut since_clone: u32 = 0;
    loop {
        let msg = shared.queue.pop();
        let dropped_now = shared.queue.dropped();
        {
            let mut reported = shared
                .dropped_reported
                .lock()
                .expect("drop-baseline mutex poisoned");
            if dropped_now != *reported {
                monitor.emit(TelemetryEvent::Drop(DropEvent {
                    at_tuple: monitor.tuples_seen(),
                    batches: dropped_now.batches,
                    tuples: dropped_now.tuples,
                }));
                if let Some(m) = &monitor.metrics {
                    m.dropped_batches.set_u64(dropped_now.batches);
                    m.dropped_tuples.set_u64(dropped_now.tuples);
                }
                *reported = dropped_now;
            }
        }
        match msg {
            MonitorMsg::Record {
                first_id,
                tuples,
                decisions,
            } => {
                // The deterministic monitor-death seam: an installed
                // fault plan can kill this thread here, before the
                // record is folded in — the supervisor's job is to make
                // that invisible to serving.
                #[cfg(feature = "fault-injection")]
                monitor.observe_failpoint();
                match monitor.observe_with_ids(&tuples, &decisions, first_id) {
                    Ok(outcome) => {
                        if let Some(model) = outcome.model {
                            shared.model.publish(model);
                            // The swap slot is the async engine's publication
                            // point, so the swap event is emitted here — after
                            // repair_end, exactly as the sync engine orders it.
                            monitor.emit_model_swap();
                        }
                        if let Some(update) = outcome.repair {
                            shared.repair.publish(update);
                        }
                        let mut stats = shared.stats.lock().expect("stats mutex poisoned");
                        stats.snapshot = outcome.snapshot;
                        stats.counts = monitor.window_counts().to_vec();
                        stats.window_len = monitor.window_len();
                        stats.seen = monitor.tuples_seen();
                        stats.retrains = monitor.retrain_count();
                        stats.alerts.extend_from_slice(&outcome.alerts);
                        stats.joins = monitor.join_stats();
                        stats.pending_labels = monitor.pending_labels();
                        stats.repair_tier = monitor.repair_tier();
                        if let Some(e) = outcome.retrain_error {
                            if stats.retrain_errors.len() == RETRAIN_ERROR_CAP {
                                stats.retrain_errors.pop_front();
                            }
                            stats.retrain_errors.push_back(e);
                            stats.retrain_failures += 1;
                        }
                    }
                    Err(e) => {
                        let mut stats = shared.stats.lock().expect("stats mutex poisoned");
                        if stats.monitor_error.is_none() {
                            stats.monitor_error = Some(e);
                        }
                    }
                }
                since_clone += 1;
                if since_clone >= shared.clone_every {
                    since_clone = 0;
                    let clone = Box::new(monitor.clone());
                    shared
                        .sup
                        .lock()
                        .expect("supervision mutex poisoned")
                        .recovery = Some(clone);
                }
            }
            MonitorMsg::Feedback(records) => {
                // Ids in a dropped record's range resolve as unmatched
                // inside the join, so validated feedback cannot fail here
                // except through the should-never-happen diagnostic path.
                match monitor.feedback(&records) {
                    Ok(outcome) => {
                        let mut stats = shared.stats.lock().expect("stats mutex poisoned");
                        stats.snapshot = outcome.snapshot;
                        stats.counts = monitor.window_counts().to_vec();
                        stats.joins = monitor.join_stats();
                        stats.pending_labels = monitor.pending_labels();
                    }
                    Err(e) => {
                        let mut stats = shared.stats.lock().expect("stats mutex poisoned");
                        if stats.monitor_error.is_none() {
                            stats.monitor_error = Some(e);
                        }
                    }
                }
            }
            MonitorMsg::Flush(ack) => {
                // Everything enqueued before the barrier has been
                // processed (single consumer, FIFO queue) — a quiescent
                // point, so refresh the recovery clone: a later death
                // resumes from here rather than an older mid-stream
                // point. The ack's receiver may have given up — that is
                // its business.
                since_clone = 0;
                shared
                    .sup
                    .lock()
                    .expect("supervision mutex poisoned")
                    .recovery = Some(Box::new(monitor.clone()));
                let _ = ack.send(());
            }
            MonitorMsg::Checkpoint(tx) => {
                let _ = tx.send(Box::new(monitor.clone()));
            }
            MonitorMsg::SetSink(sink) => monitor.sink = sink,
            MonitorMsg::SetMetrics(metrics) => monitor.set_metrics(metrics),
            MonitorMsg::Shutdown => return monitor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The halves and the whole pipeline must be free to cross threads.
    #[test]
    fn halves_and_engine_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Scorer>();
        assert_send::<Monitor>();
        assert_send::<AsyncEngine>();
        assert_send::<MonitorMsg>();
    }

    #[test]
    fn model_slot_latest_wins_and_frees_unconsumed() {
        struct Dummy(u8);
        impl Predictor for Dummy {
            fn predict(&self, _data: &Dataset) -> confair_core::Result<Vec<u8>> {
                Ok(vec![self.0])
            }
            fn predict_rows(&self, x: &cf_linalg::Matrix) -> confair_core::Result<Vec<u8>> {
                Ok(vec![self.0; x.rows()])
            }
        }
        let slot = ModelSlot::empty();
        assert!(slot.take().is_none());
        slot.publish(Box::new(Dummy(1)));
        slot.publish(Box::new(Dummy(2)));
        let taken = slot.take().expect("a model is pending");
        let x = cf_linalg::Matrix::zeros(1, 1);
        assert_eq!(taken.predict_rows(&x).unwrap(), vec![2], "latest wins");
        assert!(slot.take().is_none(), "take empties the slot");
        // Leave one unconsumed for Drop to free (checked by miri-less
        // best effort: no double free / leak under normal test run).
        slot.publish(Box::new(Dummy(3)));
    }

    #[test]
    fn drop_oldest_keeps_newest_and_counts() {
        let queue = BoundedQueue::new(2);
        let tuple = StreamTuple {
            features: vec![0.0],
            group: 0,
            label: None,
        };
        for i in 0..4u8 {
            queue
                .push_record(
                    u64::from(i),
                    vec![tuple.clone(); (i + 1) as usize],
                    vec![0; (i + 1) as usize],
                    BackpressurePolicy::DropOldest,
                )
                .unwrap();
        }
        // Batches of 1 and 2 tuples were evicted; 3 and 4 remain.
        assert_eq!(
            queue.dropped(),
            DropCounters {
                batches: 2,
                tuples: 3
            }
        );
        assert_eq!(queue.backlog(), 2);
        match queue.pop() {
            MonitorMsg::Record { tuples, .. } => assert_eq!(tuples.len(), 3),
            _ => panic!("expected a record"),
        }
    }

    #[test]
    fn control_messages_bypass_a_full_queue() {
        let queue = BoundedQueue::new(1);
        let tuple = StreamTuple {
            features: vec![0.0],
            group: 0,
            label: None,
        };
        queue
            .push_record(0, vec![tuple], vec![0], BackpressurePolicy::DropOldest)
            .unwrap();
        let (tx, _rx) = mpsc::channel();
        queue.push_control(MonitorMsg::Flush(tx));
        assert_eq!(queue.backlog(), 1, "control messages do not count");
        assert!(matches!(queue.pop(), MonitorMsg::Record { .. }));
        assert!(matches!(queue.pop(), MonitorMsg::Flush(_)));
    }

    #[test]
    fn closed_queue_rejects_records_and_unblocks_producers() {
        let tuple = StreamTuple {
            features: vec![0.0],
            group: 0,
            label: None,
        };
        // A closed queue rejects new records outright (either policy).
        let queue = BoundedQueue::new(1);
        queue.close();
        for policy in [BackpressurePolicy::Block, BackpressurePolicy::DropOldest] {
            assert!(matches!(
                queue.push_record(0, vec![tuple.clone()], vec![0], policy),
                Err(StreamError::Async(_))
            ));
        }

        // A producer already blocked on a full queue is released with an
        // error when the consumer dies (instead of hanging forever).
        let queue = Arc::new(BoundedQueue::new(1));
        queue
            .push_record(0, vec![tuple.clone()], vec![0], BackpressurePolicy::Block)
            .unwrap();
        let blocked = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                queue.push_record(1, vec![tuple], vec![1], BackpressurePolicy::Block)
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.close();
        assert!(matches!(
            blocked.join().expect("producer thread"),
            Err(StreamError::Async(_))
        ));
    }
}
