//! Asynchronous ingestion: score now, monitor in the background.
//!
//! The paper's non-invasive premise is that fairness repair must not slow
//! down serving. The synchronous [`StreamEngine`]
//! couples the two anyway: every `ingest` call pays for window updates,
//! Page–Hinkley steps, and — on alert — a full ConFair retrain before a
//! single decision is returned. [`AsyncEngine`] runs the same two halves
//! ([`Scorer`] / [`Monitor`]) as a
//! pipeline instead:
//!
//! 1. **Score path** (caller's thread): validate, take any pending model
//!    swap, run the forward pass, enqueue the `(tuples, decisions)` record
//!    on a bounded queue, return the decisions. No monitoring work, no
//!    locks around the model parameters — the scorer owns its predictor
//!    outright and replacement models arrive through an atomically-swapped
//!    single-slot mailbox (arc-swap-style; see `ModelSlot` in the source).
//! 2. **Monitor thread** (single consumer): drains the queue in order,
//!    folds each record into the window/detectors, appends alerts, runs
//!    on-alert retrains, and publishes refreshed state — fairness
//!    snapshots and counters under a stats mutex (observability path, not
//!    the score path), replacement predictors through the model slot.
//!
//! Because the monitor consumes records in exactly the order they were
//! scored, the async engine is *deterministic given a quiescent point*:
//! after [`AsyncEngine::flush`], its decisions, snapshots, alert log, and
//! checkpoints are byte-identical to a synchronous engine fed the same
//! batches (property-pinned by `tests/async_equivalence.rs`).
//!
//! Backpressure is explicit ([`BackpressurePolicy`]): `Block` bounds
//! memory by stalling the producer when the monitor falls more than
//! `queue_depth` batches behind; `DropOldest` keeps the score path
//! wait-free by discarding the oldest *unprocessed* record and counting
//! what was lost ([`AsyncEngine::dropped`]) — the monitor's windowed view
//! degrades to a sample, the serving path never stalls, and the drop
//! counters tell operators which trade they are living with.

use crate::engine::{
    checkpoint_from_parts, validate_tuple, LabelFeedback, StreamConfig, StreamEngine, StreamTuple,
};
use crate::monitor::{FairnessSnapshot, Monitor};
use crate::scorer::Scorer;
use crate::telemetry::StreamMetrics;
use crate::window::{GroupCounts, JoinStats};
use crate::{DriftAlert, EngineCheckpoint, Result, StreamError};
use cf_data::Dataset;
use cf_learners::LearnerKind;
use cf_telemetry::{DropEvent, MetricsRegistry, SharedSink, TelemetryEvent};
use confair_core::Predictor;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// What the score path does when the monitor queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Stall `ingest` until the monitor frees a slot. Nothing is ever
    /// dropped: the monitor sees every tuple, and a long retrain
    /// back-pressures the producer once the queue has absorbed
    /// `queue_depth` batches. This is the deterministic default.
    Block,
    /// Discard the **oldest** unprocessed record to make room, count it in
    /// [`AsyncEngine::dropped`], and enqueue the new record without
    /// waiting. The score path becomes wait-free, at the price of a
    /// monitoring view that degrades to a (newest-biased) sample under
    /// sustained overload.
    DropOldest,
}

/// Configuration of the asynchronous pipeline between the two halves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsyncConfig {
    /// Maximum `(tuples, decisions)` records the queue holds before the
    /// backpressure policy applies. Control messages (flush barriers,
    /// checkpoint requests, shutdown) never count against the depth and
    /// are never dropped.
    pub queue_depth: usize,
    /// What to do when the queue is full.
    pub backpressure: BackpressurePolicy,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            queue_depth: 32,
            backpressure: BackpressurePolicy::Block,
        }
    }
}

/// Tuples and batches discarded under [`BackpressurePolicy::DropOldest`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropCounters {
    /// Whole records (micro-batches) discarded.
    pub batches: u64,
    /// Tuples those records carried.
    pub tuples: u64,
}

/// Human-readable one-liner, e.g. `dropped batches=2 tuples=503`.
impl std::fmt::Display for DropCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dropped batches={} tuples={}", self.batches, self.tuples)
    }
}

/// What flows from the score path to the monitor thread.
enum MonitorMsg {
    /// One served micro-batch, in scoring order. `first_id` is the
    /// scorer-assigned id of the first tuple: ids travel with the record
    /// so a dropped record leaves a gap in the monitor's id space instead
    /// of shifting every later feedback join.
    Record {
        first_id: u64,
        tuples: Vec<StreamTuple>,
        decisions: Vec<u8>,
    },
    /// Late ground truth for already-served tuples — a control-plane
    /// record: it bypasses the queue bound and is never dropped under
    /// [`BackpressurePolicy::DropOldest`] (labels are scarcer and more
    /// precious than monitoring samples), but it stays in FIFO order so a
    /// join can never overtake the record that carries its tuple.
    Feedback(Vec<LabelFeedback>),
    /// Barrier: acknowledged only after every record enqueued before it
    /// has been fully processed (including any retrain it triggered).
    Flush(mpsc::Sender<()>),
    /// Quiescent-point state request: answered with a coherent clone of
    /// the monitor half.
    Checkpoint(mpsc::Sender<Box<Monitor>>),
    /// Install (`Some`) or remove (`None`) the monitor's telemetry sink —
    /// a control-plane record so the change lands in FIFO order with the
    /// records around it.
    SetSink(Option<SharedSink>),
    /// Install metrics handles on the monitor half.
    SetMetrics(StreamMetrics),
    /// Stop consuming and hand the monitor half back through the thread's
    /// join value.
    Shutdown,
}

/// The bounded queue between the score path and the monitor thread.
///
/// Only `Record` messages count against `depth`; control messages bypass
/// the bound so a full queue can never deadlock a flush or shutdown.
///
/// Record pushes deliberately do **not** signal the consumer: on a busy
/// single core, a wakeup per batch preempts the score path with a context
/// switch it just paid to avoid. Instead the monitor polls on a short
/// timed wait ([`POLL_INTERVAL`]) and drains everything queued per wake —
/// bounded extra lag, amortised switches. Control messages (flush,
/// checkpoint, shutdown) and `not_full` transitions signal immediately,
/// because somebody is provably waiting on them.
struct BoundedQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    depth: usize,
    /// Set (with both condvars signalled) when the consumer exits for any
    /// reason — clean shutdown or a panic unwinding the monitor thread —
    /// so producers blocked on backpressure or waiting on a flush ack can
    /// fail with a typed error instead of hanging on a queue nobody will
    /// ever drain.
    closed: std::sync::atomic::AtomicBool,
}

/// How long the idle monitor sleeps between queue polls — the upper bound
/// a record can sit unprocessed before the consumer self-wakes (on top of
/// processing time). Small enough to be irrelevant next to the window
/// dynamics being monitored, large enough to keep the idle engine silent.
const POLL_INTERVAL: std::time::Duration = std::time::Duration::from_millis(1);

struct QueueInner {
    messages: VecDeque<MonitorMsg>,
    /// `Record` entries currently queued (≤ `depth` after every push).
    records: usize,
    dropped: DropCounters,
}

impl BoundedQueue {
    fn new(depth: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                messages: VecDeque::new(),
                records: 0,
                dropped: DropCounters::default(),
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            depth,
            closed: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Whether the consumer is gone (see the `closed` field).
    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Mark the consumer gone and wake every waiter on both condvars.
    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Enqueue one record under the configured backpressure policy.
    ///
    /// # Errors
    /// [`StreamError::Async`] when the consumer is gone — including while
    /// blocked on a full queue under [`BackpressurePolicy::Block`], so a
    /// monitor-thread panic can never wedge the serving path.
    fn push_record(
        &self,
        first_id: u64,
        tuples: Vec<StreamTuple>,
        decisions: Vec<u8>,
        policy: BackpressurePolicy,
    ) -> Result<()> {
        let dead = || StreamError::Async("the monitor thread is no longer running".into());
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        match policy {
            BackpressurePolicy::Block => {
                while inner.records >= self.depth {
                    if self.is_closed() {
                        return Err(dead());
                    }
                    inner = self
                        .not_full
                        .wait_timeout(inner, POLL_INTERVAL)
                        .expect("queue mutex poisoned")
                        .0;
                }
            }
            BackpressurePolicy::DropOldest => {
                while inner.records >= self.depth {
                    // Drop the oldest *record*; control messages ahead of
                    // it (flush barriers already enqueued) are preserved.
                    let oldest = inner
                        .messages
                        .iter()
                        .position(|m| matches!(m, MonitorMsg::Record { .. }))
                        .expect("records > 0 implies a Record in the queue");
                    if let Some(MonitorMsg::Record { tuples, .. }) = inner.messages.remove(oldest) {
                        inner.records -= 1;
                        inner.dropped.batches += 1;
                        inner.dropped.tuples += tuples.len() as u64;
                    }
                }
            }
        }
        if self.is_closed() {
            return Err(dead());
        }
        inner.records += 1;
        inner.messages.push_back(MonitorMsg::Record {
            first_id,
            tuples,
            decisions,
        });
        // No notify: the consumer self-wakes within POLL_INTERVAL (see the
        // queue's type-level comment).
        Ok(())
    }

    /// Enqueue a control message (never bounded, never dropped).
    fn push_control(&self, msg: MonitorMsg) {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        inner.messages.push_back(msg);
        drop(inner);
        self.not_empty.notify_one();
    }

    /// Blocking pop, in FIFO order (monitor thread only). Waits on a timed
    /// poll so record pushes never have to signal.
    fn pop(&self) -> MonitorMsg {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        loop {
            if let Some(msg) = inner.messages.pop_front() {
                if matches!(msg, MonitorMsg::Record { .. }) {
                    inner.records -= 1;
                    self.not_full.notify_one();
                }
                return msg;
            }
            inner = self
                .not_empty
                .wait_timeout(inner, POLL_INTERVAL)
                .expect("queue mutex poisoned")
                .0;
        }
    }

    fn dropped(&self) -> DropCounters {
        self.inner.lock().expect("queue mutex poisoned").dropped
    }

    /// Records currently waiting (the monitor's backlog, in batches).
    fn backlog(&self) -> usize {
        self.inner.lock().expect("queue mutex poisoned").records
    }
}

/// Arc-swap-style single-slot mailbox for replacement predictors: the
/// monitor thread publishes with one atomic swap, the score path takes
/// with one atomic swap — no locks on either side, and an unconsumed
/// older model is simply superseded (latest wins).
struct ModelSlot {
    /// Owning pointer to a heap-allocated `Box<dyn Predictor>` (double
    /// boxed so the atomic cell is a thin pointer), or null when empty.
    ptr: AtomicPtr<Box<dyn Predictor>>,
}

impl ModelSlot {
    fn empty() -> Self {
        ModelSlot {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Publish a replacement model, dropping any unconsumed predecessor.
    fn publish(&self, model: Box<dyn Predictor>) {
        let raw = Box::into_raw(Box::new(model));
        let old = self.ptr.swap(raw, Ordering::AcqRel);
        if !old.is_null() {
            // SAFETY: `old` came from `Box::into_raw` in a previous
            // `publish` and the swap above made this thread its only
            // owner.
            drop(unsafe { Box::from_raw(old) });
        }
    }

    /// Take the pending model, if any (score path; wait-free).
    fn take(&self) -> Option<Box<dyn Predictor>> {
        let raw = self.ptr.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if raw.is_null() {
            None
        } else {
            // SAFETY: `raw` came from `Box::into_raw` in `publish` and the
            // swap above made this thread its only owner.
            Some(*unsafe { Box::from_raw(raw) })
        }
    }
}

impl Drop for ModelSlot {
    fn drop(&mut self) {
        let raw = *self.ptr.get_mut();
        if !raw.is_null() {
            // SAFETY: exclusive access in `drop`; the pointer was produced
            // by `Box::into_raw` and never freed (it is still in the slot).
            drop(unsafe { Box::from_raw(raw) });
        }
    }
}

/// The monitor thread's published view, refreshed after every processed
/// record. Read under a short mutex by the observability accessors — never
/// by the score path.
struct PublishedState {
    snapshot: FairnessSnapshot,
    counts: [GroupCounts; 2],
    window_len: usize,
    seen: u64,
    retrains: u64,
    /// A second copy of the monitor's alert log, so `alerts()` never has
    /// to round-trip to the monitor thread. Alert volume is bounded by
    /// the detectors' cooldown hysteresis (at most one alert per group
    /// per `cooldown`/`floor_cooldown` tuples), so the duplication stays
    /// small relative to the traffic that produced it.
    alerts: Vec<DriftAlert>,
    retrain_errors: Vec<StreamError>,
    monitor_error: Option<StreamError>,
    /// Label-plane observability: cumulative join counters and the
    /// pending-join backlog, refreshed with every record and feedback
    /// message the monitor processes.
    joins: JoinStats,
    pending_labels: usize,
}

/// Everything the two sides share.
struct Shared {
    queue: BoundedQueue,
    model: ModelSlot,
    stats: Mutex<PublishedState>,
}

/// The asynchronous serving engine: `ingest` returns decisions straight
/// off the forward pass while a background thread owns the
/// [`Monitor`] half and performs the window, detector, and
/// retrain work behind a bounded queue.
///
/// # Example
///
/// ```
/// use cf_datasets::stream::{DriftStream, DriftStreamSpec};
/// use cf_learners::LearnerKind;
/// use cf_stream::{AsyncConfig, AsyncEngine, StreamConfig, StreamTuple};
/// use confair_core::confair::{AlphaMode, ConFairConfig};
///
/// let spec = DriftStreamSpec::default();
/// let reference = spec.reference(600, 7);
/// let config = StreamConfig {
///     window: 256,
///     confair: ConFairConfig {
///         alpha: AlphaMode::Fixed { alpha_u: 2.0, alpha_w: 1.0 },
///         ..ConFairConfig::default()
///     },
///     ..StreamConfig::default()
/// };
/// let mut engine = AsyncEngine::from_reference(
///     &reference, LearnerKind::Logistic, 7, config, AsyncConfig::default())?;
///
/// let mut stream = DriftStream::new(spec, 1);
/// let batch = StreamTuple::rows_from_dataset(&stream.next_batch(100))?;
/// // Decisions come back without waiting for any monitoring work…
/// let decisions = engine.ingest(&batch)?;
/// assert_eq!(decisions.len(), 100);
/// // …and `flush` is the barrier that makes the monitor's view current.
/// engine.flush()?;
/// assert_eq!(engine.tuples_monitored(), 100);
/// println!("{}", engine.snapshot());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct AsyncEngine {
    /// `Some` until the engine is consumed by [`AsyncEngine::into_engine`]
    /// (the `Option` lets that method move the scorer out from under the
    /// `Drop` impl).
    scorer: Option<Scorer>,
    shared: Arc<Shared>,
    handle: Option<JoinHandle<Monitor>>,
    async_config: AsyncConfig,
    stream_config: StreamConfig,
    scored: u64,
    /// Serving-side metrics handles (latency histogram, backlog/lag/drop
    /// gauges); the monitor thread holds its own clone for its half.
    metrics: Option<StreamMetrics>,
}

impl AsyncEngine {
    /// Bootstrap an async engine from reference data — a
    /// [`StreamEngine::from_reference`] whose halves are then split across
    /// the queue.
    pub fn from_reference(
        reference: &Dataset,
        learner: LearnerKind,
        seed: u64,
        config: StreamConfig,
        async_config: AsyncConfig,
    ) -> Result<Self> {
        Ok(Self::from_engine(
            StreamEngine::from_reference(reference, learner, seed, config)?,
            async_config,
        ))
    }

    /// Split a synchronous engine into the async pipeline: the scorer
    /// stays with the caller, the monitor moves to a background thread.
    /// The engine's observable state (window, alerts, clocks) carries over
    /// exactly: `tuples_scored` starts at the engine's ingested-tuple
    /// clock (everything previously ingested was both scored and
    /// monitored), so `monitor_lag` reads 0 until new batches arrive.
    pub fn from_engine(engine: StreamEngine, async_config: AsyncConfig) -> Self {
        // Clamp once, up front, so the stored config (what `async_config()`
        // reports) always matches the bound the queue actually enforces.
        let async_config = AsyncConfig {
            queue_depth: async_config.queue_depth.max(1),
            ..async_config
        };
        let (scorer, monitor) = engine.into_parts();
        let metrics = monitor.metrics.clone();
        let stream_config = monitor.config().clone();
        // The scorer inherits the engine's id clock (not `tuples_seen`:
        // an engine that dropped records under earlier backpressure has
        // issued more ids than it monitored).
        let scored = monitor.ids_issued();
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(async_config.queue_depth),
            model: ModelSlot::empty(),
            stats: Mutex::new(PublishedState {
                snapshot: monitor.snapshot(),
                counts: *monitor.window_counts(),
                window_len: monitor.window_len(),
                seen: monitor.tuples_seen(),
                retrains: monitor.retrain_count(),
                alerts: monitor.alerts().to_vec(),
                retrain_errors: Vec::new(),
                monitor_error: None,
                joins: monitor.join_stats(),
                pending_labels: monitor.pending_labels(),
            }),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("cf-stream-monitor".into())
            .spawn(move || {
                // Close the queue on *any* exit — clean shutdown or a
                // panic unwinding this thread — so producers blocked on
                // backpressure or a flush ack fail fast instead of
                // hanging (the guard's Drop runs during unwinding too).
                struct CloseOnExit<'a>(&'a BoundedQueue);
                impl Drop for CloseOnExit<'_> {
                    fn drop(&mut self) {
                        self.0.close();
                    }
                }
                let _guard = CloseOnExit(&thread_shared.queue);
                monitor_loop(monitor, &thread_shared)
            })
            .expect("spawn monitor thread");
        AsyncEngine {
            scorer: Some(scorer),
            shared,
            handle: Some(handle),
            async_config,
            stream_config,
            scored,
            metrics,
        }
    }

    /// Rebuild an async engine from a checkpoint (same format and
    /// validation as [`StreamEngine::restore`]; checkpoints do not record
    /// the queue because [`AsyncEngine::checkpoint`] drains it first).
    ///
    /// `tuples_scored` restarts at the monitor's restored clock, so the
    /// scored/monitored lag reads 0 on a fresh restore — exactly the
    /// quiescent state the checkpoint captured.
    pub fn restore(ckpt: EngineCheckpoint, async_config: AsyncConfig) -> Result<Self> {
        Ok(Self::from_engine(
            StreamEngine::restore(ckpt)?,
            async_config,
        ))
    }

    /// [`AsyncEngine::restore`] with a telemetry sink installed before the
    /// monitor thread starts, so the trail opens with the `"restored"`
    /// checkpoint event that re-anchors a replay mid-trail.
    pub fn restore_with_sink(
        ckpt: EngineCheckpoint,
        sink: SharedSink,
        async_config: AsyncConfig,
    ) -> Result<Self> {
        Ok(Self::from_engine(
            StreamEngine::restore_with_sink(ckpt, sink)?,
            async_config,
        ))
    }

    /// Install a telemetry sink on the background monitor. The change
    /// travels the queue as a control message, so it takes effect in FIFO
    /// order: records already enqueued are emitted (or not) under the sink
    /// that was installed when they were scored.
    ///
    /// # Errors
    /// [`StreamError::Async`] when the monitor thread is gone.
    pub fn set_sink(&mut self, sink: SharedSink) -> Result<()> {
        self.ensure_monitor_alive()?;
        self.shared
            .queue
            .push_control(MonitorMsg::SetSink(Some(sink)));
        Ok(())
    }

    /// Remove the monitor's telemetry sink (FIFO-ordered, like
    /// [`AsyncEngine::set_sink`]).
    ///
    /// # Errors
    /// [`StreamError::Async`] when the monitor thread is gone.
    pub fn clear_sink(&mut self) -> Result<()> {
        self.ensure_monitor_alive()?;
        self.shared.queue.push_control(MonitorMsg::SetSink(None));
        Ok(())
    }

    /// Register this engine's instruments on `registry` and start keeping
    /// them fresh: the serving half updates the ingest-latency histogram
    /// and the backlog/lag/drop gauges, the monitor thread the
    /// alert/retrain/join instruments.
    ///
    /// # Errors
    /// [`StreamError::Async`] when the monitor thread is gone.
    pub fn install_metrics(&mut self, registry: &MetricsRegistry) -> Result<()> {
        self.set_metrics(StreamMetrics::register(registry))
    }

    /// Install pre-registered metrics handles (the sharded router's path,
    /// where each shard's instruments carry a `shard` label).
    ///
    /// # Errors
    /// [`StreamError::Async`] when the monitor thread is gone.
    pub fn set_metrics(&mut self, metrics: StreamMetrics) -> Result<()> {
        self.ensure_monitor_alive()?;
        self.shared
            .queue
            .push_control(MonitorMsg::SetMetrics(metrics.clone()));
        self.metrics = Some(metrics);
        self.refresh_serving_metrics();
        Ok(())
    }

    /// The metrics handles installed on this engine, if any.
    pub fn metrics(&self) -> Option<&StreamMetrics> {
        self.metrics.as_ref()
    }

    /// Refresh the serving-side gauges (queue backlog, monitor lag, drop
    /// counters).
    fn refresh_serving_metrics(&self) {
        if let Some(m) = &self.metrics {
            m.queue_backlog.set_u64(self.shared.queue.backlog() as u64);
            m.monitor_lag.set_u64(self.monitor_lag());
            let dropped = self.dropped();
            m.dropped_batches.set_u64(dropped.batches);
            m.dropped_tuples.set_u64(dropped.tuples);
        }
    }

    /// Score one micro-batch and return its decisions immediately; the
    /// monitoring work (window, detectors, floor check, on-alert retrain)
    /// happens on the background thread after this call returns.
    ///
    /// The batch is copied once onto the queue; use
    /// [`AsyncEngine::ingest_owned`] to hand the tuples over without the
    /// copy.
    ///
    /// # Errors
    /// Validation errors reject the whole batch before anything is scored
    /// or enqueued, exactly as in the sync engine;
    /// [`StreamError::Async`] when the monitor thread is gone.
    pub fn ingest(&mut self, batch: &[StreamTuple]) -> Result<Vec<u8>> {
        let d = self.scorer().schema().len();
        for (i, t) in batch.iter().enumerate() {
            validate_tuple(t, d, i)?;
        }
        self.ingest_prevalidated_owned(batch.to_vec())
    }

    /// [`AsyncEngine::ingest`] without the queue-bound copy: the batch is
    /// moved onto the queue after scoring.
    pub fn ingest_owned(&mut self, batch: Vec<StreamTuple>) -> Result<Vec<u8>> {
        let d = self.scorer().schema().len();
        for (i, t) in batch.iter().enumerate() {
            validate_tuple(t, d, i)?;
        }
        self.ingest_prevalidated_owned(batch)
    }

    /// Score + enqueue after validation (shared with the sharded router,
    /// which validates whole mixed batches itself).
    pub(crate) fn ingest_prevalidated_owned(&mut self, batch: Vec<StreamTuple>) -> Result<Vec<u8>> {
        self.ensure_monitor_alive()?;
        let started = self.metrics.as_ref().map(|_| std::time::Instant::now());
        // Pick up a pending retrain before scoring: one wait-free atomic
        // swap, no lock around the model parameters.
        if let Some(model) = self.shared.model.take() {
            self.scorer_mut().install(model);
        }
        let decisions = self.scorer_mut().score(&batch)?;
        if batch.is_empty() {
            // Nothing to monitor; the sync engine's empty ingest is a
            // no-op on state too.
            return Ok(decisions);
        }
        let n = batch.len() as u64;
        self.shared.queue.push_record(
            self.scored,
            batch,
            decisions.clone(),
            self.async_config.backpressure,
        )?;
        self.scored += n;
        if let (Some(m), Some(started)) = (&self.metrics, started) {
            m.ingest_latency_us
                .observe(started.elapsed().as_micros() as f64);
            m.ingest_batches.inc();
            m.ingest_tuples.add(n);
        }
        self.refresh_serving_metrics();
        Ok(decisions)
    }

    /// Join late ground truth into the label plane: the records are
    /// enqueued as a control-plane message behind everything already
    /// scored (FIFO, never dropped, exempt from the queue bound) and the
    /// background monitor applies them in order. Observable after a
    /// [`AsyncEngine::flush`] via [`AsyncEngine::join_stats`],
    /// [`AsyncEngine::snapshot`], and the label-plane counters.
    ///
    /// Tuple `k` of an `ingest` batch has id `tuples_scored()-before + k`;
    /// ids of records dropped under [`BackpressurePolicy::DropOldest`]
    /// were never monitored, so their feedback counts as unmatched rather
    /// than erroring.
    ///
    /// # Errors
    /// [`StreamError::BadLabel`] for a non-binary label,
    /// [`StreamError::FutureFeedback`] for an id not scored yet (both
    /// validated here, synchronously, before anything is enqueued);
    /// [`StreamError::Async`] when the monitor thread is gone.
    pub fn feedback(&mut self, feedback: &[LabelFeedback]) -> Result<()> {
        self.ensure_monitor_alive()?;
        for record in feedback {
            if record.label >= 2 {
                return Err(StreamError::BadLabel(record.label));
            }
            if record.id >= self.scored {
                return Err(StreamError::FutureFeedback {
                    id: record.id,
                    issued: self.scored,
                });
            }
        }
        if feedback.is_empty() {
            return Ok(());
        }
        self.shared
            .queue
            .push_control(MonitorMsg::Feedback(feedback.to_vec()));
        Ok(())
    }

    /// Barrier: block until every record enqueued so far has been fully
    /// processed (including any retrain it triggered), then install any
    /// model the monitor published. After `flush`, the engine's
    /// observable state is byte-identical to a synchronous engine fed the
    /// same batches.
    ///
    /// # Errors
    /// [`StreamError::Async`] when the monitor thread is gone.
    pub fn flush(&mut self) -> Result<()> {
        self.ensure_monitor_alive()?;
        let (ack_tx, ack_rx) = mpsc::channel();
        self.shared.queue.push_control(MonitorMsg::Flush(ack_tx));
        self.recv_from_monitor(&ack_rx, "flush")?;
        if let Some(model) = self.shared.model.take() {
            self.scorer_mut().install(model);
        }
        self.refresh_serving_metrics();
        Ok(())
    }

    /// Wait for the monitor thread's reply to a control message, bailing
    /// out with a typed error if the thread dies first. A plain `recv()`
    /// would hang: the un-acked sender sits *inside* the engine-held
    /// queue, so it is never dropped when the consumer is gone.
    fn recv_from_monitor<T>(&self, rx: &mpsc::Receiver<T>, during: &str) -> Result<T> {
        let dead = || StreamError::Async(format!("monitor thread terminated during {during}"));
        loop {
            match rx.recv_timeout(POLL_INTERVAL) {
                Ok(value) => return Ok(value),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if self.shared.queue.is_closed() {
                        return Err(dead());
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return Err(dead()),
            }
        }
    }

    /// Drain to a quiescent point and capture the complete engine state as
    /// a versioned [`EngineCheckpoint`] — the same document
    /// [`StreamEngine::checkpoint`] writes, so sync and async engines
    /// restore each other's checkpoints interchangeably.
    ///
    /// The flush-first contract is what keeps restores bit-identical: no
    /// record is in flight when the monitor clone is taken, so the
    /// document never captures a window the scorer is ahead of.
    ///
    /// # Errors
    /// [`StreamError::Async`] when the monitor thread is gone;
    /// [`StreamError::Checkpoint`] when the predictor does not support
    /// serialisation.
    pub fn checkpoint(&mut self) -> Result<EngineCheckpoint> {
        self.flush()?;
        let (tx, rx) = mpsc::channel();
        self.shared.queue.push_control(MonitorMsg::Checkpoint(tx));
        let monitor = self.recv_from_monitor(&rx, "checkpoint")?;
        // The clone shares the live monitor's sink (it is an `Arc`), so
        // the `"taken"` marker lands on the same trail — at the quiescent
        // point the flush above established.
        monitor.emit(crate::checkpoint::checkpoint_event(&monitor, "taken"));
        checkpoint_from_parts(self.scorer(), &monitor)
    }

    /// Shut the pipeline down and reunite the halves into a synchronous
    /// [`StreamEngine`] carrying the exact same state (flushes first, so
    /// nothing in flight is lost).
    ///
    /// # Errors
    /// [`StreamError::Async`] when the monitor thread is gone or panicked.
    pub fn into_engine(mut self) -> Result<StreamEngine> {
        self.flush()?;
        let handle = self
            .handle
            .take()
            .ok_or_else(|| StreamError::Async("monitor thread already shut down".into()))?;
        self.shared.queue.push_control(MonitorMsg::Shutdown);
        let monitor = handle
            .join()
            .map_err(|_| StreamError::Async("monitor thread panicked".into()))?;
        let scorer = self.scorer.take().expect("scorer present until consumed");
        StreamEngine::from_parts(scorer, monitor)
    }

    /// Tuples scored (and therefore served) by this engine.
    pub fn tuples_scored(&self) -> u64 {
        self.scored
    }

    /// Tuples the background monitor has fully processed so far.
    pub fn tuples_monitored(&self) -> u64 {
        self.stats(|s| s.seen)
    }

    /// How far the monitor lags the scorer, in tuples. 0 after a
    /// [`AsyncEngine::flush`] (tuples dropped under
    /// [`BackpressurePolicy::DropOldest`] are subtracted — they will never
    /// be monitored).
    pub fn monitor_lag(&self) -> u64 {
        self.scored
            .saturating_sub(self.stats(|s| s.seen) + self.dropped().tuples)
    }

    /// Records currently waiting in the queue (the monitor's backlog).
    pub fn queue_backlog(&self) -> usize {
        self.shared.queue.backlog()
    }

    /// Batches/tuples discarded under [`BackpressurePolicy::DropOldest`]
    /// (always zero under [`BackpressurePolicy::Block`]).
    pub fn dropped(&self) -> DropCounters {
        self.shared.queue.dropped()
    }

    /// The monitor's latest published label-join counters (current after a
    /// [`AsyncEngine::flush`]).
    pub fn join_stats(&self) -> JoinStats {
        self.stats(|s| s.joins)
    }

    /// Evicted decisions currently awaiting labels in the monitor's
    /// pending-join index, per its latest published state.
    pub fn pending_labels(&self) -> usize {
        self.stats(|s| s.pending_labels)
    }

    /// The monitor's latest published fairness reading. Lags the scorer by
    /// at most the queue backlog; current after a [`AsyncEngine::flush`].
    pub fn snapshot(&self) -> FairnessSnapshot {
        self.stats(|s| s.snapshot.clone())
    }

    /// The monitor's latest published per-group window counters.
    pub fn window_counts(&self) -> [GroupCounts; 2] {
        self.stats(|s| s.counts)
    }

    /// Tuples currently retained in the monitor's window.
    pub fn window_len(&self) -> usize {
        self.stats(|s| s.window_len)
    }

    /// Every alert raised so far, in stream order (cloned out of the
    /// published state; the log itself lives with the monitor thread).
    pub fn alerts(&self) -> Vec<DriftAlert> {
        self.stats(|s| s.alerts.clone())
    }

    /// How many times the on-alert retraining hook has run.
    pub fn retrain_count(&self) -> u64 {
        self.stats(|s| s.retrains)
    }

    /// Errors from failed on-alert retrains, in occurrence order. The
    /// sync engine reports these per batch in
    /// [`IngestOutcome::retrain_error`](crate::IngestOutcome); here they
    /// accumulate because the failing batch was already served when the
    /// retrain ran.
    pub fn retrain_errors(&self) -> Vec<StreamError> {
        self.stats(|s| s.retrain_errors.clone())
    }

    /// A monitoring-side failure, if one ever occurred (record shape
    /// errors are impossible for validated input, so this is a
    /// should-never-happen diagnostic, kept visible rather than
    /// swallowed).
    pub fn monitor_error(&self) -> Option<StreamError> {
        self.stats(|s| s.monitor_error.clone())
    }

    /// The stream configuration the engine was built with.
    pub fn config(&self) -> &StreamConfig {
        &self.stream_config
    }

    /// The async pipeline configuration (queue depth, backpressure).
    pub fn async_config(&self) -> &AsyncConfig {
        &self.async_config
    }

    /// The reference schema's column names.
    pub fn schema(&self) -> &[String] {
        self.scorer().schema()
    }

    fn scorer(&self) -> &Scorer {
        self.scorer.as_ref().expect("scorer present until consumed")
    }

    fn scorer_mut(&mut self) -> &mut Scorer {
        self.scorer.as_mut().expect("scorer present until consumed")
    }

    fn stats<R>(&self, read: impl FnOnce(&PublishedState) -> R) -> R {
        read(&self.shared.stats.lock().expect("stats mutex poisoned"))
    }

    fn ensure_monitor_alive(&self) -> Result<()> {
        match &self.handle {
            Some(handle) if !handle.is_finished() && !self.shared.queue.is_closed() => Ok(()),
            _ => Err(StreamError::Async(
                "the monitor thread is no longer running".into(),
            )),
        }
    }
}

impl Drop for AsyncEngine {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shared.queue.push_control(MonitorMsg::Shutdown);
            // A panicked monitor already detached; nothing to salvage in
            // `drop`.
            let _ = handle.join();
        }
    }
}

/// The single-consumer monitor loop: drain records in order, publish
/// refreshed state, answer control messages, return the monitor on
/// shutdown.
fn monitor_loop(mut monitor: Monitor, shared: &Shared) -> Monitor {
    // Last drop counters this loop acknowledged: records evicted under
    // `DropOldest` vanish from the queue without ever reaching the
    // monitor, so the trail learns about them here — by diffing the
    // queue's counters before processing each surviving message, which
    // places the drop event at its queue-order position.
    let mut dropped_seen = shared.queue.dropped();
    loop {
        let msg = shared.queue.pop();
        let dropped_now = shared.queue.dropped();
        if dropped_now != dropped_seen {
            monitor.emit(TelemetryEvent::Drop(DropEvent {
                at_tuple: monitor.tuples_seen(),
                batches: dropped_now.batches,
                tuples: dropped_now.tuples,
            }));
            if let Some(m) = &monitor.metrics {
                m.dropped_batches.set_u64(dropped_now.batches);
                m.dropped_tuples.set_u64(dropped_now.tuples);
            }
            dropped_seen = dropped_now;
        }
        match msg {
            MonitorMsg::Record {
                first_id,
                tuples,
                decisions,
            } => match monitor.observe_with_ids(&tuples, &decisions, first_id) {
                Ok(outcome) => {
                    if let Some(model) = outcome.model {
                        shared.model.publish(model);
                        // The swap slot is the async engine's publication
                        // point, so the swap event is emitted here — after
                        // repair_end, exactly as the sync engine orders it.
                        monitor.emit_model_swap();
                    }
                    let mut stats = shared.stats.lock().expect("stats mutex poisoned");
                    stats.snapshot = outcome.snapshot;
                    stats.counts = *monitor.window_counts();
                    stats.window_len = monitor.window_len();
                    stats.seen = monitor.tuples_seen();
                    stats.retrains = monitor.retrain_count();
                    stats.alerts.extend_from_slice(&outcome.alerts);
                    stats.joins = monitor.join_stats();
                    stats.pending_labels = monitor.pending_labels();
                    if let Some(e) = outcome.retrain_error {
                        stats.retrain_errors.push(e);
                    }
                }
                Err(e) => {
                    let mut stats = shared.stats.lock().expect("stats mutex poisoned");
                    if stats.monitor_error.is_none() {
                        stats.monitor_error = Some(e);
                    }
                }
            },
            MonitorMsg::Feedback(records) => {
                // Ids in a dropped record's range resolve as unmatched
                // inside the join, so validated feedback cannot fail here
                // except through the should-never-happen diagnostic path.
                match monitor.feedback(&records) {
                    Ok(outcome) => {
                        let mut stats = shared.stats.lock().expect("stats mutex poisoned");
                        stats.snapshot = outcome.snapshot;
                        stats.counts = *monitor.window_counts();
                        stats.joins = monitor.join_stats();
                        stats.pending_labels = monitor.pending_labels();
                    }
                    Err(e) => {
                        let mut stats = shared.stats.lock().expect("stats mutex poisoned");
                        if stats.monitor_error.is_none() {
                            stats.monitor_error = Some(e);
                        }
                    }
                }
            }
            MonitorMsg::Flush(ack) => {
                // Everything enqueued before the barrier has been
                // processed (single consumer, FIFO queue); the ack's
                // receiver may have given up — that is its business.
                let _ = ack.send(());
            }
            MonitorMsg::Checkpoint(tx) => {
                let _ = tx.send(Box::new(monitor.clone()));
            }
            MonitorMsg::SetSink(sink) => monitor.sink = sink,
            MonitorMsg::SetMetrics(metrics) => monitor.set_metrics(metrics),
            MonitorMsg::Shutdown => return monitor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The halves and the whole pipeline must be free to cross threads.
    #[test]
    fn halves_and_engine_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Scorer>();
        assert_send::<Monitor>();
        assert_send::<AsyncEngine>();
        assert_send::<MonitorMsg>();
    }

    #[test]
    fn model_slot_latest_wins_and_frees_unconsumed() {
        struct Dummy(u8);
        impl Predictor for Dummy {
            fn predict(&self, _data: &Dataset) -> confair_core::Result<Vec<u8>> {
                Ok(vec![self.0])
            }
            fn predict_rows(&self, x: &cf_linalg::Matrix) -> confair_core::Result<Vec<u8>> {
                Ok(vec![self.0; x.rows()])
            }
        }
        let slot = ModelSlot::empty();
        assert!(slot.take().is_none());
        slot.publish(Box::new(Dummy(1)));
        slot.publish(Box::new(Dummy(2)));
        let taken = slot.take().expect("a model is pending");
        let x = cf_linalg::Matrix::zeros(1, 1);
        assert_eq!(taken.predict_rows(&x).unwrap(), vec![2], "latest wins");
        assert!(slot.take().is_none(), "take empties the slot");
        // Leave one unconsumed for Drop to free (checked by miri-less
        // best effort: no double free / leak under normal test run).
        slot.publish(Box::new(Dummy(3)));
    }

    #[test]
    fn drop_oldest_keeps_newest_and_counts() {
        let queue = BoundedQueue::new(2);
        let tuple = StreamTuple {
            features: vec![0.0],
            group: 0,
            label: None,
        };
        for i in 0..4u8 {
            queue
                .push_record(
                    u64::from(i),
                    vec![tuple.clone(); (i + 1) as usize],
                    vec![0; (i + 1) as usize],
                    BackpressurePolicy::DropOldest,
                )
                .unwrap();
        }
        // Batches of 1 and 2 tuples were evicted; 3 and 4 remain.
        assert_eq!(
            queue.dropped(),
            DropCounters {
                batches: 2,
                tuples: 3
            }
        );
        assert_eq!(queue.backlog(), 2);
        match queue.pop() {
            MonitorMsg::Record { tuples, .. } => assert_eq!(tuples.len(), 3),
            _ => panic!("expected a record"),
        }
    }

    #[test]
    fn control_messages_bypass_a_full_queue() {
        let queue = BoundedQueue::new(1);
        let tuple = StreamTuple {
            features: vec![0.0],
            group: 0,
            label: None,
        };
        queue
            .push_record(0, vec![tuple], vec![0], BackpressurePolicy::DropOldest)
            .unwrap();
        let (tx, _rx) = mpsc::channel();
        queue.push_control(MonitorMsg::Flush(tx));
        assert_eq!(queue.backlog(), 1, "control messages do not count");
        assert!(matches!(queue.pop(), MonitorMsg::Record { .. }));
        assert!(matches!(queue.pop(), MonitorMsg::Flush(_)));
    }

    #[test]
    fn closed_queue_rejects_records_and_unblocks_producers() {
        let tuple = StreamTuple {
            features: vec![0.0],
            group: 0,
            label: None,
        };
        // A closed queue rejects new records outright (either policy).
        let queue = BoundedQueue::new(1);
        queue.close();
        for policy in [BackpressurePolicy::Block, BackpressurePolicy::DropOldest] {
            assert!(matches!(
                queue.push_record(0, vec![tuple.clone()], vec![0], policy),
                Err(StreamError::Async(_))
            ));
        }

        // A producer already blocked on a full queue is released with an
        // error when the consumer dies (instead of hanging forever).
        let queue = Arc::new(BoundedQueue::new(1));
        queue
            .push_record(0, vec![tuple.clone()], vec![0], BackpressurePolicy::Block)
            .unwrap();
        let blocked = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                queue.push_record(1, vec![tuple], vec![1], BackpressurePolicy::Block)
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.close();
        assert!(matches!(
            blocked.join().expect("producer thread"),
            Err(StreamError::Async(_))
        ));
    }
}
