//! Glue between the stream engines and the `cf-telemetry` plane.
//!
//! Two jobs live here. First, the **type bridges**: the engines' own
//! `GroupCounts` / [`FairnessSnapshot`] / [`DriftAlert`] convert to the
//! serialisable mirrors `cf-telemetry` defines, and —crucially—
//! [`FairnessSnapshot::from_counts`] *delegates* its arithmetic to
//! [`SnapshotData::from_counters`], so a live snapshot and one recomputed
//! by [`cf_telemetry::replay()`] are products of the same code path: the
//! audit trail's byte-identity is structural, not coincidental.
//!
//! Second, [`StreamMetrics`]: the engines' scrape surface on a
//! [`MetricsRegistry`]. One registration covers both engine halves — the
//! latency histogram and queue/backlog gauges are fed from the serving
//! side, the alert/retrain/join instruments from the monitor side — and a
//! sharded deployment registers one set per shard under a `shard` label.

use crate::drift::{DriftAlert, DriftKind};
use crate::monitor::FairnessSnapshot;
use crate::window::GroupCounts;
use cf_telemetry::{
    log2_buckets, AlertData, AlertExplanation, Counter, DriftAlertEvent, Gauge, Histogram,
    MetricsRegistry, SnapshotData, TelemetryEvent, WindowCounters,
};

/// Mirror one group cell's window counters into the telemetry type.
pub(crate) fn window_counters(c: &GroupCounts) -> WindowCounters {
    WindowCounters {
        total: c.total,
        selected: c.selected,
        violations: c.violations,
        labeled: c.labeled,
        label_positive: c.label_positive,
        true_positive: c.true_positive,
        false_positive: c.false_positive,
    }
}

/// Mirror every group cell at once (index = group cell id, `0..K`).
pub(crate) fn both_counters(counts: &[GroupCounts]) -> Vec<WindowCounters> {
    counts.iter().map(window_counters).collect()
}

impl FairnessSnapshot {
    /// The serialisable telemetry mirror of this reading (field-for-field
    /// identical; audit events carry this form).
    pub fn to_data(&self) -> SnapshotData {
        SnapshotData {
            window_len: self.window_len,
            selection_rate: self.selection_rate.clone(),
            disparate_impact: self.disparate_impact,
            di_star: self.di_star,
            demographic_parity_gap: self.demographic_parity_gap,
            equal_opportunity_gap: self.equal_opportunity_gap,
            violation_rate: self.violation_rate.clone(),
            labeled: self.labeled.clone(),
            di_floor: self.di_floor,
        }
    }

    /// Rebuild a reading from its telemetry mirror (e.g. one recomputed by
    /// [`cf_telemetry::replay()`]). Counter-derived readings carry no
    /// degraded flag — that is live-engine state, reported `false` here
    /// (a replayed trail surfaces degradation through its own
    /// `degraded_mode` events instead).
    pub fn from_data(data: SnapshotData) -> Self {
        FairnessSnapshot {
            window_len: data.window_len,
            selection_rate: data.selection_rate,
            disparate_impact: data.disparate_impact,
            di_star: data.di_star,
            demographic_parity_gap: data.demographic_parity_gap,
            equal_opportunity_gap: data.equal_opportunity_gap,
            violation_rate: data.violation_rate,
            labeled: data.labeled,
            di_floor: data.di_floor,
            degraded: false,
        }
    }
}

/// Mirror an alert into its audit-trail form.
pub(crate) fn alert_data(alert: &DriftAlert) -> AlertData {
    AlertData {
        kind: alert.kind.wire_name().to_string(),
        group: alert.group,
        at_tuple: alert.at_tuple,
        statistic: alert.statistic,
        threshold: alert.threshold,
    }
}

fn fmt_rate(rate: Option<f64>) -> String {
    match rate {
        Some(r) => format!("{r:.4}"),
        None => "--".to_string(),
    }
}

/// Render per-cell rates for an alert summary. The binary layout keeps
/// its classic `[W, U] = [a, b]` wording verbatim; any other K lists the
/// cells positionally (`cells = [a, b, c, …]`, index = cell id).
fn fmt_rates(rates: &[Option<f64>]) -> String {
    let listed = rates
        .iter()
        .map(|&r| fmt_rate(r))
        .collect::<Vec<_>>()
        .join(", ");
    if rates.len() == 2 {
        format!("[W, U] = [{listed}]")
    } else {
        format!("cells = [{listed}]")
    }
}

/// Build the alert event, explanation included: which `(group, plane)`
/// cell moved, and the windowed rates that say by how much.
pub(crate) fn alert_event(alert: &DriftAlert, snapshot: &FairnessSnapshot) -> TelemetryEvent {
    let (cell, summary) = match alert.kind {
        DriftKind::ConformanceViolation => (
            format!("group={}/decision", alert.group),
            format!(
                "Page-Hinkley on group {}'s decision-conformance series crossed its \
                 threshold (statistic {:.4} > lambda {:.4}); windowed violation rates \
                 {}",
                alert.group,
                alert.statistic,
                alert.threshold,
                fmt_rates(&snapshot.violation_rate),
            ),
        ),
        DriftKind::DisparateImpactFloor => (
            format!("group={}/selection", alert.group),
            format!(
                "windowed DI* {:.4} fell below the {:.2} floor; selection rates \
                 {} disadvantage group {}",
                alert.statistic,
                alert.threshold,
                fmt_rates(&snapshot.selection_rate),
                alert.group,
            ),
        ),
    };
    TelemetryEvent::DriftAlert(DriftAlertEvent {
        at_tuple: alert.at_tuple,
        alert: alert_data(alert),
        explanation: AlertExplanation {
            cell,
            selection_rate: snapshot.selection_rate.clone(),
            violation_rate: snapshot.violation_rate.clone(),
            summary,
        },
    })
}

/// The engines' instruments on a [`MetricsRegistry`] — one coherent
/// scrape surface over what used to be scattered accessors
/// (`DropCounters`, `JoinStats`, `monitor_lag()`, `alerts()`).
///
/// Handles are cheap atomic clones: the serving half updates the latency
/// histogram and the backlog/lag/drop gauges, the monitor half (possibly
/// on its own thread) updates the alert/retrain/join instruments, and
/// both halves of one engine share a single registration. Install via
/// `StreamEngine::install_metrics` *before* wrapping the engine in an
/// async pipeline, so the handles travel with the monitor to its thread.
#[derive(Clone)]
pub struct StreamMetrics {
    /// `cf_stream_ingest_latency_us`: per-batch ingest latency histogram
    /// (fixed log₂ buckets, 1 µs … ~1 s) — p50/p99 come from here.
    pub ingest_latency_us: Histogram,
    /// `cf_stream_ingest_batches_total`: micro-batches ingested.
    pub ingest_batches: Counter,
    /// `cf_stream_ingest_tuples_total`: tuples ingested.
    pub ingest_tuples: Counter,
    /// `cf_stream_queue_backlog`: monitor-queue backlog (async engines).
    pub queue_backlog: Gauge,
    /// `cf_stream_monitor_lag`: tuples scored but not yet monitored.
    pub monitor_lag: Gauge,
    /// `cf_stream_dropped_batches`: cumulative batches lost to
    /// backpressure.
    pub dropped_batches: Gauge,
    /// `cf_stream_dropped_tuples`: cumulative tuples lost to backpressure.
    pub dropped_tuples: Gauge,
    /// `cf_stream_pending_labels`: evicted decisions awaiting labels.
    pub pending_labels: Gauge,
    /// `cf_stream_labels_joined`: cumulative label joins.
    pub labels_joined: Gauge,
    /// `cf_stream_labels_unmatched`: cumulative unmatched feedback
    /// records.
    pub labels_unmatched: Gauge,
    /// `cf_stream_window_fill`: tuples currently in the window.
    pub window_fill: Gauge,
    /// `cf_stream_alerts`: cumulative drift alerts.
    pub alerts_total: Gauge,
    /// `cf_stream_retrains`: cumulative successful retrains.
    pub retrains_total: Gauge,
    /// `cf_stream_retrain_duration_us`: wall-clock retrain duration
    /// histogram (fixed log₂ buckets, 128 µs … ~4 s).
    pub retrain_duration_us: Histogram,
    /// `cf_stream_retrain_failures_total`: failed retrain *attempts*
    /// (each retry inside a repair episode counts once).
    pub retrain_failures_total: Counter,
    /// `cf_stream_degraded`: 1 while the engine serves in degraded mode
    /// (repair budget exhausted, stale model still serving), else 0.
    pub degraded: Gauge,
    /// `cf_stream_repair_tier`: the active repair-ladder rung (0 = idle,
    /// 1 = threshold nudge, 2 = DiffFair projection, 3 = ConFair retrain).
    pub repair_tier: Gauge,
    /// `cf_stream_threshold_nudges_total`: tier-1 per-cell threshold
    /// nudges applied.
    pub threshold_nudges_total: Counter,
    /// `cf_stream_telemetry_disabled_total`: audit events dropped because
    /// the sink lock was poisoned by a panicked subscriber.
    pub telemetry_disabled_total: Counter,
    /// `cf_stream_monitor_restarts`: times the supervisor respawned a
    /// dead monitor thread.
    pub monitor_restarts: Gauge,
    /// `cf_stream_monitor_gap_tuples`: cumulative tuples scored but never
    /// monitored because they fell into a monitor-death gap.
    pub monitor_gap_tuples: Gauge,
}

impl StreamMetrics {
    /// Register (or look up) the unlabeled instrument set.
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self::register_shard(registry, None)
    }

    /// Register (or look up) the instrument set, labeled `shard="<id>"`
    /// when `shard` is given — the per-shard surface a sharded deployment
    /// scrapes.
    pub fn register_shard(registry: &MetricsRegistry, shard: Option<u32>) -> Self {
        let shard_label = shard.map(|s| s.to_string());
        let labels: Vec<(&str, &str)> = match &shard_label {
            Some(s) => vec![("shard", s.as_str())],
            None => Vec::new(),
        };
        let l = labels.as_slice();
        StreamMetrics {
            ingest_latency_us: registry.histogram_with(
                "cf_stream_ingest_latency_us",
                "Per-batch ingest latency in microseconds.",
                log2_buckets(1.0, 21),
                l,
            ),
            ingest_batches: registry.counter_with(
                "cf_stream_ingest_batches_total",
                "Micro-batches ingested.",
                l,
            ),
            ingest_tuples: registry.counter_with(
                "cf_stream_ingest_tuples_total",
                "Tuples ingested.",
                l,
            ),
            queue_backlog: registry.gauge_with(
                "cf_stream_queue_backlog",
                "Record batches waiting in the monitor queue.",
                l,
            ),
            monitor_lag: registry.gauge_with(
                "cf_stream_monitor_lag",
                "Tuples scored but not yet monitored (excludes drops).",
                l,
            ),
            dropped_batches: registry.gauge_with(
                "cf_stream_dropped_batches",
                "Cumulative batches dropped under backpressure.",
                l,
            ),
            dropped_tuples: registry.gauge_with(
                "cf_stream_dropped_tuples",
                "Cumulative tuples dropped under backpressure.",
                l,
            ),
            pending_labels: registry.gauge_with(
                "cf_stream_pending_labels",
                "Evicted decisions awaiting their labels in the pending-join index.",
                l,
            ),
            labels_joined: registry.gauge_with(
                "cf_stream_labels_joined",
                "Cumulative ground-truth labels joined into the label plane.",
                l,
            ),
            labels_unmatched: registry.gauge_with(
                "cf_stream_labels_unmatched",
                "Cumulative feedback records whose tuple could not be found.",
                l,
            ),
            window_fill: registry.gauge_with(
                "cf_stream_window_fill",
                "Tuples currently retained in the sliding window.",
                l,
            ),
            alerts_total: registry.gauge_with(
                "cf_stream_alerts",
                "Cumulative drift alerts raised.",
                l,
            ),
            retrains_total: registry.gauge_with(
                "cf_stream_retrains",
                "Cumulative successful on-alert retrains.",
                l,
            ),
            retrain_duration_us: registry.histogram_with(
                "cf_stream_retrain_duration_us",
                "Wall-clock duration of retrain attempts in microseconds.",
                log2_buckets(128.0, 16),
                l,
            ),
            retrain_failures_total: registry.counter_with(
                "cf_stream_retrain_failures_total",
                "Failed retrain attempts (each retry counts once).",
                l,
            ),
            degraded: registry.gauge_with(
                "cf_stream_degraded",
                "1 while serving in degraded mode (repair budget exhausted), else 0.",
                l,
            ),
            repair_tier: registry.gauge_with(
                "cf_stream_repair_tier",
                "Active repair-ladder rung (0 idle, 1 nudge, 2 projection, 3 retrain).",
                l,
            ),
            threshold_nudges_total: registry.counter_with(
                "cf_stream_threshold_nudges_total",
                "Tier-1 per-cell threshold nudges applied.",
                l,
            ),
            telemetry_disabled_total: registry.counter_with(
                "cf_stream_telemetry_disabled_total",
                "Audit events dropped because the sink lock was poisoned.",
                l,
            ),
            monitor_restarts: registry.gauge_with(
                "cf_stream_monitor_restarts",
                "Times the supervisor respawned a dead monitor thread.",
                l,
            ),
            monitor_gap_tuples: registry.gauge_with(
                "cf_stream_monitor_gap_tuples",
                "Cumulative tuples scored but never monitored (monitor-death gaps).",
                l,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_mirrors_are_lossless() {
        let counts = [
            GroupCounts {
                total: 40,
                selected: 22,
                violations: 1,
                labeled: 30,
                label_positive: 18,
                true_positive: 15,
                false_positive: 4,
            },
            GroupCounts {
                total: 36,
                selected: 12,
                violations: 5,
                labeled: 20,
                label_positive: 11,
                true_positive: 5,
                false_positive: 2,
            },
        ];
        let live = FairnessSnapshot::from_counts(&counts, 0.8);
        let mirrored = SnapshotData::from_counters(&both_counters(&counts), 0.8);
        assert_eq!(live.to_data(), mirrored, "one arithmetic, two entry points");
        assert_eq!(FairnessSnapshot::from_data(mirrored), live);
    }

    #[test]
    fn alert_event_explains_the_moved_cell() {
        let counts = [GroupCounts::default(), GroupCounts::default()];
        let snapshot = FairnessSnapshot::from_counts(&counts, 0.8);
        let alert = DriftAlert {
            kind: DriftKind::ConformanceViolation,
            group: 1,
            at_tuple: 321,
            statistic: 13.5,
            threshold: 12.0,
        };
        let event = alert_event(&alert, &snapshot);
        let TelemetryEvent::DriftAlert(e) = &event else {
            panic!("expected a drift alert event");
        };
        assert_eq!(e.alert.kind, "conformance_violation");
        assert_eq!(e.explanation.cell, "group=1/decision");
        assert!(e.explanation.summary.contains("13.5"));
        assert_eq!(e.at_tuple, 321);
    }

    #[test]
    fn metrics_register_per_shard() {
        let registry = MetricsRegistry::new();
        let m0 = StreamMetrics::register_shard(&registry, Some(0));
        let m1 = StreamMetrics::register_shard(&registry, Some(1));
        m0.monitor_lag.set_u64(3);
        m1.monitor_lag.set_u64(9);
        let text = registry.render();
        assert!(text.contains("cf_stream_monitor_lag{shard=\"0\"} 3"));
        assert!(text.contains("cf_stream_monitor_lag{shard=\"1\"} 9"));
        // Re-registration returns the same instruments.
        let again = StreamMetrics::register_shard(&registry, Some(0));
        again.ingest_batches.inc();
        m0.ingest_batches.inc();
        assert_eq!(again.ingest_batches.get(), 2);
    }
}
