//! Intersectional group layouts: map tuples of protected attributes to
//! the flat cell ids the stream stack monitors.
//!
//! The engines are deliberately **axis-agnostic**: they monitor `K` flat
//! group cells ([`StreamConfig::groups`](crate::StreamConfig::groups)) and
//! never ask where a cell id came from. `GroupLayout` is the deployment-
//! side companion that gives those ids intersectional meaning — it fixes
//! an ordered list of protected axes (say `sex × race`, sizes `[2, 4]`)
//! and flattens each attribute combination into one cell id, row-major:
//! `cell = ((a_0 * n_1) + a_1) * n_2 + a_2 …`. Feed the flattened id into
//! [`StreamTuple::group`](crate::StreamTuple::group) and every per-cell
//! structure — counters, conformance profiles, Page–Hinkley detectors,
//! worst-pair DI* — monitors the *intersection* cells, which is exactly
//! the reading Salazar et al.'s subgroup-drift setting shows pairwise
//! monitoring of any single collapsed axis cannot produce.
//!
//! Because the windowed counters are additive, a parent axis's marginal
//! cells are recovered exactly by summation ([`GroupLayout::marginal`]):
//! the intersection cells of a layout always sum to their parents, with
//! no second pass over the stream.

use crate::window::GroupCounts;
use crate::{Result, StreamError};

/// An ordered product of protected axes flattened into `0..K` cell ids
/// (row-major, last axis fastest).
///
/// ```
/// use cf_stream::GroupLayout;
///
/// // sex (2) × race (4) → K = 8 intersection cells.
/// let layout = GroupLayout::new(vec![2, 4])?;
/// assert_eq!(layout.cells(), 8);
/// assert_eq!(layout.cell_of(&[1, 2])?, 6);
/// assert_eq!(layout.coords_of(6), vec![1, 2]);
/// # Ok::<(), cf_stream::StreamError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupLayout {
    axes: Vec<usize>,
    cells: usize,
}

impl GroupLayout {
    /// Build a layout from the per-axis cardinalities. The product of the
    /// sizes is the `K` to configure the engine with
    /// ([`StreamConfig::groups`](crate::StreamConfig::groups)).
    ///
    /// # Errors
    /// [`StreamError::Schema`] when there are no axes, an axis is empty,
    /// or the product exceeds 256 (cell ids travel as `u8`).
    pub fn new(axes: Vec<usize>) -> Result<Self> {
        if axes.is_empty() {
            return Err(StreamError::Schema(
                "a group layout needs at least one axis".into(),
            ));
        }
        let mut cells: usize = 1;
        for (i, &n) in axes.iter().enumerate() {
            if n == 0 {
                return Err(StreamError::Schema(format!(
                    "axis {i} of the group layout has zero cells"
                )));
            }
            cells = cells.saturating_mul(n);
            if cells > 256 {
                return Err(StreamError::Schema(format!(
                    "the axis product exceeds 256 cells (group ids are u8); \
                     got {:?}",
                    axes
                )));
            }
        }
        Ok(GroupLayout { axes, cells })
    }

    /// The flattened cell count `K` — the value for
    /// [`StreamConfig::groups`](crate::StreamConfig::groups).
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// The per-axis cardinalities this layout was built from.
    pub fn axes(&self) -> &[usize] {
        &self.axes
    }

    /// Flatten one combination of per-axis attribute values into its cell
    /// id (row-major, last axis fastest).
    ///
    /// # Errors
    /// [`StreamError::Schema`] when the coordinate count disagrees with
    /// the axis count or any coordinate is out of its axis's range.
    pub fn cell_of(&self, coords: &[usize]) -> Result<u8> {
        if coords.len() != self.axes.len() {
            return Err(StreamError::Schema(format!(
                "{} coordinates for a {}-axis layout",
                coords.len(),
                self.axes.len()
            )));
        }
        let mut cell = 0usize;
        for (i, (&c, &n)) in coords.iter().zip(&self.axes).enumerate() {
            if c >= n {
                return Err(StreamError::Schema(format!(
                    "coordinate {c} is outside axis {i}'s 0..{n} range"
                )));
            }
            cell = cell * n + c;
        }
        Ok(cell as u8)
    }

    /// Recover the per-axis coordinates of a flattened cell id (the
    /// inverse of [`GroupLayout::cell_of`]; ids are taken modulo `K`).
    pub fn coords_of(&self, cell: u8) -> Vec<usize> {
        let mut rest = usize::from(cell) % self.cells;
        let mut coords = vec![0usize; self.axes.len()];
        for (slot, &n) in coords.iter_mut().zip(&self.axes).rev() {
            *slot = rest % n;
            rest /= n;
        }
        coords
    }

    /// Collapse per-cell windowed counters onto one axis: entry `a` of the
    /// result sums every intersection cell whose coordinate on `axis` is
    /// `a`. Exact, because every [`GroupCounts`] field is additive — the
    /// marginal a binary deployment would have monitored directly is
    /// recomputed from the intersection cells with no second pass.
    ///
    /// # Errors
    /// [`StreamError::Schema`] when `axis` is out of range or the counter
    /// slice does not have one entry per cell.
    pub fn marginal(&self, counts: &[GroupCounts], axis: usize) -> Result<Vec<GroupCounts>> {
        if axis >= self.axes.len() {
            return Err(StreamError::Schema(format!(
                "axis {axis} is outside the {}-axis layout",
                self.axes.len()
            )));
        }
        if counts.len() != self.cells {
            return Err(StreamError::Schema(format!(
                "{} counter cells for a {}-cell layout",
                counts.len(),
                self.cells
            )));
        }
        let mut merged = vec![GroupCounts::default(); self.axes[axis]];
        for (cell, c) in counts.iter().enumerate() {
            merged[self.coords_of(cell as u8)[axis]].merge(c);
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_and_unflatten_are_inverse() {
        let layout = GroupLayout::new(vec![2, 3, 2]).unwrap();
        assert_eq!(layout.cells(), 12);
        for cell in 0..12u8 {
            let coords = layout.coords_of(cell);
            assert_eq!(layout.cell_of(&coords).unwrap(), cell);
        }
        // Row-major, last axis fastest.
        assert_eq!(layout.cell_of(&[0, 0, 1]).unwrap(), 1);
        assert_eq!(layout.cell_of(&[0, 1, 0]).unwrap(), 2);
        assert_eq!(layout.cell_of(&[1, 0, 0]).unwrap(), 6);
    }

    #[test]
    fn bad_layouts_and_coords_are_typed_errors() {
        assert!(GroupLayout::new(vec![]).is_err());
        assert!(GroupLayout::new(vec![4, 0]).is_err());
        assert!(GroupLayout::new(vec![32, 16]).is_err(), "512 > 256 cells");
        let layout = GroupLayout::new(vec![2, 4]).unwrap();
        assert!(layout.cell_of(&[1]).is_err());
        assert!(layout.cell_of(&[1, 4]).is_err());
    }

    #[test]
    fn marginals_sum_the_intersection_cells_exactly() {
        let layout = GroupLayout::new(vec![2, 3]).unwrap();
        let counts: Vec<GroupCounts> = (0..6)
            .map(|i| GroupCounts {
                total: 10 + i,
                selected: i,
                violations: i / 2,
                labeled: 5 + i,
                label_positive: 2 + i,
                true_positive: 1 + i,
                false_positive: i,
            })
            .collect();
        let sex = layout.marginal(&counts, 0).unwrap();
        assert_eq!(sex.len(), 2);
        assert_eq!(sex[0].total, 10 + 11 + 12);
        assert_eq!(sex[1].total, 13 + 14 + 15);
        let race = layout.marginal(&counts, 1).unwrap();
        assert_eq!(race.len(), 3);
        assert_eq!(race[1].selected, 1 + 4);
        assert_eq!(race[2].labeled, (5 + 2) + (5 + 5));
        // Every marginal's grand total equals the intersection total.
        let grand: u64 = counts.iter().map(|c| c.total).sum();
        assert_eq!(sex.iter().map(|c| c.total).sum::<u64>(), grand);
        assert_eq!(race.iter().map(|c| c.total).sum::<u64>(), grand);
        assert!(layout.marginal(&counts, 2).is_err());
        assert!(layout.marginal(&counts[..5], 0).is_err());
    }
}
