//! The serve-time repair escalation ladder: three tiers of fairness
//! repair ordered by cost, climbed only as cheaper rungs fail.
//!
//! 1. **Threshold nudge** (µs) — per-cell decision thresholds recomputed
//!    online from the decision-plane counters. The disadvantaged cell of
//!    the worst DI* pair gets its margin cutoff lowered by
//!    [`RepairConfig::nudge_step`](crate::RepairConfig) per unhealthy
//!    batch (clamped at `nudge_max`), lifting its selection rate — the
//!    post-processing threshold correction of Asiaee & Aryan, which needs
//!    **no labels**: exactly what the label-free decision plane provides.
//! 2. **DiffFair projection** (ms) — the model's margin is routed through
//!    the monitor's per-cell `ConstraintFamily` conformance profiles on
//!    the serving path: a row that conforms better to the accepted-class
//!    profile of its cell has its margin boosted by the conformance gap,
//!    and vice versa (the `difffair.rs` routing idiom applied to one
//!    model's boundary instead of two models).
//! 3. **Full ConFair retrain** — the existing repair episode
//!    ([`Monitor::retrain`](crate::Monitor::retrain) under the bounded
//!    retry budget), now the *last* rung, entered only after the cheap
//!    tiers have failed to lift DI* for
//!    [`RepairConfig::tier_patience`](crate::RepairConfig) batches each.
//!
//! The ladder is **off by default** (`RepairConfig::ladder == false`) and
//! all-zero thresholds with no projection take the exact pre-ladder
//! scoring path — the `tests/repair_ladder.rs` golden fixtures pin that
//! equivalence byte for byte. State machine: an episode opens when the
//! windowed DI* reading fails the floor, escalates monotonically
//! (1 → 2 → 3), de-escalates (episode closes) after
//! `recovery_hold` consecutive passing batches — repairs stay installed;
//! they are what restored fairness — and only a successful tier-3 retrain
//! resets thresholds and projection to the identity. A tier-3 episode
//! that exhausts its budget drops back to tier 2 with degraded mode
//! flagged: tiers 1–2 keep serving repairs while the retrain path is
//! down.

use crate::monitor::CellProfiles;

/// One rung of the repair escalation ladder, cheapest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RepairTier {
    /// Tier 1: per-cell decision-threshold nudges (µs; label-free).
    ThresholdNudge,
    /// Tier 2: conformance-profile margin projection on the serving path.
    DiffFairProjection,
    /// Tier 3: the full on-window ConFair retrain episode.
    ConFairRetrain,
}

impl RepairTier {
    /// The tier name as it appears on the audit trail
    /// (`repair_start`/`repair_end`/`threshold_change` events).
    pub fn wire_name(self) -> &'static str {
        match self {
            RepairTier::ThresholdNudge => "threshold_nudge",
            RepairTier::DiffFairProjection => "difffair_projection",
            RepairTier::ConFairRetrain => "confair_retrain",
        }
    }

    /// 1-based rung index (checkpoint encoding; 0 encodes "no episode").
    pub fn index(self) -> u8 {
        match self {
            RepairTier::ThresholdNudge => 1,
            RepairTier::DiffFairProjection => 2,
            RepairTier::ConFairRetrain => 3,
        }
    }

    /// Decode a checkpointed rung index.
    pub fn from_index(index: u8) -> Option<Self> {
        match index {
            1 => Some(RepairTier::ThresholdNudge),
            2 => Some(RepairTier::DiffFairProjection),
            3 => Some(RepairTier::ConFairRetrain),
            _ => None,
        }
    }

    /// The next rung up, if any.
    pub fn next(self) -> Option<Self> {
        match self {
            RepairTier::ThresholdNudge => Some(RepairTier::DiffFairProjection),
            RepairTier::DiffFairProjection => Some(RepairTier::ConFairRetrain),
            RepairTier::ConFairRetrain => None,
        }
    }
}

/// The monitor-side ladder state: which rung an open episode is on, how
/// long it has sat there, and the repair artifacts (thresholds,
/// projection flag) the scorer must mirror. Plain owned data — `Clone`
/// travels with monitor clones for supervision and checkpointing.
#[derive(Debug, Clone)]
pub struct RepairLadder {
    /// The rung of the open repair episode, or `None` when idle.
    pub(crate) active: Option<RepairTier>,
    /// Unhealthy batches observed on the current rung (escalates at
    /// `tier_patience`).
    pub(crate) batches_in_tier: u64,
    /// Consecutive floor-passing batches while an episode is open
    /// (de-escalates at `recovery_hold`).
    pub(crate) recovery_streak: u64,
    /// Per-cell margin cutoffs (`decision = margin >= thresholds[cell]`);
    /// all zeros is the identity.
    pub(crate) thresholds: Vec<f64>,
    /// Whether the tier-2 conformance projection is installed.
    pub(crate) projection: bool,
    /// Repair work (µs) accumulated by the open episode — what
    /// `repair_end` reports as the tier's repair-to-recovery cost.
    pub(crate) work_us: u64,
}

impl RepairLadder {
    /// An idle ladder over `cells` group cells (identity thresholds).
    pub fn idle(cells: usize) -> Self {
        RepairLadder {
            active: None,
            batches_in_tier: 0,
            recovery_streak: 0,
            thresholds: vec![0.0; cells],
            projection: false,
            work_us: 0,
        }
    }

    /// Whether thresholds and projection are both the identity (the
    /// scorer may take the pre-ladder fast path).
    pub fn is_identity(&self) -> bool {
        !self.projection && self.thresholds.iter().all(|&t| t == 0.0)
    }

    /// The rung of the open episode, if one is open.
    pub fn active(&self) -> Option<RepairTier> {
        self.active
    }

    /// The per-cell margin cutoffs currently installed.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// Reset every repair artifact to the identity (a successful retrain
    /// re-profiled the stream; the old corrections no longer apply).
    pub(crate) fn reset_artifacts(&mut self) {
        self.thresholds.iter_mut().for_each(|t| *t = 0.0);
        self.projection = false;
    }
}

/// A full repair-state publication from monitor to scorer: absolute
/// thresholds plus the projection profiles when tier 2 is installed.
/// Carries complete state (not deltas), so the async engine's
/// latest-wins swap slot is safe to collapse intermediate updates.
pub struct RepairUpdate {
    /// The rung of the open episode after the batch that produced this
    /// update (observability only; the scorer ignores it).
    pub tier: Option<RepairTier>,
    /// Per-cell margin cutoffs to install.
    pub(crate) thresholds: Vec<f64>,
    /// `Some(profiles)` installs the tier-2 conformance projection;
    /// `None` uninstalls it.
    pub(crate) projection: Option<CellProfiles>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_indices_round_trip_and_order_monotone() {
        for tier in [
            RepairTier::ThresholdNudge,
            RepairTier::DiffFairProjection,
            RepairTier::ConFairRetrain,
        ] {
            assert_eq!(RepairTier::from_index(tier.index()), Some(tier));
        }
        assert_eq!(RepairTier::from_index(0), None);
        assert_eq!(RepairTier::from_index(4), None);
        assert_eq!(
            RepairTier::ThresholdNudge.next(),
            Some(RepairTier::DiffFairProjection)
        );
        assert_eq!(
            RepairTier::DiffFairProjection.next(),
            Some(RepairTier::ConFairRetrain)
        );
        assert_eq!(RepairTier::ConFairRetrain.next(), None);
        assert!(RepairTier::ThresholdNudge < RepairTier::ConFairRetrain);
    }

    #[test]
    fn idle_ladder_is_the_identity() {
        let mut ladder = RepairLadder::idle(4);
        assert!(ladder.is_identity());
        assert_eq!(ladder.thresholds(), &[0.0; 4]);
        ladder.thresholds[2] = -0.25;
        ladder.projection = true;
        assert!(!ladder.is_identity());
        ladder.reset_artifacts();
        assert!(ladder.is_identity());
    }
}
