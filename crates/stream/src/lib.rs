//! # cf-stream
//!
//! Online fairness-drift monitoring and serving for the ConFair
//! reproduction — the paper's "unfairness is data drift" lens applied to a
//! live stream instead of a static test split.
//!
//! The engine is split into two composable, `Send` halves:
//!
//! * [`scorer::Scorer`] — the latency-critical path: feature encoding,
//!   predictor, and the recycled scratch matrix, allocation-free in steady
//!   state and free of any monitoring state;
//! * [`monitor::Monitor`] — the lag-tolerant path: sliding window,
//!   conformance profiles, per-group Page–Hinkley detectors, alert log,
//!   and the retrain policy.
//!
//! [`StreamEngine`] composes them synchronously (score → observe → install
//! on one thread, exactly the pre-split behaviour);
//! [`async_engine::AsyncEngine`] composes them as a pipeline — `ingest`
//! returns decisions straight off the forward pass while a background
//! thread drains a bounded queue into the monitor and publishes retrained
//! models back through an atomically-swapped slot.
//!
//! Ground truth is **optional and deferrable**: tuples may arrive
//! unlabeled, the decision-plane monitors (selection rates, DI/DP,
//! Page–Hinkley on decision-conformance) run immediately, and late labels
//! join through `feedback` — by tuple id, into the label-plane monitors
//! (TPR/FPR, equal opportunity) — even after the tuple has rotated out of
//! the window, via a bounded pending-join index.
//!
//! The moving parts inside the monitor half:
//!
//! * [`window::SlidingWindow`] — the two-plane window: a decision ring
//!   over the most recent scored tuples, a label ring over joined
//!   `(decision, label)` pairs, and the pending-join index, all with
//!   per-group counters maintained in O(1) per event;
//! * [`monitor::FairnessSnapshot`] — disparate impact with the EEOC
//!   four-fifths rule, demographic-parity and equal-opportunity gaps, and
//!   per-group conformance-violation rates, all read from the counters in
//!   O(1) (label-dependent readings stay `None` until ground truth joins);
//! * [`drift::PageHinkley`] — a per-group change-point test on the
//!   violation series, emitting typed [`drift::DriftAlert`] events with
//!   warm-up and cooldown hysteresis;
//! * a retraining hook ([`engine::RetrainPolicy::OnAlert`]) that re-runs
//!   ConFair on the window's contents and re-profiles the stream's new
//!   normal;
//! * [`sharded::ShardedEngine`] — a router over N independent per-shard
//!   engines with parallel ingest and exact cross-shard aggregate
//!   snapshots, the path from one stream to partitioned production
//!   traffic;
//! * [`checkpoint::EngineCheckpoint`] — versioned, durable
//!   checkpoint/restore for both engines: a restored monitor resumes
//!   bit-identically, with no warm-up gap and no re-alert storm.
//!
//! See `examples/stream_monitor.rs` and `examples/checkpoint_restore.rs`
//! for the end-to-end scenarios and `crates/bench/benches/stream_ingest.rs`
//! for the throughput benchmark.

#![warn(missing_docs)]

pub mod async_engine;
pub mod checkpoint;
pub mod drift;
pub mod engine;
#[cfg(feature = "fault-injection")]
pub mod faults;
pub mod groups;
pub mod monitor;
pub mod repair;
pub mod scorer;
pub mod sharded;
pub mod supervise;
pub mod telemetry;
pub mod window;

pub use async_engine::{AsyncConfig, AsyncEngine, BackpressurePolicy, DropCounters};
pub use checkpoint::{EngineCheckpoint, ShardedCheckpoint, CHECKPOINT_VERSION};
pub use drift::{DriftAlert, DriftKind, PageHinkley, PageHinkleyConfig, PageHinkleyState};
pub use engine::{
    IngestOutcome, LabelFeedback, RetrainPolicy, StreamConfig, StreamEngine, StreamTuple,
};
#[cfg(feature = "fault-injection")]
pub use faults::{FaultKind, FaultPlan, MonitorPanics, RetrainFaults};
pub use groups::GroupLayout;
pub use monitor::{FairnessSnapshot, FeedbackOutcome, Monitor, ObserveOutcome};
pub use repair::{RepairLadder, RepairTier, RepairUpdate};
pub use scorer::Scorer;
pub use sharded::{
    ShardedAsyncEngine, ShardedEngine, ShardedFeedback, ShardedOutcome, ShardedTuple,
};
pub use supervise::{Backoff, RepairConfig, ShardHealth, SupervisorConfig};
pub use telemetry::StreamMetrics;
pub use window::{
    GroupCounts, JoinStats, LabelJoin, LabelSlot, PendingLabel, SlidingWindow, SlotMeta,
    WindowState,
};

/// Errors surfaced by the streaming subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A window must retain at least one tuple.
    EmptyWindow,
    /// Group cell ids live in `0..K` ([`StreamConfig::groups`]; the
    /// binary default is 0 = majority, 1 = minority).
    BadGroup(u8),
    /// Labels are binary.
    BadLabel(u8),
    /// The batch does not match the reference schema, or dataset assembly
    /// failed.
    Schema(String),
    /// Bootstrapping needs a non-empty reference dataset.
    EmptyReference,
    /// The window cannot support the requested operation (e.g. retraining
    /// on a single-class window).
    DegenerateWindow(String),
    /// An error from the core training/prediction stack.
    Core(String),
    /// A sharded engine needs at least one shard.
    NoShards,
    /// Shard engines disagree on configuration that shapes cross-shard
    /// aggregates (e.g. the DI* floor).
    ConfigMismatch(String),
    /// A tuple was routed to a shard id outside the engine's range.
    BadShard {
        /// The offending shard id.
        shard: u32,
        /// How many shards the engine has.
        shards: usize,
    },
    /// A checkpoint is malformed, internally inconsistent, or unusable
    /// (e.g. truncated JSON, a window snapshot wider than its schema, or a
    /// predictor that does not support checkpointing).
    Checkpoint(String),
    /// A checkpoint was written by an incompatible format version.
    CheckpointVersion {
        /// The version recorded in the checkpoint document.
        found: u32,
        /// The version this build reads and writes
        /// ([`checkpoint::CHECKPOINT_VERSION`]).
        expected: u32,
    },
    /// The async pipeline is unusable (the background monitor thread is
    /// gone or panicked).
    Async(String),
    /// Label feedback referenced a tuple id that has not been served yet —
    /// a caller bug, unlike feedback for forgotten tuples, which is merely
    /// counted.
    FutureFeedback {
        /// The offending tuple id.
        id: u64,
        /// Ids issued so far (valid feedback keys are `0..issued`).
        issued: u64,
    },
    /// A retrain attempt panicked; the panic was contained by the repair
    /// loop and converted into this error so the stale model keeps
    /// serving.
    RetrainPanicked(String),
    /// A deterministic fault-injection seam fired (only ever produced
    /// under the `fault-injection` feature, by an installed
    /// `FaultPlan`).
    Injected(String),
}

impl StreamError {
    pub(crate) fn from_core(e: impl std::fmt::Display) -> Self {
        StreamError::Core(e.to_string())
    }
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::EmptyWindow => write!(f, "window capacity must be positive"),
            StreamError::BadGroup(g) => {
                write!(f, "group id {g} is outside the configured 0..K cell range")
            }
            StreamError::BadLabel(l) => write!(f, "label {l} is not binary"),
            StreamError::Schema(msg) => write!(f, "schema error: {msg}"),
            StreamError::EmptyReference => write!(f, "reference dataset is empty"),
            StreamError::DegenerateWindow(msg) => write!(f, "degenerate window: {msg}"),
            StreamError::Core(msg) => write!(f, "core error: {msg}"),
            StreamError::NoShards => write!(f, "a sharded engine needs at least one shard"),
            StreamError::ConfigMismatch(msg) => write!(f, "shard config mismatch: {msg}"),
            StreamError::BadShard { shard, shards } => {
                write!(f, "shard id {shard} out of range for {shards} shards")
            }
            StreamError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            StreamError::Async(msg) => write!(f, "async engine error: {msg}"),
            StreamError::FutureFeedback { id, issued } => write!(
                f,
                "label feedback for tuple id {id}, but only ids below {issued} have been served"
            ),
            StreamError::CheckpointVersion { found, expected } => {
                write!(
                    f,
                    "checkpoint version {found} (this build reads {expected})"
                )
            }
            StreamError::RetrainPanicked(msg) => {
                write!(f, "a retrain attempt panicked: {msg}")
            }
            StreamError::Injected(msg) => write!(f, "injected fault: {msg}"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, StreamError>;
