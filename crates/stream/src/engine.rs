//! The online scoring and monitoring engine.
//!
//! [`StreamEngine`] bootstraps from a labeled reference dataset: it trains
//! a fairness-intervened model (ConFair) and profiles every (group, label)
//! cell with conformance constraints. Micro-batches then flow through
//! [`StreamEngine::ingest`]: each tuple is scored, checked against its
//! cell's reference constraints, folded into the sliding window's O(1)
//! counters, and fed to its group's Page–Hinkley detector. Alerts are typed
//! [`DriftAlert`] events; with [`RetrainPolicy::OnAlert`] the engine
//! re-runs ConFair on the window's contents — the non-invasive repair loop
//! the paper's drift framing implies.
//!
//! Since the engine split, `StreamEngine` is a thin *synchronous*
//! composition of the two halves that do the actual work: a
//! [`Scorer`] (the latency-critical forward pass) and a
//! [`Monitor`] (window, detectors, profiles, retrain
//! policy). `ingest` runs score → observe → install back-to-back on the
//! caller's thread, so its behaviour is exactly the pre-split engine's;
//! [`AsyncEngine`](crate::AsyncEngine) composes the same two halves across
//! a bounded queue instead, returning decisions without waiting for the
//! monitoring work.

use crate::checkpoint::EngineCheckpoint;
use crate::drift::{DriftAlert, PageHinkley, PageHinkleyConfig};
use crate::monitor::{CellProfiles, FairnessSnapshot, Monitor};
use crate::repair::{RepairLadder, RepairTier};
use crate::scorer::Scorer;
use crate::supervise::RepairConfig;
use crate::telemetry::StreamMetrics;
use crate::window::{GroupCounts, SlidingWindow};
use crate::{Result, StreamError};
use cf_data::{
    split::{split3_stratified, SplitRatios},
    Dataset,
};
use cf_learners::LearnerKind;
use cf_telemetry::{MetricsRegistry, SharedSink};
use confair_core::{confair::ConFair, confair::ConFairConfig, Intervention};
use std::borrow::Borrow;

/// One arriving observation: features in the reference schema's column
/// order, the sensitive-group id, and — when serving is lucky enough to
/// have it already — the ground-truth label. Real feedback loops deliver
/// labels late or never, so `label` is optional: an unlabeled tuple is
/// served and drift-monitored normally (decision plane), and its ground
/// truth joins later through [`StreamEngine::feedback`] keyed by the
/// tuple id the engine assigned at ingest
/// ([`IngestOutcome::first_id`] + offset).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamTuple {
    /// Numeric attribute values, one per reference column.
    pub features: Vec<f64>,
    /// Group cell id, `0..K` (the default binary layout is 0 = majority
    /// `W`, 1 = minority `U`; `K` is [`StreamConfig::groups`]).
    pub group: u8,
    /// Ground-truth label, if already known at ingest; `None` defers it to
    /// a later feedback join.
    pub label: Option<u8>,
}

impl StreamTuple {
    /// Convert a (fully numeric) dataset's rows into labeled stream
    /// tuples, in row order — the bridge from `cf-datasets` generators to
    /// the engine.
    pub fn rows_from_dataset(data: &Dataset) -> Result<Vec<StreamTuple>> {
        Self::rows_inner(data, true)
    }

    /// [`StreamTuple::rows_from_dataset`] with the ground truth withheld:
    /// every tuple arrives with `label: None`, the delayed/partial-label
    /// serving regime (deliver the dataset's labels later through
    /// [`StreamEngine::feedback`]).
    pub fn rows_unlabeled_from_dataset(data: &Dataset) -> Result<Vec<StreamTuple>> {
        Self::rows_inner(data, false)
    }

    fn rows_inner(data: &Dataset, labeled: bool) -> Result<Vec<StreamTuple>> {
        ensure_all_numeric(data)?;
        // Gather straight from the column storage instead of materialising
        // the full `numeric_matrix` and then copying every row again.
        let columns: Vec<&[f64]> = (0..data.num_attributes())
            .map(|j| {
                data.column(j)
                    .as_numeric()
                    .expect("ensure_all_numeric guarantees numeric columns")
            })
            .collect();
        Ok((0..data.len())
            .map(|i| StreamTuple {
                features: columns.iter().map(|c| c[i]).collect(),
                group: data.groups()[i],
                label: labeled.then(|| data.labels()[i]),
            })
            .collect())
    }
}

/// One late-arriving ground-truth record, joined into the label plane by
/// [`StreamEngine::feedback`] (or its async/sharded counterparts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelFeedback {
    /// The tuple's stream id: [`IngestOutcome::first_id`] plus the tuple's
    /// offset within its ingest batch.
    pub id: u64,
    /// The ground-truth label.
    pub label: u8,
}

/// When the engine retrains itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainPolicy {
    /// Monitor only; callers may still invoke
    /// [`StreamEngine::retrain_now`] themselves.
    Never,
    /// Re-run ConFair on the window after any alert, provided the window
    /// holds at least `min_window` tuples.
    OnAlert {
        /// Minimum window fill before a retrain is meaningful.
        min_window: usize,
    },
}

impl serde::Serialize for RetrainPolicy {
    fn to_value(&self) -> serde::Value {
        match self {
            RetrainPolicy::Never => serde::Value::String("never".into()),
            RetrainPolicy::OnAlert { min_window } => serde::Value::Object(vec![(
                "on_alert".into(),
                serde::Value::Object(vec![("min_window".into(), min_window.to_value())]),
            )]),
        }
    }
}

impl serde::Deserialize for RetrainPolicy {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        if v.as_str() == Some("never") {
            return Ok(RetrainPolicy::Never);
        }
        if let Some(on_alert) = v.get("on_alert") {
            return Ok(RetrainPolicy::OnAlert {
                min_window: serde::Deserialize::from_value(on_alert.get_or_err("min_window")?)?,
            });
        }
        Err(serde::Error::msg("unknown retrain policy"))
    }
}

/// Engine configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StreamConfig {
    /// Sliding-window capacity (tuples).
    pub window: usize,
    /// Per-group Page–Hinkley settings for the violation series.
    pub detector: PageHinkleyConfig,
    /// The EEOC four-fifths floor on windowed DI*.
    pub di_floor: f64,
    /// Tuples required in the window before the DI floor is judged.
    pub floor_min_window: usize,
    /// Tuples to wait between consecutive floor alerts (hysteresis).
    pub floor_cooldown: u64,
    /// A tuple violates its cell's constraints when the violation exceeds
    /// this threshold.
    pub conformance_eps: f64,
    /// Minimum cell population in the reference before a constraint
    /// profile is derived for it.
    pub min_profile_rows: usize,
    /// Bound on the pending-join index: how many tuples evicted from the
    /// window while still unlabeled are remembered so their ground truth
    /// can join late. Oldest entries are dropped (and counted) beyond the
    /// bound; size it to `expected label delay − window` tuples, 0 to
    /// forget unlabeled tuples at eviction.
    pub pending_labels: usize,
    /// The ConFair configuration used for the initial fit and for
    /// retraining (its `learn_opts` also drive the reference profiles).
    pub confair: ConFairConfig,
    /// Retraining behaviour.
    pub retrain: RetrainPolicy,
    /// Retry/timeout budget for an on-alert repair episode; exhausting it
    /// flips the engine into degraded mode (stale model keeps serving).
    pub repair: RepairConfig,
    /// Number of group cells `K` (`1..=256`): tuples carry a group id in
    /// `0..K`, and every per-group structure — windowed counters,
    /// conformance profiles, Page–Hinkley detectors — is sized to `K` at
    /// construction. The default, 2, is the paper's binary
    /// majority/minority layout; intersectional monitoring flattens an
    /// axis product into one cell id per combination (see
    /// [`GroupLayout`](crate::GroupLayout)).
    pub groups: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window: 2_000,
            detector: PageHinkleyConfig::default(),
            di_floor: 0.8,
            floor_min_window: 400,
            floor_cooldown: 2_000,
            conformance_eps: 1e-9,
            min_profile_rows: 8,
            pending_labels: 4_096,
            confair: ConFairConfig::default(),
            retrain: RetrainPolicy::Never,
            repair: RepairConfig::default(),
            groups: 2,
        }
    }
}

/// What one `ingest` call produced.
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// The stream id assigned to the batch's first tuple; tuple `k` of the
    /// batch has id `first_id + k`. These ids are the join keys that later
    /// [`LabelFeedback`] records address.
    pub first_id: u64,
    /// The served decision for each tuple of the batch, in order.
    pub decisions: Vec<u8>,
    /// Alerts raised by this batch (also appended to the engine's log).
    pub alerts: Vec<DriftAlert>,
    /// The windowed fairness reading after the batch.
    pub snapshot: FairnessSnapshot,
    /// Whether the retraining hook ran successfully.
    pub retrained: bool,
    /// Why an attempted on-alert retrain failed, if it did. The batch's
    /// decisions and alerts above are valid either way — a retrain
    /// failure never invalidates the serving work already done.
    pub retrain_error: Option<StreamError>,
}

/// The online fairness-drift monitoring and serving engine — a synchronous
/// composition of a [`Scorer`] and a
/// [`Monitor`].
///
/// # Example
///
/// Bootstrap from reference data, serve a micro-batch, then checkpoint and
/// restore — the restored engine picks up at the exact same state:
///
/// ```
/// use cf_datasets::stream::{DriftStream, DriftStreamSpec};
/// use cf_learners::LearnerKind;
/// use cf_stream::{EngineCheckpoint, StreamConfig, StreamEngine, StreamTuple};
/// use confair_core::confair::{AlphaMode, ConFairConfig};
///
/// let spec = DriftStreamSpec::default();
/// let reference = spec.reference(600, 7);
/// let config = StreamConfig {
///     window: 256,
///     // Fixed degrees skip the α grid search — quick to bootstrap.
///     confair: ConFairConfig {
///         alpha: AlphaMode::Fixed { alpha_u: 2.0, alpha_w: 1.0 },
///         ..ConFairConfig::default()
///     },
///     ..StreamConfig::default()
/// };
/// let mut engine = StreamEngine::from_reference(&reference, LearnerKind::Logistic, 7, config)?;
///
/// let mut stream = DriftStream::new(spec, 1);
/// let batch = StreamTuple::rows_from_dataset(&stream.next_batch(100))?;
/// let outcome = engine.ingest(&batch)?;
/// assert_eq!(outcome.decisions.len(), 100);
/// println!("{}", outcome.snapshot); // windowed DI*, gaps, violation rates
///
/// // Durable state: round-trip through JSON, restore, same position.
/// let document = engine.checkpoint()?.to_json();
/// let restored = StreamEngine::restore(EngineCheckpoint::from_json(&document)?)?;
/// assert_eq!(restored.tuples_seen(), engine.tuples_seen());
/// assert_eq!(restored.snapshot(), engine.snapshot());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct StreamEngine {
    scorer: Scorer,
    monitor: Monitor,
    /// Serving-side metrics handles ([`StreamEngine::install_metrics`]);
    /// the monitor half carries its own clone.
    metrics: Option<StreamMetrics>,
}

impl StreamEngine {
    /// Bootstrap from a labeled, fully numeric reference dataset: train
    /// ConFair on a stratified split and derive per-cell conformance
    /// profiles from the full reference.
    pub fn from_reference(
        reference: &Dataset,
        learner: LearnerKind,
        seed: u64,
        config: StreamConfig,
    ) -> Result<Self> {
        let monitor = Monitor::from_reference(reference, learner, config)?;
        let split = split3_stratified(reference, SplitRatios::paper_default(), seed);
        let predictor = ConFair::new(monitor.config().confair.clone())
            .train(&split.train, &split.validation, learner)
            .map_err(StreamError::from_core)?;
        let scorer = Scorer::new(monitor.schema().to_vec(), predictor);
        Ok(StreamEngine {
            scorer,
            monitor,
            metrics: None,
        })
    }

    /// Install a telemetry sink: every observable state change — ingest
    /// batches with per-cell counter deltas, alerts with moved-cell
    /// explanations, repair start/end, model swaps, checkpoints, feedback
    /// joins — is emitted as a [`cf_telemetry::TelemetryEvent`]. With no
    /// sink installed (the default) the emission paths are skipped
    /// entirely. For an async pipeline, install on the inner engine
    /// *before* [`AsyncEngine::from_engine`](crate::AsyncEngine::from_engine)
    /// so the sink travels with the monitor to its thread.
    pub fn set_sink(&mut self, sink: SharedSink) {
        self.monitor.set_sink(sink);
    }

    /// Register this engine's instruments on `registry` (see
    /// [`StreamMetrics`] for the families) and start keeping them fresh.
    /// Both halves share the handles, so they survive an
    /// [`StreamEngine::into_parts`] split and the async wrap.
    pub fn install_metrics(&mut self, registry: &MetricsRegistry) {
        let metrics = StreamMetrics::register(registry);
        self.monitor.set_metrics(metrics.clone());
        self.metrics = Some(metrics);
    }

    /// Install pre-registered metrics handles (the sharded router's path,
    /// where each shard gets a labeled instrument set).
    pub fn set_metrics(&mut self, metrics: StreamMetrics) {
        self.monitor.set_metrics(metrics.clone());
        self.metrics = Some(metrics);
    }

    /// The engine's metrics handles, if installed.
    pub fn metrics(&self) -> Option<&StreamMetrics> {
        self.metrics.as_ref()
    }

    /// Reunite the two halves into a synchronous engine (the inverse of
    /// [`StreamEngine::into_parts`]).
    ///
    /// # Errors
    /// [`StreamError::Schema`] when the halves disagree on the reference
    /// schema — composing a scorer with somebody else's monitor would
    /// silently mis-evaluate every conformance constraint.
    pub fn from_parts(scorer: Scorer, monitor: Monitor) -> Result<Self> {
        if scorer.schema() != monitor.schema() {
            return Err(StreamError::Schema(format!(
                "scorer schema {:?} disagrees with monitor schema {:?}",
                scorer.schema(),
                monitor.schema()
            )));
        }
        let metrics = monitor.metrics.clone();
        let mut scorer = scorer;
        // Re-arm the serving overlay from the monitor's ladder state: the
        // halves may have been apart (async pipeline) with a repair
        // publication still in flight when they reunite. Identity state
        // re-applies as the identity, so this never perturbs a
        // ladder-free engine.
        scorer.apply_repair(monitor.repair_update());
        Ok(StreamEngine {
            scorer,
            monitor,
            metrics,
        })
    }

    /// Split the engine into its serving and monitoring halves — the seam
    /// the async engine builds on (the scorer stays on the caller's
    /// thread, the monitor moves behind the queue).
    pub fn into_parts(self) -> (Scorer, Monitor) {
        (self.scorer, self.monitor)
    }

    /// Score and monitor one micro-batch. O(1) work per tuple beyond the
    /// model's forward pass: counter updates, one constraint evaluation,
    /// and one Page–Hinkley step.
    ///
    /// # Errors
    /// Batch validation errors (schema, group, label) reject the whole
    /// batch before anything is ingested. A failed on-alert retrain is
    /// *not* an `ingest` error: the batch was served and ingested, so its
    /// outcome is returned with the failure in
    /// [`IngestOutcome::retrain_error`] — failing the call would discard
    /// the served decisions and invite a double-counting retry.
    pub fn ingest(&mut self, batch: &[StreamTuple]) -> Result<IngestOutcome> {
        let d = self.monitor.schema().len();
        let groups = self.monitor.config().groups;
        for (i, t) in batch.iter().enumerate() {
            validate_tuple(t, d, i, groups)?;
        }
        self.ingest_prevalidated(batch)
    }

    /// The sharded router's entry point: it has already validated the
    /// whole mixed batch (for whole-batch rejection semantics), so the
    /// per-shard ingest must not re-scan every tuple.
    pub(crate) fn ingest_refs_prevalidated(
        &mut self,
        batch: &[&StreamTuple],
    ) -> Result<IngestOutcome> {
        self.ingest_prevalidated(batch)
    }

    /// The sharded router's single-shard fast path: a one-shard fleet's
    /// routed batch already *is* this engine's batch in arrival order, so
    /// it ingests straight off the `ShardedTuple` slice (via its
    /// `Borrow<StreamTuple>` view) with no per-tuple gather at all.
    pub(crate) fn ingest_routed_prevalidated(
        &mut self,
        batch: &[crate::sharded::ShardedTuple],
    ) -> Result<IngestOutcome> {
        self.ingest_prevalidated(batch)
    }

    /// Ingestion after validation: callers guarantee every tuple matches
    /// the schema width and has an in-range group (`< K`) and binary
    /// label.
    fn ingest_prevalidated<T: Borrow<StreamTuple>>(
        &mut self,
        batch: &[T],
    ) -> Result<IngestOutcome> {
        let started = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let decisions = self.scorer.score(batch)?;
        let outcome = self.monitor.observe(batch, &decisions)?;
        if let Some(model) = outcome.model {
            // Synchronous composition: a retrain's replacement model is
            // live before the next batch is scored, exactly as before the
            // split.
            self.scorer.install(model);
            self.monitor.emit_model_swap();
        }
        if let Some(update) = outcome.repair {
            // Same synchronous publication for ladder repairs: nudged
            // thresholds (or a reset after a successful retrain) govern
            // the very next batch. The sharded per-shard paths funnel
            // through here too, so one install point covers both.
            self.scorer.apply_repair(update);
        }
        if let (Some(m), Some(started)) = (&self.metrics, started) {
            m.ingest_latency_us
                .observe(started.elapsed().as_secs_f64() * 1e6);
            m.ingest_batches.inc();
            m.ingest_tuples.add(batch.len() as u64);
        }
        Ok(IngestOutcome {
            first_id: outcome.first_id,
            decisions,
            alerts: outcome.alerts,
            snapshot: outcome.snapshot,
            retrained: outcome.retrained,
            retrain_error: outcome.retrain_error,
        })
    }

    /// Join late ground truth into the label plane by tuple id (see
    /// [`Monitor::feedback`] for the join semantics). Works for tuples
    /// still in the window and — through the bounded pending-join index —
    /// for tuples that have already rotated out; records for forgotten
    /// tuples are counted, not errors.
    ///
    /// # Errors
    /// [`StreamError::BadLabel`] for a non-binary label,
    /// [`StreamError::FutureFeedback`] for an id not issued yet; the whole
    /// batch is validated before anything joins.
    pub fn feedback(&mut self, feedback: &[LabelFeedback]) -> Result<crate::FeedbackOutcome> {
        let issued = self.monitor.ids_issued();
        for record in feedback {
            if record.label >= 2 {
                return Err(StreamError::BadLabel(record.label));
            }
            if record.id >= issued {
                return Err(StreamError::FutureFeedback {
                    id: record.id,
                    issued,
                });
            }
        }
        self.monitor.feedback(feedback)
    }

    /// The retraining hook: re-run ConFair on the window's contents, swap
    /// in the new model, re-derive the reference profiles from the window
    /// (the stream's new normal), and reset the drift detectors. A panic
    /// inside retraining is contained and surfaced as
    /// [`StreamError::RetrainPanicked`]; a success clears degraded mode.
    pub fn retrain_now(&mut self) -> Result<()> {
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.monitor.retrain()));
        let predictor = match outcome {
            Ok(result) => result?,
            Err(payload) => {
                return Err(StreamError::RetrainPanicked(crate::monitor::panic_text(
                    payload.as_ref(),
                )))
            }
        };
        self.scorer.install(predictor);
        self.monitor.emit_model_swap();
        self.monitor.clear_degraded();
        if self.monitor.config().repair.ladder {
            // A manual retrain re-profiles the stream the same way a
            // tier-3 success does: serve-time corrections no longer
            // apply, so the ladder resets and the scorer's overlay
            // returns to the identity.
            let update = self.monitor.reset_ladder();
            self.scorer.apply_repair(update);
        }
        Ok(())
    }

    /// The rung of the open repair-ladder episode, if one is open (`None`
    /// while the ladder is idle or disabled).
    pub fn repair_tier(&self) -> Option<RepairTier> {
        self.monitor.repair_tier()
    }

    /// The per-cell serve-time margin cutoffs in force (index = group
    /// cell id; all zeros means the model's native boundary).
    pub fn repair_thresholds(&self) -> &[f64] {
        self.monitor.repair_thresholds()
    }

    /// Whether the tier-2 conformance projection is installed on the
    /// serving path.
    pub fn repair_projection_active(&self) -> bool {
        self.monitor.repair_projection_active()
    }

    /// Whether the engine is serving in degraded mode (an on-alert repair
    /// episode exhausted its [`RepairConfig`] budget; the stale model
    /// keeps serving until a later retrain succeeds).
    pub fn is_degraded(&self) -> bool {
        self.monitor.is_degraded()
    }

    /// Audit events dropped because the telemetry sink lock was poisoned
    /// by a panicked subscriber.
    pub fn telemetry_disabled_count(&self) -> u64 {
        self.monitor.telemetry_disabled_count()
    }

    /// The most recent telemetry failure, if any (`None` = healthy trail).
    pub fn telemetry_last_error(&self) -> Option<String> {
        self.monitor.telemetry_last_error()
    }

    /// Install a deterministic fault plan (test/chaos builds only): the
    /// plan's seams fire inside this engine's retrain and monitor paths,
    /// byte-for-byte reproducibly.
    #[cfg(feature = "fault-injection")]
    pub fn inject_faults(&mut self, plan: crate::faults::FaultPlan) {
        self.monitor.inject_faults(plan);
    }

    /// Snapshot the engine's complete serving and monitoring state as a
    /// versioned [`EngineCheckpoint`]: model parameters, feature encoding,
    /// conformance profiles, the sliding window, both Page–Hinkley
    /// detectors (with their warm-up/cooldown position), the alert log,
    /// and the configuration. Restoring via [`StreamEngine::restore`]
    /// yields an engine whose subsequent decisions, snapshots, and alerts
    /// are bit-identical to this engine's — no warm-up gap, no re-alert
    /// storm.
    ///
    /// # Errors
    /// [`StreamError::Checkpoint`] when the predictor does not support
    /// serialisation (only the built-in single-model ConFair predictor
    /// does today).
    pub fn checkpoint(&self) -> Result<EngineCheckpoint> {
        let ckpt = checkpoint_from_parts(&self.scorer, &self.monitor)?;
        self.monitor
            .emit(crate::checkpoint::checkpoint_event(&self.monitor, "taken"));
        Ok(ckpt)
    }

    /// Rebuild an engine from a checkpoint. The restored engine serves,
    /// monitors, and alerts bit-identically to the engine that produced
    /// the checkpoint — including the retraining hook, whose window
    /// contents, split seed, and detector resets all derive from the
    /// restored state.
    ///
    /// # Errors
    /// [`StreamError::CheckpointVersion`] for an incompatible format
    /// version; [`StreamError::Checkpoint`] for any internal inconsistency
    /// (stride/schema disagreement, missing detector states, an encoding
    /// fitted on a different column count, …). Validation happens up
    /// front: a corrupted checkpoint never half-loads.
    pub fn restore(ckpt: EngineCheckpoint) -> Result<Self> {
        crate::checkpoint::validate(&ckpt)?;
        let window = SlidingWindow::from_state(
            &ckpt.window,
            ckpt.config.pending_labels,
            ckpt.config.groups,
        )?;
        let predictor = confair_core::SingleModelPredictor::from_state(ckpt.predictor)
            .map_err(|e| StreamError::Checkpoint(e.to_string()))?;
        // The checkpoint stores profiles flat in (group, label)-major
        // order: cell (g, y) at index g*2 + y. `validate` pinned the
        // counts to `groups*2` profiles and `groups` detectors.
        let mut profiles: CellProfiles = vec![Default::default(); ckpt.config.groups];
        for (i, profile) in ckpt.profiles.into_iter().enumerate() {
            profiles[i / 2][i % 2] = profile;
        }
        let detectors: Vec<PageHinkley> = ckpt
            .detectors
            .iter()
            .map(|state| PageHinkley::from_state(ckpt.config.detector, state))
            .collect();
        let mut scorer = Scorer::new(ckpt.schema.clone(), Box::new(predictor));
        let ladder = RepairLadder {
            active: RepairTier::from_index(ckpt.repair_tier),
            batches_in_tier: ckpt.repair_batches_in_tier,
            recovery_streak: ckpt.repair_recovery_streak,
            thresholds: ckpt.repair_thresholds,
            projection: ckpt.repair_projection,
            work_us: ckpt.repair_work_us,
        };
        let monitor = Monitor {
            schema: ckpt.schema,
            learner: ckpt.learner,
            config: ckpt.config,
            profiles,
            window,
            detectors,
            alerts: ckpt.alerts,
            seen: ckpt.seen,
            ids_issued: ckpt.ids_issued,
            retrains: ckpt.retrains,
            floor_quiet_until: ckpt.floor_quiet_until,
            ladder,
            sink: None,
            metrics: None,
            degraded: ckpt.degraded,
            telemetry_disabled: std::cell::Cell::new(0),
            telemetry_error: std::cell::RefCell::new(None),
            #[cfg(feature = "fault-injection")]
            faults: None,
        };
        if !monitor.ladder.is_identity() {
            // The checkpoint caught a live repair episode (or repairs left
            // installed after recovery): re-arm the serving overlay so the
            // restored engine's decision boundary resumes bit-identically.
            // The tier-2 projection is rebuilt from the checkpointed
            // conformance profiles, same as the live publication.
            scorer.apply_repair(monitor.repair_update());
        }
        Ok(StreamEngine {
            scorer,
            monitor,
            metrics: None,
        })
    }

    /// [`StreamEngine::restore`] with a telemetry sink installed up
    /// front, emitting a `"restored"` checkpoint event that carries the
    /// absolute window counters — the re-anchor a replayed audit trail
    /// needs when a restarted engine appends to an existing JSONL file
    /// (see [`cf_telemetry::JsonlSink::append`]).
    pub fn restore_with_sink(ckpt: EngineCheckpoint, sink: SharedSink) -> Result<Self> {
        let mut engine = Self::restore(ckpt)?;
        engine.set_sink(sink);
        engine.monitor.emit(crate::checkpoint::checkpoint_event(
            &engine.monitor,
            "restored",
        ));
        Ok(engine)
    }

    /// The windowed fairness reading. O(1).
    pub fn snapshot(&self) -> FairnessSnapshot {
        self.monitor.snapshot()
    }

    /// Every alert raised since construction, in stream order.
    pub fn alerts(&self) -> &[DriftAlert] {
        self.monitor.alerts()
    }

    /// Total tuples ingested.
    pub fn tuples_seen(&self) -> u64 {
        self.monitor.tuples_seen()
    }

    /// The engine's tuple-id clock: ids `0..ids_issued()` are valid
    /// feedback keys. Equals [`StreamEngine::tuples_seen`] unless the
    /// state was restored from an async engine that dropped records under
    /// backpressure.
    pub fn ids_issued(&self) -> u64 {
        self.monitor.ids_issued()
    }

    /// How many times the retraining hook has run.
    pub fn retrain_count(&self) -> u64 {
        self.monitor.retrain_count()
    }

    /// Tuples currently retained in the window.
    pub fn window_len(&self) -> usize {
        self.monitor.window_len()
    }

    /// The raw windowed per-cell counters (index = group cell id, `0..K`).
    /// Additive across engines — the basis of cross-shard snapshot merging.
    pub fn window_counts(&self) -> &[GroupCounts] {
        self.monitor.window_counts()
    }

    /// Cumulative label-join counters (joins, duplicates, unmatched
    /// records, pending-index evictions); reset on restore.
    pub fn join_stats(&self) -> crate::JoinStats {
        self.monitor.join_stats()
    }

    /// Evicted decisions currently awaiting their labels in the
    /// pending-join index.
    pub fn pending_labels(&self) -> usize {
        self.monitor.pending_labels()
    }

    /// Joined `(decision, label)` pairs currently in the label plane.
    pub fn labeled_len(&self) -> usize {
        self.monitor.labeled_len()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &StreamConfig {
        self.monitor.config()
    }

    /// The reference schema's column names.
    pub fn schema(&self) -> &[String] {
        self.monitor.schema()
    }

    /// Materialise the window's contents as a dataset (newest-window
    /// training set for the retraining hook; also useful for audits).
    pub fn window_dataset(&self, name: &str) -> Result<Dataset> {
        self.monitor.window_dataset(name)
    }
}

/// Assemble a versioned checkpoint from an engine's two halves — shared by
/// the sync engine (which borrows its own halves) and the async engine
/// (which pairs its local scorer with the monitor clone the background
/// thread hands back at a quiescent point).
pub(crate) fn checkpoint_from_parts(
    scorer: &Scorer,
    monitor: &Monitor,
) -> Result<EngineCheckpoint> {
    let predictor = scorer.state().ok_or_else(|| {
        StreamError::Checkpoint("this engine's predictor does not support checkpointing".into())
    })?;
    Ok(EngineCheckpoint {
        version: crate::checkpoint::CHECKPOINT_VERSION,
        schema: monitor.schema.clone(),
        learner: monitor.learner,
        config: monitor.config.clone(),
        predictor,
        profiles: monitor
            .profiles
            .iter()
            .flat_map(|row| row.iter().cloned())
            .collect(),
        window: monitor.window.state(),
        detectors: monitor.detectors.iter().map(PageHinkley::state).collect(),
        alerts: monitor.alerts.clone(),
        seen: monitor.seen,
        ids_issued: monitor.ids_issued,
        retrains: monitor.retrains,
        floor_quiet_until: monitor.floor_quiet_until,
        degraded: monitor.degraded,
        repair_tier: monitor.ladder.active.map_or(0, RepairTier::index),
        repair_thresholds: monitor.ladder.thresholds.clone(),
        repair_batches_in_tier: monitor.ladder.batches_in_tier,
        repair_recovery_streak: monitor.ladder.recovery_streak,
        repair_projection: monitor.ladder.projection,
        repair_work_us: monitor.ladder.work_us,
    })
}

/// Validate one tuple against a schema of width `d` (`i` is the tuple's
/// batch index, used only in the error message). Shared by the
/// single-engine, sharded-router, and async ingestion paths so the checks
/// cannot drift apart.
pub(crate) fn validate_tuple(tuple: &StreamTuple, d: usize, i: usize, groups: usize) -> Result<()> {
    if tuple.features.len() != d {
        return Err(StreamError::Schema(format!(
            "tuple {i} has {} features; the reference schema has {d}",
            tuple.features.len()
        )));
    }
    if usize::from(tuple.group) >= groups {
        return Err(StreamError::BadGroup(tuple.group));
    }
    if let Some(label) = tuple.label {
        if label >= 2 {
            return Err(StreamError::BadLabel(label));
        }
    }
    Ok(())
}

pub(crate) fn ensure_all_numeric(data: &Dataset) -> Result<()> {
    let numeric = data.numeric_column_indices().len();
    if numeric != data.num_attributes() {
        return Err(StreamError::Schema(format!(
            "streaming requires all-numeric attributes; {} of {} are categorical",
            data.num_attributes() - numeric,
            data.num_attributes()
        )));
    }
    Ok(())
}
