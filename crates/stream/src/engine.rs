//! The online scoring and monitoring engine.
//!
//! [`StreamEngine`] bootstraps from a labeled reference dataset: it trains
//! a fairness-intervened model (ConFair) and profiles every (group, label)
//! cell with conformance constraints. Micro-batches then flow through
//! [`StreamEngine::ingest`]: each tuple is scored, checked against its
//! cell's reference constraints, folded into the sliding window's O(1)
//! counters, and fed to its group's Page–Hinkley detector. Alerts are typed
//! [`DriftAlert`] events; with [`RetrainPolicy::OnAlert`] the engine
//! re-runs ConFair on the window's contents — the non-invasive repair loop
//! the paper's drift framing implies.

use crate::checkpoint::EngineCheckpoint;
use crate::drift::{DriftAlert, DriftKind, PageHinkley, PageHinkleyConfig};
use crate::monitor::FairnessSnapshot;
use crate::window::{GroupCounts, SlidingWindow, SlotMeta};
use crate::{Result, StreamError};
use cf_conformance::{learn_constraints, ConstraintSet};
use cf_data::{
    split::{split3_stratified, SplitRatios},
    CellIndex, Column, Dataset,
};
use cf_learners::LearnerKind;
use cf_linalg::Matrix;
use confair_core::{confair::ConFair, confair::ConFairConfig, Intervention, Predictor};
use std::borrow::Borrow;

/// One arriving observation: features in the reference schema's column
/// order, the sensitive-group id, and the (possibly delayed, here assumed
/// available) ground-truth label.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamTuple {
    /// Numeric attribute values, one per reference column.
    pub features: Vec<f64>,
    /// Group id (0 = majority `W`, 1 = minority `U`).
    pub group: u8,
    /// Ground-truth label.
    pub label: u8,
}

impl StreamTuple {
    /// Convert a (fully numeric) dataset's rows into stream tuples, in row
    /// order — the bridge from `cf-datasets` generators to the engine.
    pub fn rows_from_dataset(data: &Dataset) -> Result<Vec<StreamTuple>> {
        ensure_all_numeric(data)?;
        // Gather straight from the column storage instead of materialising
        // the full `numeric_matrix` and then copying every row again.
        let columns: Vec<&[f64]> = (0..data.num_attributes())
            .map(|j| {
                data.column(j)
                    .as_numeric()
                    .expect("ensure_all_numeric guarantees numeric columns")
            })
            .collect();
        Ok((0..data.len())
            .map(|i| StreamTuple {
                features: columns.iter().map(|c| c[i]).collect(),
                group: data.groups()[i],
                label: data.labels()[i],
            })
            .collect())
    }
}

/// When the engine retrains itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainPolicy {
    /// Monitor only; callers may still invoke
    /// [`StreamEngine::retrain_now`] themselves.
    Never,
    /// Re-run ConFair on the window after any alert, provided the window
    /// holds at least `min_window` tuples.
    OnAlert {
        /// Minimum window fill before a retrain is meaningful.
        min_window: usize,
    },
}

impl serde::Serialize for RetrainPolicy {
    fn to_value(&self) -> serde::Value {
        match self {
            RetrainPolicy::Never => serde::Value::String("never".into()),
            RetrainPolicy::OnAlert { min_window } => serde::Value::Object(vec![(
                "on_alert".into(),
                serde::Value::Object(vec![("min_window".into(), min_window.to_value())]),
            )]),
        }
    }
}

impl serde::Deserialize for RetrainPolicy {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        if v.as_str() == Some("never") {
            return Ok(RetrainPolicy::Never);
        }
        if let Some(on_alert) = v.get("on_alert") {
            return Ok(RetrainPolicy::OnAlert {
                min_window: serde::Deserialize::from_value(on_alert.get_or_err("min_window")?)?,
            });
        }
        Err(serde::Error::msg("unknown retrain policy"))
    }
}

/// Engine configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StreamConfig {
    /// Sliding-window capacity (tuples).
    pub window: usize,
    /// Per-group Page–Hinkley settings for the violation series.
    pub detector: PageHinkleyConfig,
    /// The EEOC four-fifths floor on windowed DI*.
    pub di_floor: f64,
    /// Tuples required in the window before the DI floor is judged.
    pub floor_min_window: usize,
    /// Tuples to wait between consecutive floor alerts (hysteresis).
    pub floor_cooldown: u64,
    /// A tuple violates its cell's constraints when the violation exceeds
    /// this threshold.
    pub conformance_eps: f64,
    /// Minimum cell population in the reference before a constraint
    /// profile is derived for it.
    pub min_profile_rows: usize,
    /// The ConFair configuration used for the initial fit and for
    /// retraining (its `learn_opts` also drive the reference profiles).
    pub confair: ConFairConfig,
    /// Retraining behaviour.
    pub retrain: RetrainPolicy,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window: 2_000,
            detector: PageHinkleyConfig::default(),
            di_floor: 0.8,
            floor_min_window: 400,
            floor_cooldown: 2_000,
            conformance_eps: 1e-9,
            min_profile_rows: 8,
            confair: ConFairConfig::default(),
            retrain: RetrainPolicy::Never,
        }
    }
}

/// What one `ingest` call produced.
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// The served decision for each tuple of the batch, in order.
    pub decisions: Vec<u8>,
    /// Alerts raised by this batch (also appended to the engine's log).
    pub alerts: Vec<DriftAlert>,
    /// The windowed fairness reading after the batch.
    pub snapshot: FairnessSnapshot,
    /// Whether the retraining hook ran successfully.
    pub retrained: bool,
    /// Why an attempted on-alert retrain failed, if it did. The batch's
    /// decisions and alerts above are valid either way — a retrain
    /// failure never invalidates the serving work already done.
    pub retrain_error: Option<StreamError>,
}

type CellProfiles = [[Option<ConstraintSet>; 2]; 2];

/// The online fairness-drift monitoring and serving engine.
///
/// # Example
///
/// Bootstrap from reference data, serve a micro-batch, then checkpoint and
/// restore — the restored engine picks up at the exact same state:
///
/// ```
/// use cf_datasets::stream::{DriftStream, DriftStreamSpec};
/// use cf_learners::LearnerKind;
/// use cf_stream::{EngineCheckpoint, StreamConfig, StreamEngine, StreamTuple};
/// use confair_core::confair::{AlphaMode, ConFairConfig};
///
/// let spec = DriftStreamSpec::default();
/// let reference = spec.reference(600, 7);
/// let config = StreamConfig {
///     window: 256,
///     // Fixed degrees skip the α grid search — quick to bootstrap.
///     confair: ConFairConfig {
///         alpha: AlphaMode::Fixed { alpha_u: 2.0, alpha_w: 1.0 },
///         ..ConFairConfig::default()
///     },
///     ..StreamConfig::default()
/// };
/// let mut engine = StreamEngine::from_reference(&reference, LearnerKind::Logistic, 7, config)?;
///
/// let mut stream = DriftStream::new(spec, 1);
/// let batch = StreamTuple::rows_from_dataset(&stream.next_batch(100))?;
/// let outcome = engine.ingest(&batch)?;
/// assert_eq!(outcome.decisions.len(), 100);
/// println!("{}", outcome.snapshot); // windowed DI*, gaps, violation rates
///
/// // Durable state: round-trip through JSON, restore, same position.
/// let document = engine.checkpoint()?.to_json();
/// let restored = StreamEngine::restore(EngineCheckpoint::from_json(&document)?)?;
/// assert_eq!(restored.tuples_seen(), engine.tuples_seen());
/// assert_eq!(restored.snapshot(), engine.snapshot());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct StreamEngine {
    schema: Vec<String>,
    learner: LearnerKind,
    config: StreamConfig,
    predictor: Box<dyn Predictor>,
    profiles: CellProfiles,
    window: SlidingWindow,
    detectors: [PageHinkley; 2],
    alerts: Vec<DriftAlert>,
    seen: u64,
    retrains: u64,
    floor_quiet_until: u64,
    /// Recycled backing buffer for the per-batch feature matrix, so the
    /// steady-state scoring path allocates nothing per tuple.
    scratch: Vec<f64>,
}

impl StreamEngine {
    /// Bootstrap from a labeled, fully numeric reference dataset: train
    /// ConFair on a stratified split and derive per-cell conformance
    /// profiles from the full reference.
    pub fn from_reference(
        reference: &Dataset,
        learner: LearnerKind,
        seed: u64,
        config: StreamConfig,
    ) -> Result<Self> {
        if reference.is_empty() {
            return Err(StreamError::EmptyReference);
        }
        ensure_all_numeric(reference)?;
        let window = SlidingWindow::new(config.window, reference.num_attributes())?;
        let split = split3_stratified(reference, SplitRatios::paper_default(), seed);
        let predictor = ConFair::new(config.confair.clone())
            .train(&split.train, &split.validation, learner)
            .map_err(StreamError::from_core)?;
        let profiles = learn_profiles(reference, &config);
        let detectors = [
            PageHinkley::new(config.detector),
            PageHinkley::new(config.detector),
        ];
        Ok(StreamEngine {
            schema: reference.column_names().to_vec(),
            learner,
            config,
            predictor,
            profiles,
            window,
            detectors,
            alerts: Vec::new(),
            seen: 0,
            retrains: 0,
            floor_quiet_until: 0,
            scratch: Vec::new(),
        })
    }

    /// Score and monitor one micro-batch. O(1) work per tuple beyond the
    /// model's forward pass: counter updates, one constraint evaluation,
    /// and one Page–Hinkley step.
    ///
    /// # Errors
    /// Batch validation errors (schema, group, label) reject the whole
    /// batch before anything is ingested. A failed on-alert retrain is
    /// *not* an `ingest` error: the batch was served and ingested, so its
    /// outcome is returned with the failure in
    /// [`IngestOutcome::retrain_error`] — failing the call would discard
    /// the served decisions and invite a double-counting retry.
    pub fn ingest(&mut self, batch: &[StreamTuple]) -> Result<IngestOutcome> {
        let d = self.schema.len();
        for (i, t) in batch.iter().enumerate() {
            validate_tuple(t, d, i)?;
        }
        self.ingest_prevalidated(batch)
    }

    /// The sharded router's entry point: it has already validated the
    /// whole mixed batch (for whole-batch rejection semantics), so the
    /// per-shard ingest must not re-scan every tuple.
    pub(crate) fn ingest_refs_prevalidated(
        &mut self,
        batch: &[&StreamTuple],
    ) -> Result<IngestOutcome> {
        self.ingest_prevalidated(batch)
    }

    /// Ingestion after validation: callers guarantee every tuple matches
    /// the schema width and has binary group/label.
    fn ingest_prevalidated<T: Borrow<StreamTuple>>(
        &mut self,
        batch: &[T],
    ) -> Result<IngestOutcome> {
        if batch.is_empty() {
            return Ok(IngestOutcome {
                decisions: Vec::new(),
                alerts: Vec::new(),
                snapshot: self.snapshot(),
                retrained: false,
                retrain_error: None,
            });
        }
        let d = self.schema.len();

        // Score off one row-major matrix whose backing buffer is recycled
        // across calls: no `Dataset` assembly, no column-major round trip,
        // no steady-state allocation per tuple.
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        buf.reserve(batch.len() * d);
        for t in batch {
            buf.extend_from_slice(&t.borrow().features);
        }
        let x = Matrix::from_vec(batch.len(), d, buf);
        let decisions = self
            .predictor
            .predict_rows(&x)
            .map_err(StreamError::from_core)?;
        self.scratch = x.into_vec();

        let mut new_alerts = Vec::new();
        for (t, &decision) in batch.iter().zip(&decisions) {
            let tuple = t.borrow();
            let violated = self.violation_of(tuple) > self.config.conformance_eps;
            self.window.push(
                SlotMeta {
                    group: tuple.group,
                    label: tuple.label,
                    decision,
                    violated,
                },
                &tuple.features,
            )?;
            self.seen += 1;
            if let Some(statistic) =
                self.detectors[tuple.group as usize].observe(f64::from(violated))
            {
                new_alerts.push(DriftAlert {
                    kind: DriftKind::ConformanceViolation,
                    group: tuple.group,
                    at_tuple: self.seen,
                    statistic,
                    threshold: self.config.detector.lambda,
                });
            }
        }

        // One snapshot serves the floor check, the outcome, and the
        // post-retrain state alike: it reads only the windowed counters,
        // which the retraining hook never touches.
        let snapshot = self.snapshot();
        if snapshot.passes_di_floor() == Some(false)
            && self.window.len() >= self.config.floor_min_window
            && self.seen >= self.floor_quiet_until
        {
            let disadvantaged = match (snapshot.selection_rate[0], snapshot.selection_rate[1]) {
                (Some(w), Some(u)) if u <= w => 1,
                _ => 0,
            };
            new_alerts.push(DriftAlert {
                kind: DriftKind::DisparateImpactFloor,
                group: disadvantaged,
                at_tuple: self.seen,
                statistic: snapshot.di_star.unwrap_or(0.0),
                threshold: self.config.di_floor,
            });
            self.floor_quiet_until = self.seen + self.config.floor_cooldown;
        }

        // Log the alerts before attempting any retrain, so a retrain
        // failure never loses the events that triggered it.
        self.alerts.extend_from_slice(&new_alerts);
        let mut retrained = false;
        let mut retrain_error = None;
        if !new_alerts.is_empty() {
            if let RetrainPolicy::OnAlert { min_window } = self.config.retrain {
                if self.window.len() >= min_window {
                    match self.retrain_now() {
                        Ok(()) => retrained = true,
                        Err(e) => retrain_error = Some(e),
                    }
                }
            }
        }

        Ok(IngestOutcome {
            decisions,
            alerts: new_alerts,
            snapshot,
            retrained,
            retrain_error,
        })
    }

    /// The retraining hook: re-run ConFair on the window's contents, swap
    /// in the new model, re-derive the reference profiles from the window
    /// (the stream's new normal), and reset the drift detectors.
    pub fn retrain_now(&mut self) -> Result<()> {
        let data = self.window_dataset("stream-window")?;
        for label in [0u8, 1] {
            if data.label_count(label) < 2 {
                return Err(StreamError::DegenerateWindow(format!(
                    "window holds {} tuples of label {label}; both classes are \
                     required to retrain",
                    data.label_count(label)
                )));
            }
        }
        let split = split3_stratified(&data, SplitRatios::paper_default(), self.seen);
        let predictor = ConFair::new(self.config.confair.clone())
            .train(&split.train, &split.validation, self.learner)
            .map_err(StreamError::from_core)?;
        self.predictor = predictor;
        self.profiles = learn_profiles(&data, &self.config);
        for detector in &mut self.detectors {
            detector.reset();
        }
        self.retrains += 1;
        Ok(())
    }

    /// Snapshot the engine's complete serving and monitoring state as a
    /// versioned [`EngineCheckpoint`]: model parameters, feature encoding,
    /// conformance profiles, the sliding window, both Page–Hinkley
    /// detectors (with their warm-up/cooldown position), the alert log,
    /// and the configuration. Restoring via [`StreamEngine::restore`]
    /// yields an engine whose subsequent decisions, snapshots, and alerts
    /// are bit-identical to this engine's — no warm-up gap, no re-alert
    /// storm.
    ///
    /// # Errors
    /// [`StreamError::Checkpoint`] when the predictor does not support
    /// serialisation (only the built-in single-model ConFair predictor
    /// does today).
    pub fn checkpoint(&self) -> Result<EngineCheckpoint> {
        let predictor = self.predictor.state().ok_or_else(|| {
            StreamError::Checkpoint("this engine's predictor does not support checkpointing".into())
        })?;
        Ok(EngineCheckpoint {
            version: crate::checkpoint::CHECKPOINT_VERSION,
            schema: self.schema.clone(),
            learner: self.learner,
            config: self.config.clone(),
            predictor,
            profiles: self
                .profiles
                .iter()
                .flat_map(|row| row.iter().cloned())
                .collect(),
            window: self.window.state(),
            detectors: self.detectors.iter().map(PageHinkley::state).collect(),
            alerts: self.alerts.clone(),
            seen: self.seen,
            retrains: self.retrains,
            floor_quiet_until: self.floor_quiet_until,
        })
    }

    /// Rebuild an engine from a checkpoint. The restored engine serves,
    /// monitors, and alerts bit-identically to the engine that produced
    /// the checkpoint — including the retraining hook, whose window
    /// contents, split seed, and detector resets all derive from the
    /// restored state.
    ///
    /// # Errors
    /// [`StreamError::CheckpointVersion`] for an incompatible format
    /// version; [`StreamError::Checkpoint`] for any internal inconsistency
    /// (stride/schema disagreement, missing detector states, an encoding
    /// fitted on a different column count, …). Validation happens up
    /// front: a corrupted checkpoint never half-loads.
    pub fn restore(ckpt: EngineCheckpoint) -> Result<Self> {
        crate::checkpoint::validate(&ckpt)?;
        let window = SlidingWindow::from_state(&ckpt.window)?;
        let predictor = confair_core::SingleModelPredictor::from_state(ckpt.predictor)
            .map_err(|e| StreamError::Checkpoint(e.to_string()))?;
        let mut profiles: CellProfiles = Default::default();
        for (i, profile) in ckpt.profiles.into_iter().enumerate() {
            profiles[i / 2][i % 2] = profile;
        }
        let detectors = [
            PageHinkley::from_state(ckpt.config.detector, &ckpt.detectors[0]),
            PageHinkley::from_state(ckpt.config.detector, &ckpt.detectors[1]),
        ];
        Ok(StreamEngine {
            schema: ckpt.schema,
            learner: ckpt.learner,
            config: ckpt.config,
            predictor: Box::new(predictor),
            profiles,
            window,
            detectors,
            alerts: ckpt.alerts,
            seen: ckpt.seen,
            retrains: ckpt.retrains,
            floor_quiet_until: ckpt.floor_quiet_until,
            scratch: Vec::new(),
        })
    }

    /// The windowed fairness reading. O(1).
    pub fn snapshot(&self) -> FairnessSnapshot {
        FairnessSnapshot::from_counts(self.window.counts(), self.config.di_floor)
    }

    /// Every alert raised since construction, in stream order.
    pub fn alerts(&self) -> &[DriftAlert] {
        &self.alerts
    }

    /// Total tuples ingested.
    pub fn tuples_seen(&self) -> u64 {
        self.seen
    }

    /// How many times the retraining hook has run.
    pub fn retrain_count(&self) -> u64 {
        self.retrains
    }

    /// Tuples currently retained in the window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// The raw windowed per-group counters (index = group id). Additive
    /// across engines — the basis of cross-shard snapshot merging.
    pub fn window_counts(&self) -> &[GroupCounts; 2] {
        self.window.counts()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The reference schema's column names.
    pub fn schema(&self) -> &[String] {
        &self.schema
    }

    /// Materialise the window's contents as a dataset (newest-window
    /// training set for the retraining hook; also useful for audits).
    pub fn window_dataset(&self, name: &str) -> Result<Dataset> {
        if self.window.is_empty() {
            return Err(StreamError::DegenerateWindow("window is empty".into()));
        }
        // Window slots were validated on ingestion, so assembly can't fail
        // on shape.
        self.assemble_dataset(
            name,
            self.window.len(),
            self.window.iter().map(|(m, f)| (f, m.group, m.label)),
        )
    }

    /// The violation of a tuple against its (group, label) reference
    /// profile; 0 when the cell had too few reference rows to profile.
    fn violation_of(&self, tuple: &StreamTuple) -> f64 {
        match &self.profiles[tuple.group as usize][tuple.label as usize] {
            Some(constraints) => constraints.violation(&tuple.features),
            None => 0.0,
        }
    }

    /// Column-major dataset assembly in the reference schema (used when
    /// materialising the window for retraining or audits).
    fn assemble_dataset<'a>(
        &self,
        name: &str,
        len: usize,
        rows: impl Iterator<Item = (&'a [f64], u8, u8)>,
    ) -> Result<Dataset> {
        let d = self.schema.len();
        let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(len); d];
        let mut labels = Vec::with_capacity(len);
        let mut groups = Vec::with_capacity(len);
        for (features, group, label) in rows {
            for (j, &v) in features.iter().enumerate() {
                columns[j].push(v);
            }
            labels.push(label);
            groups.push(group);
        }
        Dataset::new(
            name,
            self.schema.clone(),
            columns.into_iter().map(Column::Numeric).collect(),
            labels,
            groups,
        )
        .map_err(|e| StreamError::Schema(e.to_string()))
    }
}

/// Validate one tuple against a schema of width `d` (`i` is the tuple's
/// batch index, used only in the error message). Shared by the
/// single-engine and sharded-router ingestion paths so the checks cannot
/// drift apart.
pub(crate) fn validate_tuple(tuple: &StreamTuple, d: usize, i: usize) -> Result<()> {
    if tuple.features.len() != d {
        return Err(StreamError::Schema(format!(
            "tuple {i} has {} features; the reference schema has {d}",
            tuple.features.len()
        )));
    }
    if tuple.group >= 2 {
        return Err(StreamError::BadGroup(tuple.group));
    }
    if tuple.label >= 2 {
        return Err(StreamError::BadLabel(tuple.label));
    }
    Ok(())
}

fn ensure_all_numeric(data: &Dataset) -> Result<()> {
    let numeric = data.numeric_column_indices().len();
    if numeric != data.num_attributes() {
        return Err(StreamError::Schema(format!(
            "streaming requires all-numeric attributes; {} of {} are categorical",
            data.num_attributes() - numeric,
            data.num_attributes()
        )));
    }
    Ok(())
}

/// Conformance profiles per (group, label) cell of the reference data.
fn learn_profiles(reference: &Dataset, config: &StreamConfig) -> CellProfiles {
    let mut profiles: CellProfiles = Default::default();
    for cell in CellIndex::binary_cells() {
        let members = reference.cell_indices(cell);
        if members.len() < config.min_profile_rows {
            continue;
        }
        let x = reference.numeric_matrix(Some(&members));
        profiles[cell.group as usize][cell.label as usize] =
            Some(learn_constraints(&x, &config.confair.learn_opts));
    }
    profiles
}
