//! Durable checkpoint/restore for the stream engines.
//!
//! A restart used to lose the sliding-window counters and the per-group
//! Page–Hinkley state, reopening a warm-up gap in which drift goes
//! undetected — exactly the blind spot stream-fairness monitoring exists to
//! close. [`EngineCheckpoint`] captures a [`StreamEngine`](crate::StreamEngine)'s **complete**
//! serving and monitoring state — the fitted model parameters, the fitted
//! feature encoding, the per-(group, label) conformance profiles, the
//! sliding window (metadata + feature arena + derived counters), both
//! Page–Hinkley detectors (including warm-up/cooldown position), the alert
//! log, and the configuration — as one versioned JSON document via the
//! vendored serde shim.
//!
//! The contract, pinned by `tests/checkpoint_roundtrip.rs`: an engine
//! restored from a checkpoint produces **bit-identical** decisions,
//! snapshots, and alerts to one that never stopped, on the same subsequent
//! tuple sequence. No warm-up gap, no re-alert storm, no drifted decision
//! boundary.
//!
//! Corrupted documents fail loudly with typed [`StreamError`]s: truncated
//! JSON and missing fields surface as [`StreamError::Checkpoint`], a
//! version from an incompatible writer as
//! [`StreamError::CheckpointVersion`] — a restore never panics on external
//! input and never half-loads.
//!
//! One format caveat: JSON has no NaN, and the shim encodes non-finite
//! floats as `null` (read back as +∞). All engine-produced state is finite,
//! but a stream that feeds literal NaN *feature values* into the window
//! would not round-trip them — don't do that.

use crate::drift::{DriftAlert, PageHinkleyState};
use crate::engine::StreamConfig;
use crate::window::WindowState;
use crate::{Result, StreamError};
use cf_learners::LearnerKind;
use confair_core::PredictorState;

/// The checkpoint format version this build writes. Bump on any
/// incompatible change to the serialised layout.
///
/// Version history:
/// * **1** — single-plane window: every slot fully labeled, no tuple ids.
///   Still readable: v1 documents are upgraded in place on parse — slots
///   get sequential ids, the label ring is derived from the (fully
///   labeled) window, and the pending-join index starts empty.
/// * **2** — two-plane window: slots carry ids and optional labels, the
///   document adds the label ring, the pending-join index, the
///   `pending_labels` bound, and the `ids_issued` clock.
/// * **3** — robustness state: the configuration gains the `repair`
///   retry/timeout budget and the document records whether the engine was
///   serving in degraded mode. Older documents upgrade in place with the
///   default budget and `degraded: false`.
/// * **4** — runtime-K group cells: the configuration gains `groups` (the
///   number of group cells; profiles are `groups*2` long and detectors
///   `groups` long). Older binary documents upgrade in place as
///   `groups: 2`, which restores them bit-identically to the binary
///   engine that wrote them.
/// * **5** — the repair escalation ladder: the document records the open
///   episode's rung (`repair_tier`, 0 = idle), the per-cell serve-time
///   thresholds, the patience/recovery counters, whether the tier-2
///   projection is installed, and the episode's accumulated repair work;
///   the configuration's `repair` budget gains the ladder knobs. Older
///   documents upgrade in place with the ladder idle and disabled — the
///   identity overlay — which restores them bit-identically to the
///   pre-ladder engine that wrote them.
pub const CHECKPOINT_VERSION: u32 = 5;

/// The oldest checkpoint format version this build can still read (via
/// the in-place upgrade in `from_json`).
pub const MIN_CHECKPOINT_VERSION: u32 = 1;

/// A complete, versioned snapshot of one [`StreamEngine`](crate::StreamEngine).
///
/// Produced by [`StreamEngine::checkpoint`](crate::StreamEngine::checkpoint), consumed by
/// [`StreamEngine::restore`](crate::StreamEngine::restore); serialised with [`EngineCheckpoint::to_json`]
/// / [`EngineCheckpoint::from_json`]. Fields are public so operators can
/// audit a checkpoint's contents (e.g. inspect the profiled constraints or
/// the alert log) without restoring it.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EngineCheckpoint {
    /// Format version (see [`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The reference schema's column names.
    pub schema: Vec<String>,
    /// The learner family used for (re)training.
    pub learner: LearnerKind,
    /// The full engine configuration, including the ConFair settings that
    /// drive on-alert retraining.
    pub config: StreamConfig,
    /// The fitted model parameters and feature encoding.
    pub predictor: PredictorState,
    /// Conformance profiles per (group, label) cell, flattened
    /// group-major: cell `(g, y)` at index `g*2 + y`, `groups*2` entries
    /// in all (for the binary layout:
    /// `[(g=0,y=0), (g=0,y=1), (g=1,y=0), (g=1,y=1)]`); `None` marks a
    /// cell too small to profile.
    pub profiles: Vec<Option<cf_conformance::ConstraintSet>>,
    /// The sliding window's logical contents (oldest first).
    pub window: WindowState,
    /// Per-cell Page–Hinkley detector state, index = group cell id (the
    /// binary layout is `[majority, minority]`).
    pub detectors: Vec<PageHinkleyState>,
    /// Every alert raised since construction, in stream order.
    pub alerts: Vec<DriftAlert>,
    /// Total tuples ingested.
    pub seen: u64,
    /// The engine's tuple-id clock: ids `0..ids_issued` have been served.
    /// Equals `seen` unless records were dropped under async backpressure.
    pub ids_issued: u64,
    /// Times the retraining hook has run.
    pub retrains: u64,
    /// Stream position until which DI-floor alerts stay suppressed
    /// (cooldown hysteresis).
    pub floor_quiet_until: u64,
    /// Whether the engine was serving in degraded mode (an on-alert
    /// repair episode had exhausted its budget without a later success).
    pub degraded: bool,
    /// The rung of the open repair-ladder episode (1-based
    /// [`RepairTier::index`](crate::RepairTier::index); 0 = no episode).
    pub repair_tier: u8,
    /// Per-cell serve-time margin cutoffs, index = group cell id. All
    /// zeros is the identity (the model's native decision boundary).
    pub repair_thresholds: Vec<f64>,
    /// Unhealthy batches observed on the current ladder rung.
    pub repair_batches_in_tier: u64,
    /// Consecutive floor-passing batches while the episode stays open.
    pub repair_recovery_streak: u64,
    /// Whether the tier-2 conformance projection was installed on the
    /// serving path (rebuilt on restore from `profiles`).
    pub repair_projection: bool,
    /// Repair work (µs) accumulated by the open episode.
    pub repair_work_us: u64,
}

/// Build the audit event for a checkpoint boundary (`phase` is
/// `"taken"` or `"restored"`). The event carries the **absolute** window
/// counters, because a `"restored"` event is how a replay re-anchors
/// mid-trail: deltas after a restart apply to the restored window, not to
/// whatever the pre-restart engine last logged.
pub(crate) fn checkpoint_event(
    monitor: &crate::Monitor,
    phase: &str,
) -> cf_telemetry::TelemetryEvent {
    cf_telemetry::TelemetryEvent::Checkpoint(cf_telemetry::CheckpointEvent {
        at_tuple: monitor.tuples_seen(),
        phase: phase.to_string(),
        version: CHECKPOINT_VERSION,
        counters: crate::telemetry::both_counters(monitor.window_counts()),
        di_floor: monitor.config().di_floor,
    })
}

/// Read the `version` field of a checkpoint document before anything else,
/// so an unsupported-version document reports
/// [`StreamError::CheckpointVersion`] rather than a field-level parse
/// error from a layout it never promised to match. Returns the version for
/// the caller to pick an upgrade path.
fn check_version(doc: &serde::Value) -> Result<u32> {
    let version = doc
        .get("version")
        .and_then(serde::Value::as_u64)
        .ok_or_else(|| StreamError::Checkpoint("missing or non-integer `version`".into()))?;
    if version < u64::from(MIN_CHECKPOINT_VERSION) || version > u64::from(CHECKPOINT_VERSION) {
        return Err(StreamError::CheckpointVersion {
            found: version as u32,
            expected: CHECKPOINT_VERSION,
        });
    }
    Ok(version as u32)
}

fn parse_document(json: &str) -> Result<serde::Value> {
    serde_json::from_str(json).map_err(|e| StreamError::Checkpoint(e.to_string()))
}

/// Replace (or insert) one field of a JSON object value.
fn set_field(obj: &mut serde::Value, key: &str, value: serde::Value) -> Result<()> {
    match obj {
        serde::Value::Object(fields) => {
            if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                fields.push((key.to_string(), value));
            }
            Ok(())
        }
        other => Err(StreamError::Checkpoint(format!(
            "expected an object to carry `{key}`, got {}",
            other.kind()
        ))),
    }
}

fn field<'v>(doc: &'v serde::Value, key: &str) -> Result<&'v serde::Value> {
    doc.get_or_err(key)
        .map_err(|e| StreamError::Checkpoint(e.to_string()))
}

/// Upgrade one engine-checkpoint object from format v1 to v2, in place on
/// the value tree. A v1 document predates delayed labels, so it is by
/// construction **fully labeled**: every window slot keeps its label
/// (numbers parse as `Some`), slots get the sequential ids
/// `seen - len .. seen` they had implicitly, the label ring is derived
/// from the window itself (in a fully-labeled window the two rings move in
/// lockstep), the pending-join index starts empty, and the id clock equals
/// `seen`.
fn upgrade_v1_engine(doc: &mut serde::Value) -> Result<()> {
    let seen = field(doc, "seen")?
        .as_u64()
        .ok_or_else(|| StreamError::Checkpoint("v1 `seen` is not an integer".into()))?;
    let meta = field(field(doc, "window")?, "meta")?
        .as_array()
        .ok_or_else(|| StreamError::Checkpoint("v1 window `meta` is not an array".into()))?
        .clone();
    let first_id = seen.checked_sub(meta.len() as u64).ok_or_else(|| {
        StreamError::Checkpoint(format!(
            "v1 window holds {} slots but only {seen} were ever seen",
            meta.len()
        ))
    })?;

    let mut new_meta = Vec::with_capacity(meta.len());
    let mut labels = Vec::with_capacity(meta.len());
    for (i, slot) in meta.into_iter().enumerate() {
        let mut slot = slot;
        set_field(
            &mut slot,
            "id",
            serde::Value::Number((first_id + i as u64) as f64),
        )?;
        // The label ring of a fully-labeled window mirrors the window.
        labels.push(serde::Value::Object(vec![
            ("group".into(), field(&slot, "group")?.clone()),
            ("decision".into(), field(&slot, "decision")?.clone()),
            ("label".into(), field(&slot, "label")?.clone()),
        ]));
        new_meta.push(slot);
    }

    let window = match doc.get("window") {
        Some(w) => {
            let mut w = w.clone();
            set_field(&mut w, "meta", serde::Value::Array(new_meta))?;
            set_field(&mut w, "labels", serde::Value::Array(labels))?;
            set_field(&mut w, "pending", serde::Value::Array(Vec::new()))?;
            w
        }
        None => unreachable!("field() above guarantees a window"),
    };
    set_field(doc, "window", window)?;

    let config = {
        let mut c = field(doc, "config")?.clone();
        set_field(
            &mut c,
            "pending_labels",
            serde::Value::Number(crate::StreamConfig::default().pending_labels as f64),
        )?;
        c
    };
    set_field(doc, "config", config)?;
    set_field(doc, "ids_issued", serde::Value::Number(seen as f64))?;
    set_field(doc, "version", serde::Value::Number(2.0))?;
    Ok(())
}

/// Upgrade one engine-checkpoint object from format v2 to v3, in place: a
/// v2 document predates the repair budget and degraded mode, so the
/// configuration gains the default [`RepairConfig`](crate::RepairConfig)
/// and the engine restores healthy.
fn upgrade_v2_engine(doc: &mut serde::Value) -> Result<()> {
    let config = {
        let mut c = field(doc, "config")?.clone();
        set_field(
            &mut c,
            "repair",
            serde::Serialize::to_value(&crate::supervise::RepairConfig::default()),
        )?;
        c
    };
    set_field(doc, "config", config)?;
    set_field(doc, "degraded", serde::Value::Bool(false))?;
    set_field(doc, "version", serde::Value::Number(3.0))?;
    Ok(())
}

/// Upgrade one engine-checkpoint object from format v3 to v4, in place: a
/// v3 document was written by the hard-wired binary engine, so the
/// configuration gains `groups: 2` — its 2 detectors and 4 cell profiles
/// already have exactly the K=2 shape.
fn upgrade_v3_engine(doc: &mut serde::Value) -> Result<()> {
    let config = {
        let mut c = field(doc, "config")?.clone();
        set_field(&mut c, "groups", serde::Value::Number(2.0))?;
        c
    };
    set_field(doc, "config", config)?;
    set_field(doc, "version", serde::Value::Number(4.0))?;
    Ok(())
}

/// Upgrade one engine-checkpoint object from format v4 to v5, in place: a
/// v4 document predates the repair escalation ladder, so it restores with
/// the ladder idle, the identity overlay installed (all-zero thresholds,
/// no projection), and the ladder disabled in the configuration's repair
/// budget — bit-identical behaviour to the engine that wrote it.
fn upgrade_v4_engine(doc: &mut serde::Value) -> Result<()> {
    let groups = field(field(doc, "config")?, "groups")?
        .as_u64()
        .ok_or_else(|| StreamError::Checkpoint("v4 `groups` is not an integer".into()))?
        as usize;
    let config = {
        let mut c = field(doc, "config")?.clone();
        let repair = {
            // The nested repair budget gains the ladder knobs (the shim's
            // object model is a flat field list, so nested injection is
            // clone → set → write back).
            let mut r = field(&c, "repair")?.clone();
            let defaults = crate::supervise::RepairConfig::default();
            set_field(&mut r, "ladder", serde::Value::Bool(false))?;
            set_field(
                &mut r,
                "tier_patience",
                serde::Value::Number(f64::from(defaults.tier_patience)),
            )?;
            set_field(
                &mut r,
                "nudge_step",
                serde::Value::Number(defaults.nudge_step),
            )?;
            set_field(
                &mut r,
                "nudge_max",
                serde::Value::Number(defaults.nudge_max),
            )?;
            set_field(
                &mut r,
                "recovery_hold",
                serde::Value::Number(f64::from(defaults.recovery_hold)),
            )?;
            r
        };
        set_field(&mut c, "repair", repair)?;
        c
    };
    set_field(doc, "config", config)?;
    set_field(doc, "repair_tier", serde::Value::Number(0.0))?;
    set_field(
        doc,
        "repair_thresholds",
        serde::Value::Array(vec![serde::Value::Number(0.0); groups]),
    )?;
    set_field(doc, "repair_batches_in_tier", serde::Value::Number(0.0))?;
    set_field(doc, "repair_recovery_streak", serde::Value::Number(0.0))?;
    set_field(doc, "repair_projection", serde::Value::Bool(false))?;
    set_field(doc, "repair_work_us", serde::Value::Number(0.0))?;
    set_field(doc, "version", serde::Value::Number(5.0))?;
    Ok(())
}

/// Run the in-place upgrade chain on one engine-checkpoint object whose
/// writer's format was `version`, leaving it at [`CHECKPOINT_VERSION`].
/// Each step writes the literal version it upgrades *to*, so the chain
/// stays correct when later versions are appended.
fn upgrade_engine(doc: &mut serde::Value, version: u32) -> Result<()> {
    if version < 2 {
        upgrade_v1_engine(doc)?;
    }
    if version < 3 {
        upgrade_v2_engine(doc)?;
    }
    if version < 4 {
        upgrade_v3_engine(doc)?;
    }
    if version < 5 {
        upgrade_v4_engine(doc)?;
    }
    Ok(())
}

impl EngineCheckpoint {
    /// Serialise to a compact JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialisation is infallible")
    }

    /// Serialise to a pretty-printed JSON document (for artifacts meant to
    /// be read or diffed by operators).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("checkpoint serialisation is infallible")
    }

    /// Parse a checkpoint document, upgrading still-supported older
    /// formats in place (a v1 document restores as a fully-labeled
    /// two-plane engine with an empty pending-join index).
    ///
    /// # Errors
    /// [`StreamError::CheckpointVersion`] for a document written by an
    /// unsupported format version; [`StreamError::Checkpoint`] for
    /// malformed JSON or missing/ill-typed fields. Never panics.
    pub fn from_json(json: &str) -> Result<Self> {
        let mut doc = parse_document(json)?;
        let version = check_version(&doc)?;
        if version < CHECKPOINT_VERSION {
            upgrade_engine(&mut doc, version)?;
        }
        serde::Deserialize::from_value(&doc).map_err(|e| StreamError::Checkpoint(e.to_string()))
    }
}

/// A coherent snapshot of every shard of a
/// [`ShardedEngine`](crate::ShardedEngine), taken between batches.
///
/// [`ShardedEngine::ingest`](crate::ShardedEngine::ingest) takes `&mut
/// self`, so no batch can be in flight while
/// [`ShardedEngine::checkpoint`](crate::ShardedEngine::checkpoint) borrows
/// the engine — the per-shard snapshots are mutually consistent by
/// construction, not by locking.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ShardedCheckpoint {
    /// Format version (see [`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// One engine checkpoint per shard, indexed by shard id.
    pub shards: Vec<EngineCheckpoint>,
}

impl ShardedCheckpoint {
    /// Serialise to a compact JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialisation is infallible")
    }

    /// Serialise to a pretty-printed JSON document.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("checkpoint serialisation is infallible")
    }

    /// Parse a sharded checkpoint document, upgrading still-supported
    /// older formats shard by shard.
    ///
    /// # Errors
    /// Same contract as [`EngineCheckpoint::from_json`]: typed errors,
    /// never a panic.
    pub fn from_json(json: &str) -> Result<Self> {
        let mut doc = parse_document(json)?;
        let version = check_version(&doc)?;
        if version < CHECKPOINT_VERSION {
            let mut shards = field(&doc, "shards")?
                .as_array()
                .ok_or_else(|| StreamError::Checkpoint("`shards` is not an array".into()))?
                .clone();
            for shard in &mut shards {
                upgrade_engine(shard, version)?;
            }
            set_field(&mut doc, "shards", serde::Value::Array(shards))?;
            set_field(
                &mut doc,
                "version",
                serde::Value::Number(f64::from(CHECKPOINT_VERSION)),
            )?;
        }
        serde::Deserialize::from_value(&doc).map_err(|e| StreamError::Checkpoint(e.to_string()))
    }
}

/// Validation shared by [`StreamEngine::restore`](crate::StreamEngine::restore): every cross-field
/// invariant a well-formed checkpoint satisfies, checked up front so a
/// tampered document is rejected before any state is built.
pub(crate) fn validate(ckpt: &EngineCheckpoint) -> Result<()> {
    if ckpt.version != CHECKPOINT_VERSION {
        return Err(StreamError::CheckpointVersion {
            found: ckpt.version,
            expected: CHECKPOINT_VERSION,
        });
    }
    let d = ckpt.schema.len();
    if ckpt.window.dim != d {
        return Err(StreamError::Checkpoint(format!(
            "window stride {} disagrees with the {d}-column schema",
            ckpt.window.dim
        )));
    }
    if ckpt.window.capacity != ckpt.config.window {
        return Err(StreamError::Checkpoint(format!(
            "window capacity {} disagrees with configured window {}",
            ckpt.window.capacity, ckpt.config.window
        )));
    }
    let groups = ckpt.config.groups;
    if groups == 0 || groups > 256 {
        return Err(StreamError::Checkpoint(format!(
            "configured groups must be 1..=256, got {groups}"
        )));
    }
    if ckpt.detectors.len() != groups {
        return Err(StreamError::Checkpoint(format!(
            "expected {groups} detector states (one per group cell), got {}",
            ckpt.detectors.len()
        )));
    }
    if ckpt.repair_thresholds.len() != groups {
        return Err(StreamError::Checkpoint(format!(
            "expected {groups} repair thresholds (one per group cell), got {}",
            ckpt.repair_thresholds.len()
        )));
    }
    if ckpt.repair_tier > 3 {
        return Err(StreamError::Checkpoint(format!(
            "repair tier {} is not a ladder rung (0..=3)",
            ckpt.repair_tier
        )));
    }
    if ckpt.profiles.len() != groups * 2 {
        return Err(StreamError::Checkpoint(format!(
            "expected {} cell profiles, got {}",
            groups * 2,
            ckpt.profiles.len()
        )));
    }
    for (i, profile) in ckpt.profiles.iter().enumerate() {
        if let Some(set) = profile {
            for p in set.projections() {
                if p.coeffs.len() != d {
                    return Err(StreamError::Checkpoint(format!(
                        "cell-{i} constraint projects {} attributes; the schema has {d}",
                        p.coeffs.len()
                    )));
                }
            }
        }
    }
    if ckpt.predictor.encoding().num_columns() != d {
        return Err(StreamError::Checkpoint(format!(
            "feature encoding covers {} columns; the schema has {d}",
            ckpt.predictor.encoding().num_columns()
        )));
    }
    if ckpt.predictor.model().kind() != ckpt.learner {
        return Err(StreamError::Checkpoint(format!(
            "model kind {} disagrees with the engine's learner {}",
            ckpt.predictor.model().kind().name(),
            ckpt.learner.name()
        )));
    }
    if (ckpt.window.meta.len() as u64) > ckpt.seen {
        return Err(StreamError::Checkpoint(format!(
            "window holds {} tuples but only {} were ever seen",
            ckpt.window.meta.len(),
            ckpt.seen
        )));
    }
    if ckpt.ids_issued < ckpt.seen {
        return Err(StreamError::Checkpoint(format!(
            "id clock {} behind the {} tuples seen",
            ckpt.ids_issued, ckpt.seen
        )));
    }
    if let Some(newest) = ckpt.window.meta.last() {
        if newest.id >= ckpt.ids_issued {
            return Err(StreamError::Checkpoint(format!(
                "window holds tuple id {} but the id clock is {}",
                newest.id, ckpt.ids_issued
            )));
        }
    }
    if (ckpt.window.labels.len() as u64) > ckpt.seen {
        return Err(StreamError::Checkpoint(format!(
            "label ring holds {} pairs but only {} tuples were ever seen",
            ckpt.window.labels.len(),
            ckpt.seen
        )));
    }
    if let Some(pending_newest) = ckpt.window.pending.last() {
        if pending_newest.id >= ckpt.ids_issued {
            return Err(StreamError::Checkpoint(format!(
                "pending-join entry {} beyond the id clock {}",
                pending_newest.id, ckpt.ids_issued
            )));
        }
    }
    // Ring bounds, id monotonicity, pending/ring overlap, and in-range
    // groups/binary labels are enforced by the window replay itself
    // (`SlidingWindow::from_state`).
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_gate_reads_the_version_first() {
        // A document that is *only* a wrong version must report the
        // version mismatch, not a missing-field error.
        let err = EngineCheckpoint::from_json(r#"{"version": 999}"#).unwrap_err();
        assert!(matches!(
            err,
            StreamError::CheckpointVersion {
                found: 999,
                expected: CHECKPOINT_VERSION
            }
        ));
    }

    #[test]
    fn garbage_is_a_typed_error() {
        for garbage in ["", "{", "[1,2", "null", r#"{"version": "one"}"#] {
            assert!(
                matches!(
                    EngineCheckpoint::from_json(garbage),
                    Err(StreamError::Checkpoint(_))
                ),
                "{garbage:?} must fail as Checkpoint"
            );
            assert!(ShardedCheckpoint::from_json(garbage).is_err());
        }
    }
}
