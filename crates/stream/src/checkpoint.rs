//! Durable checkpoint/restore for the stream engines.
//!
//! A restart used to lose the sliding-window counters and the per-group
//! Page–Hinkley state, reopening a warm-up gap in which drift goes
//! undetected — exactly the blind spot stream-fairness monitoring exists to
//! close. [`EngineCheckpoint`] captures a [`StreamEngine`](crate::StreamEngine)'s **complete**
//! serving and monitoring state — the fitted model parameters, the fitted
//! feature encoding, the per-(group, label) conformance profiles, the
//! sliding window (metadata + feature arena + derived counters), both
//! Page–Hinkley detectors (including warm-up/cooldown position), the alert
//! log, and the configuration — as one versioned JSON document via the
//! vendored serde shim.
//!
//! The contract, pinned by `tests/checkpoint_roundtrip.rs`: an engine
//! restored from a checkpoint produces **bit-identical** decisions,
//! snapshots, and alerts to one that never stopped, on the same subsequent
//! tuple sequence. No warm-up gap, no re-alert storm, no drifted decision
//! boundary.
//!
//! Corrupted documents fail loudly with typed [`StreamError`]s: truncated
//! JSON and missing fields surface as [`StreamError::Checkpoint`], a
//! version from an incompatible writer as
//! [`StreamError::CheckpointVersion`] — a restore never panics on external
//! input and never half-loads.
//!
//! One format caveat: JSON has no NaN, and the shim encodes non-finite
//! floats as `null` (read back as +∞). All engine-produced state is finite,
//! but a stream that feeds literal NaN *feature values* into the window
//! would not round-trip them — don't do that.

use crate::drift::{DriftAlert, PageHinkleyState};
use crate::engine::StreamConfig;
use crate::window::WindowState;
use crate::{Result, StreamError};
use cf_learners::LearnerKind;
use confair_core::PredictorState;

/// The checkpoint format version this build reads and writes. Bump on any
/// incompatible change to the serialised layout.
pub const CHECKPOINT_VERSION: u32 = 1;

/// A complete, versioned snapshot of one [`StreamEngine`](crate::StreamEngine).
///
/// Produced by [`StreamEngine::checkpoint`](crate::StreamEngine::checkpoint), consumed by
/// [`StreamEngine::restore`](crate::StreamEngine::restore); serialised with [`EngineCheckpoint::to_json`]
/// / [`EngineCheckpoint::from_json`]. Fields are public so operators can
/// audit a checkpoint's contents (e.g. inspect the profiled constraints or
/// the alert log) without restoring it.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EngineCheckpoint {
    /// Format version (see [`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The reference schema's column names.
    pub schema: Vec<String>,
    /// The learner family used for (re)training.
    pub learner: LearnerKind,
    /// The full engine configuration, including the ConFair settings that
    /// drive on-alert retraining.
    pub config: StreamConfig,
    /// The fitted model parameters and feature encoding.
    pub predictor: PredictorState,
    /// Conformance profiles per (group, label) cell, flattened in
    /// `[(g=0,y=0), (g=0,y=1), (g=1,y=0), (g=1,y=1)]` order; `None` marks
    /// a cell too small to profile.
    pub profiles: Vec<Option<cf_conformance::ConstraintSet>>,
    /// The sliding window's logical contents (oldest first).
    pub window: WindowState,
    /// Per-group Page–Hinkley detector state, `[majority, minority]`.
    pub detectors: Vec<PageHinkleyState>,
    /// Every alert raised since construction, in stream order.
    pub alerts: Vec<DriftAlert>,
    /// Total tuples ingested.
    pub seen: u64,
    /// Times the retraining hook has run.
    pub retrains: u64,
    /// Stream position until which DI-floor alerts stay suppressed
    /// (cooldown hysteresis).
    pub floor_quiet_until: u64,
}

/// Read the `version` field of a checkpoint document before anything else,
/// so an incompatible-version document reports
/// [`StreamError::CheckpointVersion`] rather than a field-level parse
/// error from a layout it never promised to match.
fn check_version(doc: &serde::Value) -> Result<()> {
    let version = doc
        .get("version")
        .and_then(serde::Value::as_u64)
        .ok_or_else(|| StreamError::Checkpoint("missing or non-integer `version`".into()))?;
    if version != u64::from(CHECKPOINT_VERSION) {
        return Err(StreamError::CheckpointVersion {
            found: version as u32,
            expected: CHECKPOINT_VERSION,
        });
    }
    Ok(())
}

fn parse_document(json: &str) -> Result<serde::Value> {
    serde_json::from_str(json).map_err(|e| StreamError::Checkpoint(e.to_string()))
}

impl EngineCheckpoint {
    /// Serialise to a compact JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialisation is infallible")
    }

    /// Serialise to a pretty-printed JSON document (for artifacts meant to
    /// be read or diffed by operators).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("checkpoint serialisation is infallible")
    }

    /// Parse a checkpoint document.
    ///
    /// # Errors
    /// [`StreamError::CheckpointVersion`] for a document written by an
    /// incompatible format version; [`StreamError::Checkpoint`] for
    /// malformed JSON or missing/ill-typed fields. Never panics.
    pub fn from_json(json: &str) -> Result<Self> {
        let doc = parse_document(json)?;
        check_version(&doc)?;
        serde::Deserialize::from_value(&doc).map_err(|e| StreamError::Checkpoint(e.to_string()))
    }
}

/// A coherent snapshot of every shard of a
/// [`ShardedEngine`](crate::ShardedEngine), taken between batches.
///
/// [`ShardedEngine::ingest`](crate::ShardedEngine::ingest) takes `&mut
/// self`, so no batch can be in flight while
/// [`ShardedEngine::checkpoint`](crate::ShardedEngine::checkpoint) borrows
/// the engine — the per-shard snapshots are mutually consistent by
/// construction, not by locking.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ShardedCheckpoint {
    /// Format version (see [`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// One engine checkpoint per shard, indexed by shard id.
    pub shards: Vec<EngineCheckpoint>,
}

impl ShardedCheckpoint {
    /// Serialise to a compact JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialisation is infallible")
    }

    /// Serialise to a pretty-printed JSON document.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("checkpoint serialisation is infallible")
    }

    /// Parse a sharded checkpoint document.
    ///
    /// # Errors
    /// Same contract as [`EngineCheckpoint::from_json`]: typed errors,
    /// never a panic.
    pub fn from_json(json: &str) -> Result<Self> {
        let doc = parse_document(json)?;
        check_version(&doc)?;
        serde::Deserialize::from_value(&doc).map_err(|e| StreamError::Checkpoint(e.to_string()))
    }
}

/// Validation shared by [`StreamEngine::restore`](crate::StreamEngine::restore): every cross-field
/// invariant a well-formed checkpoint satisfies, checked up front so a
/// tampered document is rejected before any state is built.
pub(crate) fn validate(ckpt: &EngineCheckpoint) -> Result<()> {
    if ckpt.version != CHECKPOINT_VERSION {
        return Err(StreamError::CheckpointVersion {
            found: ckpt.version,
            expected: CHECKPOINT_VERSION,
        });
    }
    let d = ckpt.schema.len();
    if ckpt.window.dim != d {
        return Err(StreamError::Checkpoint(format!(
            "window stride {} disagrees with the {d}-column schema",
            ckpt.window.dim
        )));
    }
    if ckpt.window.capacity != ckpt.config.window {
        return Err(StreamError::Checkpoint(format!(
            "window capacity {} disagrees with configured window {}",
            ckpt.window.capacity, ckpt.config.window
        )));
    }
    if ckpt.detectors.len() != 2 {
        return Err(StreamError::Checkpoint(format!(
            "expected 2 detector states (one per group), got {}",
            ckpt.detectors.len()
        )));
    }
    if ckpt.profiles.len() != 4 {
        return Err(StreamError::Checkpoint(format!(
            "expected 4 cell profiles, got {}",
            ckpt.profiles.len()
        )));
    }
    for (i, profile) in ckpt.profiles.iter().enumerate() {
        if let Some(set) = profile {
            for p in set.projections() {
                if p.coeffs.len() != d {
                    return Err(StreamError::Checkpoint(format!(
                        "cell-{i} constraint projects {} attributes; the schema has {d}",
                        p.coeffs.len()
                    )));
                }
            }
        }
    }
    if ckpt.predictor.encoding().num_columns() != d {
        return Err(StreamError::Checkpoint(format!(
            "feature encoding covers {} columns; the schema has {d}",
            ckpt.predictor.encoding().num_columns()
        )));
    }
    if ckpt.predictor.model().kind() != ckpt.learner {
        return Err(StreamError::Checkpoint(format!(
            "model kind {} disagrees with the engine's learner {}",
            ckpt.predictor.model().kind().name(),
            ckpt.learner.name()
        )));
    }
    if (ckpt.window.meta.len() as u64) > ckpt.seen {
        return Err(StreamError::Checkpoint(format!(
            "window holds {} tuples but only {} were ever seen",
            ckpt.window.meta.len(),
            ckpt.seen
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_gate_reads_the_version_first() {
        // A document that is *only* a wrong version must report the
        // version mismatch, not a missing-field error.
        let err = EngineCheckpoint::from_json(r#"{"version": 999}"#).unwrap_err();
        assert!(matches!(
            err,
            StreamError::CheckpointVersion {
                found: 999,
                expected: CHECKPOINT_VERSION
            }
        ));
    }

    #[test]
    fn garbage_is_a_typed_error() {
        for garbage in ["", "{", "[1,2", "null", r#"{"version": "one"}"#] {
            assert!(
                matches!(
                    EngineCheckpoint::from_json(garbage),
                    Err(StreamError::Checkpoint(_))
                ),
                "{garbage:?} must fail as Checkpoint"
            );
            assert!(ShardedCheckpoint::from_json(garbage).is_err());
        }
    }
}
