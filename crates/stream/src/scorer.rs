//! The serving half of the engine split: feature encoding + predictor +
//! recycled scratch matrix, and nothing else.
//!
//! [`Scorer`] is the latency-critical path distilled out of the old
//! monolithic `StreamEngine`: it turns a validated micro-batch into hard
//! decisions via the predictor's row-matrix fast path, allocation-free in
//! steady state, and holds **no** monitoring state — no window, no
//! detectors, no alert log. That is what makes it cheap to keep on the
//! caller's thread while a [`Monitor`](crate::Monitor) runs elsewhere: the
//! only cross-thread traffic a scorer ever receives is a whole replacement
//! predictor, installed between batches via [`Scorer::install`].

use crate::engine::StreamTuple;
use crate::{Result, StreamError};
use cf_linalg::Matrix;
use confair_core::{Predictor, PredictorState};
use std::borrow::Borrow;

/// The allocation-free scoring half of a stream engine: schema, fitted
/// predictor, and the recycled per-batch scratch buffer.
///
/// A `Scorer` is deliberately dumb: it assumes its input was already
/// validated against the schema (the engines do that at their boundaries)
/// and it never looks at groups, labels, windows, or detectors. Everything
/// observable about fairness lives in the [`Monitor`](crate::Monitor) half.
pub struct Scorer {
    schema: Vec<String>,
    predictor: Box<dyn Predictor>,
    /// Recycled backing buffer for the per-batch feature matrix, so the
    /// steady-state scoring path allocates nothing per tuple.
    scratch: Vec<f64>,
}

impl Scorer {
    /// A scorer over `schema` serving `predictor`.
    pub fn new(schema: Vec<String>, predictor: Box<dyn Predictor>) -> Self {
        Scorer {
            schema,
            predictor,
            scratch: Vec::new(),
        }
    }

    /// The reference schema's column names.
    pub fn schema(&self) -> &[String] {
        &self.schema
    }

    /// Score one prevalidated micro-batch: assemble the row-major feature
    /// matrix in the recycled scratch buffer and run the predictor's
    /// row-matrix fast path. Callers guarantee every tuple matches the
    /// schema width (see [`crate::engine::StreamEngine::ingest`] for the
    /// validating entry points).
    pub fn score<T: Borrow<StreamTuple>>(&mut self, batch: &[T]) -> Result<Vec<u8>> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let d = self.schema.len();
        // Score off one row-major matrix whose backing buffer is recycled
        // across calls: no `Dataset` assembly, no column-major round trip,
        // no steady-state allocation per tuple.
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        buf.reserve(batch.len() * d);
        for t in batch {
            buf.extend_from_slice(&t.borrow().features);
        }
        let x = Matrix::from_vec(batch.len(), d, buf);
        let decisions = self
            .predictor
            .predict_rows(&x)
            .map_err(StreamError::from_core)?;
        self.scratch = x.into_vec();
        Ok(decisions)
    }

    /// Swap in a replacement predictor (the publication side of a retrain).
    /// Takes effect for the next [`Scorer::score`] call; the scorer's
    /// scratch buffer and schema are untouched.
    pub fn install(&mut self, predictor: Box<dyn Predictor>) {
        self.predictor = predictor;
    }

    /// Snapshot the predictor's fitted state for checkpointing, or `None`
    /// when the predictor does not support serialisation.
    pub fn state(&self) -> Option<PredictorState> {
        self.predictor.state()
    }
}
