//! The serving half of the engine split: feature encoding + predictor +
//! recycled scratch matrix, and nothing else.
//!
//! [`Scorer`] is the latency-critical path distilled out of the old
//! monolithic `StreamEngine`: it turns a validated micro-batch into hard
//! decisions via the predictor's row-matrix fast path, allocation-free in
//! steady state, and holds **no** monitoring state — no window, no
//! detectors, no alert log. That is what makes it cheap to keep on the
//! caller's thread while a [`Monitor`](crate::Monitor) runs elsewhere: the
//! only cross-thread traffic a scorer ever receives is a whole replacement
//! predictor ([`Scorer::install`]) or a whole repair overlay
//! ([`Scorer::apply_repair`]), both installed between batches.
//!
//! ## The repair overlay
//!
//! The monitor's repair ladder (see [`crate::repair`]) publishes per-cell
//! margin thresholds and, at tier 2, per-cell conformance profiles. While
//! the overlay is the identity (all-zero thresholds, no projection) the
//! scorer takes the exact pre-ladder `predict_rows` path — decisions,
//! allocation behaviour, and floating-point trajectories are bit-identical
//! to an engine built before the ladder existed. With a live overlay the
//! scorer switches to the predictor's margin path and decides
//! `margin' >= threshold[cell]`, where `margin'` subtracts the tier-2
//! conformance gap when projection is installed. The repair path allocates
//! one margins vector per batch; repair episodes are transient, so the
//! identity fast path keeps the steady state allocation-free.

use crate::engine::StreamTuple;
use crate::monitor::CellProfiles;
use crate::repair::RepairUpdate;
use crate::{Result, StreamError};
use cf_linalg::Matrix;
use confair_core::{Predictor, PredictorState};
use std::borrow::Borrow;

/// The scorer-side mirror of the monitor's repair state: per-cell margin
/// cutoffs plus the optional tier-2 conformance profiles.
#[derive(Default)]
pub(crate) struct RepairOverlay {
    /// Per-cell margin cutoffs; empty or all-zero means "no nudge".
    thresholds: Vec<f64>,
    /// Per-cell `[rejected, accepted]` conformance profiles; `Some`
    /// installs the tier-2 margin projection.
    projection: Option<CellProfiles>,
}

impl RepairOverlay {
    /// Whether the overlay is the identity (scoring may take the exact
    /// pre-ladder fast path).
    fn is_identity(&self) -> bool {
        self.projection.is_none() && self.thresholds.iter().all(|&t| t == 0.0)
    }

    /// The margin cutoff for `cell` (0.0 when the cell is out of range —
    /// a tuple from a cell the monitor has no threshold for decides at
    /// the model's native boundary).
    fn threshold(&self, cell: u8) -> f64 {
        self.thresholds
            .get(usize::from(cell))
            .copied()
            .unwrap_or(0.0)
    }

    /// The tier-2 conformance gap for `row` in `cell`: how much worse the
    /// row conforms to the accepted-class profile than to the
    /// rejected-class profile. Positive gap lowers the effective margin.
    fn conformance_gap(&self, cell: u8, row: &[f64]) -> f64 {
        match &self.projection {
            Some(profiles) => match profiles.get(usize::from(cell)) {
                Some([Some(rejected), Some(accepted)]) => {
                    accepted.violation(row) - rejected.violation(row)
                }
                _ => 0.0,
            },
            None => 0.0,
        }
    }
}

/// The allocation-free scoring half of a stream engine: schema, fitted
/// predictor, and the recycled per-batch scratch buffer.
///
/// A `Scorer` is deliberately dumb: it assumes its input was already
/// validated against the schema (the engines do that at their boundaries)
/// and it never looks at labels, windows, or detectors. Everything
/// observable about fairness lives in the [`Monitor`](crate::Monitor)
/// half; the scorer only mirrors the monitor's published repair overlay.
pub struct Scorer {
    schema: Vec<String>,
    predictor: Box<dyn Predictor>,
    /// Recycled backing buffer for the per-batch feature matrix, so the
    /// steady-state scoring path allocates nothing per tuple.
    scratch: Vec<f64>,
    /// The installed repair overlay (identity until the monitor's ladder
    /// publishes corrections).
    repair: RepairOverlay,
}

impl Scorer {
    /// A scorer over `schema` serving `predictor`.
    pub fn new(schema: Vec<String>, predictor: Box<dyn Predictor>) -> Self {
        Scorer {
            schema,
            predictor,
            scratch: Vec::new(),
            repair: RepairOverlay::default(),
        }
    }

    /// The reference schema's column names.
    pub fn schema(&self) -> &[String] {
        &self.schema
    }

    /// Score one prevalidated micro-batch: assemble the row-major feature
    /// matrix in the recycled scratch buffer and run the predictor's
    /// row-matrix fast path. Callers guarantee every tuple matches the
    /// schema width (see [`crate::engine::StreamEngine::ingest`] for the
    /// validating entry points).
    ///
    /// With a live repair overlay the decision for a tuple in cell `g`
    /// becomes `margin - conformance_gap(g) >= threshold[g]`; with the
    /// identity overlay this is byte-identical to the plain
    /// `predict_rows` path (for the built-in learners, `predict` is
    /// exactly `margin >= 0.0`).
    pub fn score<T: Borrow<StreamTuple>>(&mut self, batch: &[T]) -> Result<Vec<u8>> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let d = self.schema.len();
        // Score off one row-major matrix whose backing buffer is recycled
        // across calls: no `Dataset` assembly, no column-major round trip,
        // no steady-state allocation per tuple.
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        buf.reserve(batch.len() * d);
        for t in batch {
            buf.extend_from_slice(&t.borrow().features);
        }
        let x = Matrix::from_vec(batch.len(), d, buf);
        let decisions = if self.repair.is_identity() {
            self.predictor
                .predict_rows(&x)
                .map_err(StreamError::from_core)?
        } else {
            let margins = self
                .predictor
                .predict_margin_rows(&x)
                .map_err(StreamError::from_core)?;
            batch
                .iter()
                .zip(margins)
                .map(|(t, margin)| {
                    let t = t.borrow();
                    let adjusted = margin - self.repair.conformance_gap(t.group, &t.features);
                    u8::from(adjusted >= self.repair.threshold(t.group))
                })
                .collect()
        };
        self.scratch = x.into_vec();
        Ok(decisions)
    }

    /// Swap in a replacement predictor (the publication side of a retrain).
    /// Takes effect for the next [`Scorer::score`] call; the scorer's
    /// scratch buffer, schema, and repair overlay are untouched.
    pub fn install(&mut self, predictor: Box<dyn Predictor>) {
        self.predictor = predictor;
    }

    /// Install the monitor's published repair state (the publication side
    /// of a ladder step). The update carries *absolute* state, so applying
    /// only the latest of several queued updates is correct.
    pub fn apply_repair(&mut self, update: RepairUpdate) {
        self.repair.thresholds = update.thresholds;
        self.repair.projection = update.projection;
    }

    /// The per-cell margin cutoffs currently installed (empty until a
    /// repair update arrives).
    pub fn repair_thresholds(&self) -> &[f64] {
        &self.repair.thresholds
    }

    /// Whether the tier-2 conformance projection is installed.
    pub fn repair_projection(&self) -> bool {
        self.repair.projection.is_some()
    }

    /// Snapshot the predictor's fitted state for checkpointing, or `None`
    /// when the predictor does not support serialisation.
    pub fn state(&self) -> Option<PredictorState> {
        self.predictor.state()
    }
}
