//! Sharded multi-stream serving: a router over independent per-shard
//! [`StreamEngine`]s.
//!
//! Production traffic is naturally partitioned — by region, product line,
//! tenant — and each partition drifts on its own schedule. [`ShardedEngine`]
//! keys a [`StreamEngine`] per shard id, routes each arriving tuple to its
//! shard, ingests the per-shard micro-batches in parallel (scoped threads
//! via the `rayon` facade), and reads a **cross-shard aggregate**
//! [`FairnessSnapshot`] by merging the additive window counters — exact, not
//! approximate, because every counter is a sum.
//!
//! Per-shard state (model, conformance profiles, Page–Hinkley detectors,
//! window, alert log) stays fully independent: a shard's drift alert or
//! retrain never perturbs its neighbours, and per-shard results are
//! byte-identical to running that shard's engine standalone (pinned by the
//! `sharded_consistency` integration test).

use crate::async_engine::{AsyncConfig, AsyncEngine, DropCounters};
use crate::checkpoint::ShardedCheckpoint;
use crate::engine::{IngestOutcome, LabelFeedback, StreamEngine, StreamTuple};
use crate::monitor::{FairnessSnapshot, FeedbackOutcome};
use crate::telemetry::StreamMetrics;
use crate::window::GroupCounts;
use crate::{Result, StreamError};
use cf_telemetry::{MetricsRegistry, SharedSink};

/// One observation addressed to a shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedTuple {
    /// The shard key (region, product, …) already resolved to an index.
    pub shard: u32,
    /// The observation itself.
    pub tuple: StreamTuple,
}

// A routed tuple borrows as the observation it carries, so a single-shard
// router can feed its batch to the shard engine's generic ingest directly
// — no per-tuple gather into a `&StreamTuple` side array.
impl std::borrow::Borrow<StreamTuple> for ShardedTuple {
    fn borrow(&self) -> &StreamTuple {
        &self.tuple
    }
}

/// Recycled validate-once-scatter-once routing scratch. One counting pass
/// over the batch builds a per-shard histogram (validation folded in), a
/// prefix sum turns it into segment offsets, and a second pass scatters
/// each tuple's *index* into its shard's segment of `order` — so routing a
/// mixed batch costs two linear passes and zero per-tuple allocations, and
/// the buffers are reused across batches instead of reallocated.
#[derive(Debug, Default)]
struct RouteScratch {
    /// Per-shard histogram during counting; per-shard write cursors during
    /// the scatter pass.
    cursors: Vec<u32>,
    /// Start offset of each shard's segment in `order` (length
    /// `shards + 1`; shard `s` owns `order[offsets[s]..offsets[s + 1]]`).
    offsets: Vec<u32>,
    /// Batch indices in shard-major order, arrival order within a shard.
    order: Vec<u32>,
}

impl RouteScratch {
    /// Run the counting + scatter passes for `batch`. `shard_of` has
    /// already been validated to be in `0..n`.
    fn route(&mut self, n: usize, shards_of: impl Iterator<Item = u32> + Clone, len: usize) {
        self.cursors.clear();
        self.cursors.resize(n, 0);
        for shard in shards_of.clone() {
            self.cursors[shard as usize] += 1;
        }
        self.offsets.clear();
        self.offsets.reserve(n + 1);
        let mut acc = 0u32;
        for cursor in &mut self.cursors {
            let count = *cursor;
            self.offsets.push(acc);
            // The histogram slot becomes the scatter pass's write cursor,
            // starting at its shard's segment offset.
            *cursor = acc;
            acc += count;
        }
        self.offsets.push(acc);
        self.order.clear();
        self.order.resize(len, 0);
        for (i, shard) in shards_of.enumerate() {
            let cursor = &mut self.cursors[shard as usize];
            self.order[*cursor as usize] = i as u32;
            *cursor += 1;
        }
    }

    /// Shard `s`'s segment of the routed order.
    fn segment(&self, s: usize) -> &[u32] {
        &self.order[self.offsets[s] as usize..self.offsets[s + 1] as usize]
    }
}

/// One late ground-truth record addressed to the shard that served its
/// tuple. Ids are **per shard** (each shard engine runs its own id clock),
/// so the shard key is part of the join address, not just a routing hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedFeedback {
    /// The shard whose engine served (and id-stamped) the tuple.
    pub shard: u32,
    /// The feedback record itself.
    pub feedback: LabelFeedback,
}

/// What one sharded ingest call produced.
#[derive(Debug, Clone)]
pub struct ShardedOutcome {
    /// The served decision for every tuple of the batch, **in input
    /// order** (scattered back from the per-shard engines).
    pub decisions: Vec<u8>,
    /// Per-shard outcomes, indexed by shard id. Shards that received no
    /// tuples report an empty outcome.
    pub per_shard: Vec<IngestOutcome>,
    /// The cross-shard aggregate fairness reading after the batch.
    pub snapshot: FairnessSnapshot,
}

impl ShardedOutcome {
    /// Alerts raised by this batch across all shards, as `(shard, alert)`.
    pub fn alerts(&self) -> impl Iterator<Item = (u32, &crate::drift::DriftAlert)> {
        self.per_shard
            .iter()
            .enumerate()
            .flat_map(|(s, o)| o.alerts.iter().map(move |a| (s as u32, a)))
    }
}

/// Largest per-shard batch that still ingests serially: below this, the
/// scoring work (≈40 ns/tuple) is cheaper than spawning and joining a
/// scoped OS thread, so parallel dispatch would only add latency.
const MIN_PARALLEL_SHARD_BATCH: usize = 512;

/// A router over N independent per-shard [`StreamEngine`]s with parallel
/// ingest and exact cross-shard aggregate snapshots.
pub struct ShardedEngine {
    shards: Vec<StreamEngine>,
    route: RouteScratch,
}

impl ShardedEngine {
    /// Bootstrap `n_shards` engines from one shared reference dataset.
    /// Every shard trains from the same reference with the same seed, so
    /// all shards start from identical models and profiles.
    ///
    /// Bootstrap cost is `n_shards` full ConFair runs (`Predictor` holds
    /// unclonable trained state, so identical engines are re-derived
    /// rather than copied) — a one-time cost, off the serving path. For
    /// expensive references, bootstrap per-shard engines yourself (in
    /// parallel, or from per-shard references) and use
    /// [`ShardedEngine::from_engines`].
    pub fn from_reference(
        reference: &cf_data::Dataset,
        learner: cf_learners::LearnerKind,
        seed: u64,
        config: crate::engine::StreamConfig,
        n_shards: usize,
    ) -> Result<Self> {
        if n_shards == 0 {
            return Err(StreamError::NoShards);
        }
        let shards = (0..n_shards)
            .map(|_| StreamEngine::from_reference(reference, learner, seed, config.clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedEngine {
            shards,
            route: RouteScratch::default(),
        })
    }

    /// Assemble from independently bootstrapped engines (e.g. one
    /// reference dataset per region). All engines must share the same
    /// schema (or routed tuples could not be validated uniformly) and the
    /// same DI* floor (or the aggregate snapshot's verdict would silently
    /// judge the fleet by one shard's floor).
    pub fn from_engines(shards: Vec<StreamEngine>) -> Result<Self> {
        if shards.is_empty() {
            return Err(StreamError::NoShards);
        }
        let schema = shards[0].schema().to_vec();
        let di_floor = shards[0].config().di_floor;
        let groups = shards[0].config().groups;
        for (i, engine) in shards.iter().enumerate().skip(1) {
            if engine.schema() != schema.as_slice() {
                return Err(StreamError::Schema(format!(
                    "shard {i} schema {:?} differs from shard 0 schema {:?}",
                    engine.schema(),
                    schema
                )));
            }
            if engine.config().di_floor != di_floor {
                return Err(StreamError::ConfigMismatch(format!(
                    "shard {i} di_floor {} differs from shard 0 di_floor {di_floor}",
                    engine.config().di_floor
                )));
            }
            if engine.config().groups != groups {
                return Err(StreamError::ConfigMismatch(format!(
                    "shard {i} has {} group cells; shard 0 has {groups} \
                     (counters are only additive across identical cell layouts)",
                    engine.config().groups
                )));
            }
        }
        Ok(ShardedEngine {
            shards,
            route: RouteScratch::default(),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Each shard's open repair-ladder rung, indexed by shard id (`None`
    /// = that shard's ladder is idle or disabled). Shards climb and
    /// descend independently — one shard's escalation never moves its
    /// neighbours.
    pub fn repair_tiers(&self) -> Vec<Option<crate::repair::RepairTier>> {
        self.shards.iter().map(StreamEngine::repair_tier).collect()
    }

    /// Borrow one shard's engine (per-shard telemetry, alert logs, audits).
    pub fn shard(&self, shard: u32) -> Result<&StreamEngine> {
        self.shards
            .get(shard as usize)
            .ok_or(StreamError::BadShard {
                shard,
                shards: self.shards.len(),
            })
    }

    /// Install a telemetry sink on one shard's engine. Shards keep
    /// independent trails (each shard's id clock and window are its own),
    /// so each shard's audit log replays standalone — give every shard its
    /// own sink rather than sharing one.
    ///
    /// # Errors
    /// [`StreamError::BadShard`] for an out-of-range shard id.
    pub fn set_sink(&mut self, shard: u32, sink: SharedSink) -> Result<()> {
        let shards = self.shards.len();
        self.shards
            .get_mut(shard as usize)
            .ok_or(StreamError::BadShard { shard, shards })?
            .set_sink(sink);
        Ok(())
    }

    /// Register every shard's instruments on `registry` under a
    /// `shard="<id>"` label and start keeping them fresh.
    pub fn install_metrics(&mut self, registry: &MetricsRegistry) {
        for (i, engine) in self.shards.iter_mut().enumerate() {
            engine.set_metrics(StreamMetrics::register_shard(registry, Some(i as u32)));
        }
    }

    /// Total tuples ingested across all shards.
    pub fn tuples_seen(&self) -> u64 {
        self.shards.iter().map(StreamEngine::tuples_seen).sum()
    }

    /// The cross-shard merged per-cell counters. Exact: every windowed
    /// counter is additive, so the merge is a componentwise sum
    /// (`from_engines` pinned every shard to the same cell layout).
    pub fn merged_counts(&self) -> Vec<GroupCounts> {
        let mut merged = vec![GroupCounts::default(); self.shards[0].config().groups];
        for engine in &self.shards {
            for (cell, counts) in merged.iter_mut().zip(engine.window_counts()) {
                cell.merge(counts);
            }
        }
        merged
    }

    /// The cross-shard aggregate fairness reading — the fleet-wide DI*,
    /// parity gaps, and violation rates over the union of all windows.
    pub fn snapshot(&self) -> FairnessSnapshot {
        FairnessSnapshot::from_counts(&self.merged_counts(), self.shards[0].config().di_floor)
    }

    /// Snapshot every shard coherently as one [`ShardedCheckpoint`].
    ///
    /// Coherence is structural, not locked: [`ShardedEngine::ingest`]
    /// takes `&mut self`, so this `&self` borrow can only run between
    /// batches — no shard can be mid-ingest while its neighbours are
    /// captured, and the per-shard checkpoints always describe one
    /// consistent fleet state.
    ///
    /// # Errors
    /// [`StreamError::Checkpoint`] when any shard's predictor does not
    /// support serialisation.
    pub fn checkpoint(&self) -> Result<ShardedCheckpoint> {
        Ok(ShardedCheckpoint {
            version: crate::checkpoint::CHECKPOINT_VERSION,
            shards: self
                .shards
                .iter()
                .map(StreamEngine::checkpoint)
                .collect::<Result<Vec<_>>>()?,
        })
    }

    /// Rebuild a fleet from a sharded checkpoint. Each shard restores
    /// independently (bit-identical to its pre-checkpoint self), then the
    /// fleet is re-validated through [`ShardedEngine::from_engines`] so a
    /// tampered checkpoint with mismatched schemas or DI* floors is
    /// rejected with the same typed errors as any other inconsistent
    /// fleet.
    ///
    /// # Errors
    /// [`StreamError::CheckpointVersion`] for an incompatible format
    /// version; [`StreamError::Checkpoint`], [`StreamError::Schema`],
    /// [`StreamError::ConfigMismatch`], or [`StreamError::NoShards`] for
    /// inconsistent contents.
    pub fn restore(ckpt: ShardedCheckpoint) -> Result<Self> {
        if ckpt.version != crate::checkpoint::CHECKPOINT_VERSION {
            return Err(StreamError::CheckpointVersion {
                found: ckpt.version,
                expected: crate::checkpoint::CHECKPOINT_VERSION,
            });
        }
        Self::from_engines(
            ckpt.shards
                .into_iter()
                .map(StreamEngine::restore)
                .collect::<Result<Vec<_>>>()?,
        )
    }

    /// Route, score, and monitor one mixed-shard micro-batch. Per-shard
    /// batches are ingested in parallel on scoped threads; tuples keep
    /// their arrival order within each shard, and the returned decisions
    /// are scattered back to the input order.
    ///
    /// # Errors
    /// The whole batch is validated (shard ids, schema, groups, labels)
    /// before any shard ingests, so a validation error rejects the batch
    /// without advancing any engine. A per-shard scoring failure after
    /// validation surfaces as the first shard's error in shard order.
    pub fn ingest(&mut self, batch: &[ShardedTuple]) -> Result<ShardedOutcome> {
        let n = self.shards.len();
        let d = self.shards[0].schema().len();
        let groups = self.shards[0].config().groups;
        for (i, routed) in batch.iter().enumerate() {
            if routed.shard as usize >= n {
                return Err(StreamError::BadShard {
                    shard: routed.shard,
                    shards: n,
                });
            }
            crate::engine::validate_tuple(&routed.tuple, d, i, groups)?;
        }

        // Single-shard fleets skip routing entirely: the routed batch
        // already is shard 0's batch, in arrival order, so after the
        // validation pass above the only remaining router cost is one
        // decisions copy into the input-order view.
        if n == 1 {
            let outcome = self.shards[0].ingest_routed_prevalidated(batch)?;
            return Ok(ShardedOutcome {
                decisions: outcome.decisions.clone(),
                snapshot: self.snapshot(),
                per_shard: vec![outcome],
            });
        }

        // Scatter once: counting-sort the batch indices into shard-major
        // order on recycled scratch (two linear passes, no per-tuple
        // allocation), then gather each shard's borrowed sub-batch off its
        // segment. The same segments scatter the decisions back to input
        // order afterwards — no per-tuple position bookkeeping.
        let route = &mut self.route;
        route.route(n, batch.iter().map(|routed| routed.shard), batch.len());
        let ordered: Vec<&StreamTuple> = route
            .order
            .iter()
            .map(|&i| &batch[i as usize].tuple)
            .collect();

        // One scoped thread per non-empty shard — but only when the
        // per-shard work amortises the thread spawn/join cost; tiny
        // batches score faster serially than a thread can even start.
        // Empty shards are always resolved inline (their ingest is a
        // constant-time snapshot read). Serial vs parallel is
        // unobservable in the results: shards are fully independent.
        let parallel =
            (0..n).map(|s| route.segment(s).len()).max().unwrap_or(0) >= MIN_PARALLEL_SHARD_BATCH;
        let mut results: Vec<Option<Result<IngestOutcome>>> = (0..n).map(|_| None).collect();
        rayon::scope(|s| {
            for (shard, (engine, slot)) in
                self.shards.iter_mut().zip(results.iter_mut()).enumerate()
            {
                let span = &route.offsets[shard..shard + 2];
                let shard_batch = &ordered[span[0] as usize..span[1] as usize];
                if parallel && !shard_batch.is_empty() {
                    s.spawn(move |_| *slot = Some(engine.ingest_refs_prevalidated(shard_batch)));
                } else {
                    *slot = Some(engine.ingest_refs_prevalidated(shard_batch));
                }
            }
        });

        let mut outcomes = Vec::with_capacity(n);
        for result in results {
            outcomes.push(result.expect("every shard slot is filled")?);
        }

        let mut decisions = vec![0u8; batch.len()];
        for (shard, outcome) in outcomes.iter().enumerate() {
            for (&original, &decision) in route.segment(shard).iter().zip(&outcome.decisions) {
                decisions[original as usize] = decision;
            }
        }

        Ok(ShardedOutcome {
            decisions,
            per_shard: outcomes,
            snapshot: self.snapshot(),
        })
    }

    /// Route late ground truth to the shards that served it and join it
    /// into their label planes. Returns one [`FeedbackOutcome`] per shard,
    /// indexed by shard id (shards that received no records report zero
    /// joins and their current snapshot).
    ///
    /// # Errors
    /// The whole batch is validated first — shard range
    /// ([`StreamError::BadShard`]), label range
    /// ([`StreamError::BadLabel`]), and per-shard id clocks
    /// ([`StreamError::FutureFeedback`]) — so a validation error joins
    /// nothing anywhere.
    pub fn feedback(&mut self, feedback: &[ShardedFeedback]) -> Result<Vec<FeedbackOutcome>> {
        let n = self.shards.len();
        for routed in feedback {
            let shard = routed.shard as usize;
            if shard >= n {
                return Err(StreamError::BadShard {
                    shard: routed.shard,
                    shards: n,
                });
            }
            if routed.feedback.label >= 2 {
                return Err(StreamError::BadLabel(routed.feedback.label));
            }
            let issued = self.shards[shard].ids_issued();
            if routed.feedback.id >= issued {
                return Err(StreamError::FutureFeedback {
                    id: routed.feedback.id,
                    issued,
                });
            }
        }
        let mut per_shard: Vec<Vec<LabelFeedback>> = vec![Vec::new(); n];
        for routed in feedback {
            per_shard[routed.shard as usize].push(routed.feedback);
        }
        self.shards
            .iter_mut()
            .zip(per_shard)
            .map(|(engine, records)| engine.feedback(&records))
            .collect()
    }
}

/// The asynchronous sharded router: one [`AsyncEngine`] per shard, so each
/// shard gets its *own* background monitor thread while all scoring stays
/// on the caller's thread.
///
/// This inverts the sync router's parallelism: [`ShardedEngine::ingest`]
/// fans the whole score+monitor pipeline out to scoped threads and joins
/// them before returning; here the cheap part (scoring, ~tens of ns per
/// tuple) runs serially and the expensive part (window/detector updates,
/// on-alert retrains) proceeds concurrently across shards *after* `ingest`
/// has returned. A shard mid-retrain delays only its own queue — its
/// neighbours' monitors, and everyone's decisions, keep flowing.
pub struct ShardedAsyncEngine {
    shards: Vec<AsyncEngine>,
    route: RouteScratch,
}

impl ShardedAsyncEngine {
    /// Split a synchronous sharded engine into per-shard async pipelines,
    /// carrying every shard's observable state over exactly.
    pub fn from_sharded(engine: ShardedEngine, async_config: AsyncConfig) -> Self {
        ShardedAsyncEngine {
            shards: engine
                .shards
                .into_iter()
                .map(|e| AsyncEngine::from_engine(e, async_config))
                .collect(),
            route: RouteScratch::default(),
        }
    }

    /// Bootstrap `n_shards` async engines from one shared reference
    /// dataset (see [`ShardedEngine::from_reference`] for the bootstrap
    /// cost discussion).
    pub fn from_reference(
        reference: &cf_data::Dataset,
        learner: cf_learners::LearnerKind,
        seed: u64,
        config: crate::engine::StreamConfig,
        n_shards: usize,
        async_config: AsyncConfig,
    ) -> Result<Self> {
        Ok(Self::from_sharded(
            ShardedEngine::from_reference(reference, learner, seed, config, n_shards)?,
            async_config,
        ))
    }

    /// Assemble from independently bootstrapped engines, with the same
    /// fleet-coherence validation as [`ShardedEngine::from_engines`].
    pub fn from_engines(shards: Vec<StreamEngine>, async_config: AsyncConfig) -> Result<Self> {
        Ok(Self::from_sharded(
            ShardedEngine::from_engines(shards)?,
            async_config,
        ))
    }

    /// Rebuild a fleet from a sharded checkpoint (same validation as
    /// [`ShardedEngine::restore`]).
    pub fn restore(ckpt: ShardedCheckpoint, async_config: AsyncConfig) -> Result<Self> {
        Ok(Self::from_sharded(
            ShardedEngine::restore(ckpt)?,
            async_config,
        ))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Each shard's open repair-ladder rung per its monitor's latest
    /// published state, indexed by shard id (current after a
    /// [`ShardedAsyncEngine::flush`]).
    pub fn repair_tiers(&self) -> Vec<Option<crate::repair::RepairTier>> {
        self.shards.iter().map(AsyncEngine::repair_tier).collect()
    }

    /// Borrow one shard's async engine (lag, drop counters, alert log,
    /// published snapshots).
    pub fn shard(&self, shard: u32) -> Result<&AsyncEngine> {
        self.shards
            .get(shard as usize)
            .ok_or(StreamError::BadShard {
                shard,
                shards: self.shards.len(),
            })
    }

    /// Install a telemetry sink on one shard's background monitor (FIFO
    /// with that shard's queue; see [`AsyncEngine::set_sink`]). Shards
    /// keep independent trails.
    ///
    /// # Errors
    /// [`StreamError::BadShard`] for an out-of-range shard id;
    /// [`StreamError::Async`] when that shard's monitor thread is gone.
    pub fn set_sink(&mut self, shard: u32, sink: SharedSink) -> Result<()> {
        let shards = self.shards.len();
        self.shards
            .get_mut(shard as usize)
            .ok_or(StreamError::BadShard { shard, shards })?
            .set_sink(sink)
    }

    /// Register every shard's instruments on `registry` under a
    /// `shard="<id>"` label and start keeping them fresh (each shard's
    /// serving path and monitor thread update its own labeled set).
    ///
    /// # Errors
    /// [`StreamError::Async`] when any shard's monitor thread is gone.
    pub fn install_metrics(&mut self, registry: &MetricsRegistry) -> Result<()> {
        for (i, engine) in self.shards.iter_mut().enumerate() {
            engine.set_metrics(StreamMetrics::register_shard(registry, Some(i as u32)))?;
        }
        Ok(())
    }

    /// How far the fleet's worst shard lags its scorer, in tuples — the
    /// **max** over shards, not the sum: lags are not additive (each shard
    /// monitors its own stream), and the operational question this answers
    /// is "how stale can any published reading be right now". 0 after a
    /// [`ShardedAsyncEngine::flush`]. Per-shard values are at
    /// [`ShardedAsyncEngine::shard_monitor_lags`].
    pub fn monitor_lag(&self) -> u64 {
        self.shard_monitor_lags().into_iter().max().unwrap_or(0)
    }

    /// Every shard's scored-vs-monitored lag, indexed by shard id.
    pub fn shard_monitor_lags(&self) -> Vec<u64> {
        self.shards.iter().map(AsyncEngine::monitor_lag).collect()
    }

    /// Every shard's monitor-thread health, indexed by shard id —
    /// replacing the old all-or-nothing view (a shard's death used to be
    /// visible only as an `Async` error from the next call that touched
    /// it). [`ShardHealth::Restarting`](crate::ShardHealth) shards are
    /// still serving, unmonitored, while their supervisor waits out its
    /// backoff; [`ShardHealth::Dead`](crate::ShardHealth) shards have
    /// exhausted their restart budget
    /// and fail their own calls, without stopping the rest of the fleet.
    pub fn shard_health(&self) -> Vec<crate::ShardHealth> {
        self.shards.iter().map(AsyncEngine::health).collect()
    }

    /// Route and score one mixed-shard micro-batch, returning every
    /// decision **in input order** without waiting for any monitoring
    /// work; each shard's `(tuples, decisions)` record lands on that
    /// shard's own queue.
    ///
    /// # Errors
    /// The whole batch is validated before any shard scores, exactly as in
    /// the sync router. A post-validation failure ([`StreamError::Async`]
    /// when a shard's monitor thread is gone) follows the sync router's
    /// contract too: every *other* shard still serves and enqueues its
    /// sub-batch, and the first failing shard's error (in shard order) is
    /// returned — shards are independent, so a dead neighbour must not
    /// stop the rest of the fleet from ingesting.
    pub fn ingest(&mut self, batch: &[ShardedTuple]) -> Result<Vec<u8>> {
        let n = self.shards.len();
        let d = self.shards[0].schema().len();
        let groups = self.shards[0].config().groups;
        for (i, routed) in batch.iter().enumerate() {
            if routed.shard as usize >= n {
                return Err(StreamError::BadShard {
                    shard: routed.shard,
                    shards: n,
                });
            }
            crate::engine::validate_tuple(&routed.tuple, d, i, groups)?;
        }

        // Single-shard fleets: the batch is shard 0's batch in arrival
        // order; clone straight into the queue hand-off with no routing.
        if n == 1 {
            return self.shards[0]
                .ingest_prevalidated_owned(batch.iter().map(|r| r.tuple.clone()).collect());
        }

        // Scatter once on recycled scratch (see [`RouteScratch`]), then
        // clone each shard's sub-batch off its segment in one
        // exactly-sized allocation (the queue hand-off owns its tuples).
        let route = &mut self.route;
        route.route(n, batch.iter().map(|routed| routed.shard), batch.len());

        // Every shard attempts its sub-batch before any error is
        // reported, so one dead shard cannot stop its neighbours from
        // ingesting (mirrors the sync router's per-shard error contract).
        let results: Vec<Result<Vec<u8>>> = self
            .shards
            .iter_mut()
            .enumerate()
            .map(|(shard, engine)| {
                let segment = route.segment(shard);
                if segment.is_empty() {
                    Ok(Vec::new())
                } else {
                    engine.ingest_prevalidated_owned(
                        segment
                            .iter()
                            .map(|&i| batch[i as usize].tuple.clone())
                            .collect(),
                    )
                }
            })
            .collect();
        let mut per_shard_decisions = Vec::with_capacity(n);
        for result in results {
            per_shard_decisions.push(result?);
        }

        let mut decisions = vec![0u8; batch.len()];
        for (shard, shard_decisions) in per_shard_decisions.iter().enumerate() {
            for (&original, &decision) in route.segment(shard).iter().zip(shard_decisions) {
                decisions[original as usize] = decision;
            }
        }
        Ok(decisions)
    }

    /// Route late ground truth to the shards that served it: each shard's
    /// records land on that shard's own queue as a control-plane message
    /// (never dropped, FIFO behind the records that carry their tuples)
    /// and its background monitor joins them. Effects are observable per
    /// shard after a [`ShardedAsyncEngine::flush`].
    ///
    /// # Errors
    /// The whole batch is validated against shard range, label range, and
    /// per-shard scored clocks before anything is enqueued anywhere. A
    /// post-validation [`StreamError::Async`] (a dead shard monitor)
    /// follows the router's contract: every live shard still receives its
    /// records, and the first failing shard's error is returned.
    pub fn feedback(&mut self, feedback: &[ShardedFeedback]) -> Result<()> {
        let n = self.shards.len();
        for routed in feedback {
            let shard = routed.shard as usize;
            if shard >= n {
                return Err(StreamError::BadShard {
                    shard: routed.shard,
                    shards: n,
                });
            }
            if routed.feedback.label >= 2 {
                return Err(StreamError::BadLabel(routed.feedback.label));
            }
            let issued = self.shards[shard].tuples_scored();
            if routed.feedback.id >= issued {
                return Err(StreamError::FutureFeedback {
                    id: routed.feedback.id,
                    issued,
                });
            }
        }
        let mut per_shard: Vec<Vec<LabelFeedback>> = vec![Vec::new(); n];
        for routed in feedback {
            per_shard[routed.shard as usize].push(routed.feedback);
        }
        let mut first_error = None;
        for (engine, records) in self.shards.iter_mut().zip(per_shard) {
            if records.is_empty() {
                continue;
            }
            if let Err(e) = engine.feedback(&records) {
                first_error.get_or_insert(e);
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Barrier over every shard: returns once all queues are drained and
    /// all pending model swaps are installed.
    pub fn flush(&mut self) -> Result<()> {
        for shard in &mut self.shards {
            shard.flush()?;
        }
        Ok(())
    }

    /// The cross-shard merged per-group counters, from each shard's
    /// latest published state (exact after a [`ShardedAsyncEngine::flush`];
    /// otherwise each shard lags by at most its queue backlog).
    pub fn merged_counts(&self) -> Vec<GroupCounts> {
        let mut merged = vec![GroupCounts::default(); self.shards[0].config().groups];
        for engine in &self.shards {
            for (cell, counts) in merged.iter_mut().zip(engine.window_counts()) {
                cell.merge(&counts);
            }
        }
        merged
    }

    /// The cross-shard aggregate fairness reading over the merged
    /// published counters.
    pub fn snapshot(&self) -> FairnessSnapshot {
        FairnessSnapshot::from_counts(&self.merged_counts(), self.shards[0].config().di_floor)
    }

    /// Total tuples scored (served) across all shards.
    pub fn tuples_scored(&self) -> u64 {
        self.shards.iter().map(AsyncEngine::tuples_scored).sum()
    }

    /// Total tuples the shard monitors have fully processed.
    pub fn tuples_monitored(&self) -> u64 {
        self.shards.iter().map(AsyncEngine::tuples_monitored).sum()
    }

    /// Aggregate drop counters across all shard queues.
    pub fn dropped(&self) -> DropCounters {
        let mut total = DropCounters::default();
        for shard in &self.shards {
            let d = shard.dropped();
            total.batches += d.batches;
            total.tuples += d.tuples;
        }
        total
    }

    /// Drain every shard to a quiescent point and snapshot the fleet
    /// coherently (no ingest can interleave: this takes `&mut self`).
    ///
    /// # Errors
    /// Same contract as [`ShardedEngine::checkpoint`], plus
    /// [`StreamError::Async`] when a monitor thread is gone.
    pub fn checkpoint(&mut self) -> Result<ShardedCheckpoint> {
        self.flush()?;
        Ok(ShardedCheckpoint {
            version: crate::checkpoint::CHECKPOINT_VERSION,
            shards: self
                .shards
                .iter_mut()
                .map(AsyncEngine::checkpoint)
                .collect::<Result<Vec<_>>>()?,
        })
    }

    /// Shut every shard's pipeline down and reunite the fleet into a
    /// synchronous [`ShardedEngine`] carrying the exact same state.
    ///
    /// # Errors
    /// [`StreamError::Async`] when any monitor thread is gone or panicked.
    pub fn into_sharded(self) -> Result<ShardedEngine> {
        ShardedEngine::from_engines(
            self.shards
                .into_iter()
                .map(AsyncEngine::into_engine)
                .collect::<Result<Vec<_>>>()?,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{RetrainPolicy, StreamConfig};
    use cf_datasets::stream::{DriftStream, DriftStreamSpec};
    use cf_learners::LearnerKind;

    fn stationary() -> DriftStreamSpec {
        DriftStreamSpec {
            drift_onset: u64::MAX,
            ..DriftStreamSpec::default()
        }
    }

    fn sharded(n: usize) -> ShardedEngine {
        let reference = stationary().reference(1_500, 33);
        let config = StreamConfig {
            retrain: RetrainPolicy::Never,
            ..StreamConfig::default()
        };
        ShardedEngine::from_reference(&reference, LearnerKind::Logistic, 33, config, n).unwrap()
    }

    fn routed_batch(n_shards: u32, k: usize, seed: u64) -> Vec<ShardedTuple> {
        let mut stream = DriftStream::new(stationary(), seed);
        StreamTuple::rows_from_dataset(&stream.next_batch(k))
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(i, tuple)| ShardedTuple {
                shard: (i as u32) % n_shards,
                tuple,
            })
            .collect()
    }

    #[test]
    fn zero_shards_is_rejected() {
        let reference = stationary().reference(500, 1);
        assert!(matches!(
            ShardedEngine::from_reference(
                &reference,
                LearnerKind::Logistic,
                1,
                StreamConfig::default(),
                0
            ),
            Err(StreamError::NoShards)
        ));
        assert!(matches!(
            ShardedEngine::from_engines(Vec::new()),
            Err(StreamError::NoShards)
        ));
    }

    #[test]
    fn bad_shard_id_rejects_the_whole_batch() {
        let mut engine = sharded(2);
        let mut batch = routed_batch(2, 10, 5);
        batch[7].shard = 9;
        assert!(matches!(
            engine.ingest(&batch),
            Err(StreamError::BadShard {
                shard: 9,
                shards: 2
            })
        ));
        // Nothing ingested anywhere, including the validly-addressed prefix.
        assert_eq!(engine.tuples_seen(), 0);
    }

    #[test]
    fn bad_group_rejects_atomically_with_no_shard_state_advanced() {
        // Validation happens once, at the router boundary — so it must
        // still be *whole-batch* atomic: one out-of-range group cell deep
        // in the batch may not leave any shard's window, id clock, or
        // counters advanced. Exercised on both router paths: the
        // multi-shard scatter route and the single-shard fast path.
        for shards in [2u32, 1] {
            let mut engine = sharded(shards as usize);
            let mut batch = routed_batch(shards, 60, 5);
            batch[41].tuple.group = 7; // K = 2 → cells {0, 1} only
            assert!(matches!(
                engine.ingest(&batch),
                Err(StreamError::BadGroup(7))
            ));
            for s in 0..shards {
                let shard = engine.shard(s).unwrap();
                assert_eq!(shard.tuples_seen(), 0, "shard {s} of {shards} advanced");
                assert_eq!(shard.window_len(), 0);
                assert_eq!(shard.ids_issued(), 0);
            }
            // The same batch with the cell fixed ingests fine afterwards.
            batch[41].tuple.group = 1;
            assert_eq!(engine.ingest(&batch).unwrap().decisions.len(), 60);
            assert_eq!(engine.tuples_seen(), 60);
        }
    }

    #[test]
    fn decisions_come_back_in_input_order() {
        let mut engine = sharded(3);
        let batch = routed_batch(3, 200, 6);
        let outcome = engine.ingest(&batch).unwrap();
        assert_eq!(outcome.decisions.len(), 200);

        // Re-derive the expected order from the per-shard outcomes.
        let mut cursors = [0usize; 3];
        for (routed, &decision) in batch.iter().zip(&outcome.decisions) {
            let s = routed.shard as usize;
            assert_eq!(decision, outcome.per_shard[s].decisions[cursors[s]]);
            cursors[s] += 1;
        }
        assert_eq!(engine.tuples_seen(), 200);
    }

    #[test]
    fn merged_snapshot_equals_recomputing_from_summed_counters() {
        let mut engine = sharded(4);
        let batch = routed_batch(4, 400, 7);
        let outcome = engine.ingest(&batch).unwrap();

        let mut summed = [GroupCounts::default(); 2];
        for s in 0..4 {
            let counts = engine.shard(s).unwrap().window_counts();
            summed[0].merge(&counts[0]);
            summed[1].merge(&counts[1]);
        }
        let recomputed =
            FairnessSnapshot::from_counts(&summed, engine.shard(0).unwrap().config().di_floor);
        assert_eq!(outcome.snapshot, recomputed);
        assert_eq!(engine.snapshot(), recomputed);
        assert_eq!(
            outcome.snapshot.window_len,
            (0..4)
                .map(|s| engine.shard(s).unwrap().window_len() as u64)
                .sum::<u64>()
        );
    }

    #[test]
    fn empty_and_partial_batches_are_well_defined() {
        let mut engine = sharded(2);
        let outcome = engine.ingest(&[]).unwrap();
        assert!(outcome.decisions.is_empty());
        assert_eq!(outcome.per_shard.len(), 2);
        assert_eq!(engine.tuples_seen(), 0);

        // A batch addressed entirely to shard 1 leaves shard 0 untouched.
        let batch: Vec<ShardedTuple> = routed_batch(1, 50, 8)
            .into_iter()
            .map(|mut r| {
                r.shard = 1;
                r
            })
            .collect();
        engine.ingest(&batch).unwrap();
        assert_eq!(engine.shard(0).unwrap().tuples_seen(), 0);
        assert_eq!(engine.shard(1).unwrap().tuples_seen(), 50);
    }

    #[test]
    fn from_engines_rejects_mismatched_schemas() {
        let a = StreamEngine::from_reference(
            &stationary().reference(600, 1),
            LearnerKind::Logistic,
            1,
            StreamConfig::default(),
        )
        .unwrap();
        let wide = DriftStreamSpec {
            n_features: 3,
            ..stationary()
        };
        let b = StreamEngine::from_reference(
            &wide.reference(600, 1),
            LearnerKind::Logistic,
            1,
            StreamConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            ShardedEngine::from_engines(vec![a, b]),
            Err(StreamError::Schema(_))
        ));
    }

    #[test]
    fn from_engines_rejects_mismatched_di_floors() {
        let reference = stationary().reference(600, 1);
        let mk = |floor: f64| {
            StreamEngine::from_reference(
                &reference,
                LearnerKind::Logistic,
                1,
                StreamConfig {
                    di_floor: floor,
                    ..StreamConfig::default()
                },
            )
            .unwrap()
        };
        assert!(matches!(
            ShardedEngine::from_engines(vec![mk(0.8), mk(0.9)]),
            Err(StreamError::ConfigMismatch(_))
        ));
    }
}
