//! Incremental fairness monitors over the windowed counters.
//!
//! Each snapshot is assembled in O(1) from [`GroupCounts`] — the counters
//! the window maintains per tuple — never by rescanning tuples. The metrics
//! deliberately mirror `cf-metrics`' definitions (§IV of the paper) —
//! including the `DI* = min(DI, 1/DI)` symmetrisation with its 0/∞ guard —
//! restated over the sliding window and over `Option`, since an unobserved
//! group yields `None`, which `cf_metrics::Confusion`'s slice-based API
//! cannot express: disparate impact by selection-rate ratio with the EEOC
//! four-fifths rule, the demographic-parity gap, and the
//! equal-opportunity (TPR) gap.

use crate::window::GroupCounts;

/// A point-in-time fairness reading over the current window. Group-indexed
/// fields use `[majority, minority]` order; `None` marks an empty
/// denominator (e.g. a single-group stream), never a fabricated 0/0.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessSnapshot {
    /// Tuples in the window when the snapshot was taken.
    pub window_len: u64,
    /// Windowed selection rate per group.
    pub selection_rate: [Option<f64>; 2],
    /// Raw disparate impact `SR_U / SR_W` (∞ when `SR_W = 0` and `SR_U > 0`).
    pub disparate_impact: Option<f64>,
    /// Symmetrised `DI* = min(DI, 1/DI)` — 1.0 is perfectly fair.
    pub di_star: Option<f64>,
    /// `|SR_W − SR_U|`.
    pub demographic_parity_gap: Option<f64>,
    /// `|TPR_W − TPR_U|` (equal opportunity).
    pub equal_opportunity_gap: Option<f64>,
    /// Windowed conformance-violation rate per group.
    pub violation_rate: [Option<f64>; 2],
    /// The DI* floor this stream is held to (EEOC four-fifths: 0.8).
    pub di_floor: f64,
}

impl FairnessSnapshot {
    /// Assemble from windowed counters. O(1).
    pub fn from_counts(counts: &[GroupCounts; 2], di_floor: f64) -> Self {
        let sr = [counts[0].selection_rate(), counts[1].selection_rate()];
        let disparate_impact = match (sr[0], sr[1]) {
            (Some(w), Some(u)) => {
                if w > 0.0 {
                    Some(u / w)
                } else if u > 0.0 {
                    Some(f64::INFINITY)
                } else {
                    // Neither group selected: vacuously balanced.
                    Some(1.0)
                }
            }
            _ => None,
        };
        let di_star = disparate_impact.map(|di| {
            if di <= 0.0 || di.is_infinite() {
                0.0
            } else {
                di.min(1.0 / di)
            }
        });
        let demographic_parity_gap = match (sr[0], sr[1]) {
            (Some(w), Some(u)) => Some((w - u).abs()),
            _ => None,
        };
        let equal_opportunity_gap = match (counts[0].tpr(), counts[1].tpr()) {
            (Some(w), Some(u)) => Some((w - u).abs()),
            _ => None,
        };
        FairnessSnapshot {
            window_len: counts[0].total + counts[1].total,
            selection_rate: sr,
            disparate_impact,
            di_star,
            demographic_parity_gap,
            equal_opportunity_gap,
            violation_rate: [counts[0].violation_rate(), counts[1].violation_rate()],
            di_floor,
        }
    }

    /// The EEOC four-fifths verdict: `Some(true)` when `DI* ≥ floor`,
    /// `None` while either group is unobserved.
    pub fn passes_di_floor(&self) -> Option<bool> {
        self.di_star.map(|d| d >= self.di_floor)
    }

    /// Compact single-line rendering for monitoring output (alias for the
    /// [`Display`] impl, kept for callers that want an owned `String`).
    ///
    /// [`Display`]: std::fmt::Display
    pub fn one_line(&self) -> String {
        self.to_string()
    }
}

/// Human-readable one-liner, e.g.
/// `window=2000   DI*=0.913 dp_gap=0.051 eo_gap=0.042 viol(W)=0.012 viol(U)=0.019`
/// (`--` marks an unobserved group's empty denominator).
impl std::fmt::Display for FairnessSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fmt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.3}"),
            None => "--".to_string(),
        };
        write!(
            f,
            "window={:<6} DI*={} dp_gap={} eo_gap={} viol(W)={} viol(U)={}",
            self.window_len,
            fmt(self.di_star),
            fmt(self.demographic_parity_gap),
            fmt(self.equal_opportunity_gap),
            fmt(self.violation_rate[0]),
            fmt(self.violation_rate[1]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(total: u64, selected: u64, label_pos: u64, tp: u64, viol: u64) -> GroupCounts {
        GroupCounts {
            total,
            selected,
            label_positive: label_pos,
            true_positive: tp,
            false_positive: selected.saturating_sub(tp),
            violations: viol,
        }
    }

    #[test]
    fn balanced_window_is_fair() {
        let s = FairnessSnapshot::from_counts(
            &[counts(100, 50, 60, 40, 5), counts(100, 50, 60, 40, 5)],
            0.8,
        );
        assert_eq!(s.disparate_impact, Some(1.0));
        assert_eq!(s.di_star, Some(1.0));
        assert_eq!(s.demographic_parity_gap, Some(0.0));
        assert_eq!(s.equal_opportunity_gap, Some(0.0));
        assert_eq!(s.passes_di_floor(), Some(true));
        assert_eq!(s.window_len, 200);
    }

    #[test]
    fn skewed_selection_fails_the_four_fifths_rule() {
        // SR_W = 0.6, SR_U = 0.3 → DI = 0.5 < 0.8.
        let s = FairnessSnapshot::from_counts(
            &[counts(100, 60, 50, 40, 0), counts(100, 30, 50, 20, 0)],
            0.8,
        );
        assert!((s.disparate_impact.unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(s.passes_di_floor(), Some(false));
        assert!((s.demographic_parity_gap.unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn di_star_symmetrises_reverse_bias() {
        // Minority over-selected: DI = 2.0 → DI* = 0.5.
        let s = FairnessSnapshot::from_counts(
            &[counts(100, 30, 50, 20, 0), counts(100, 60, 50, 40, 0)],
            0.8,
        );
        assert!((s.disparate_impact.unwrap() - 2.0).abs() < 1e-12);
        assert!((s.di_star.unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_group_stream_yields_none_not_nan() {
        let s = FairnessSnapshot::from_counts(
            &[counts(100, 60, 50, 40, 3), GroupCounts::default()],
            0.8,
        );
        assert_eq!(s.disparate_impact, None);
        assert_eq!(s.di_star, None);
        assert_eq!(s.passes_di_floor(), None);
        assert_eq!(s.violation_rate[1], None);
        assert_eq!(s.selection_rate[0], Some(0.6));
        assert!(s.one_line().contains("--"));
    }

    #[test]
    fn zero_majority_selection_is_infinite_di() {
        let s = FairnessSnapshot::from_counts(
            &[counts(50, 0, 25, 0, 0), counts(50, 10, 25, 5, 0)],
            0.8,
        );
        assert_eq!(s.disparate_impact, Some(f64::INFINITY));
        assert_eq!(s.di_star, Some(0.0));
        // Nobody selected at all: vacuously balanced, not unfair.
        let quiet =
            FairnessSnapshot::from_counts(&[counts(50, 0, 25, 0, 0), counts(50, 0, 25, 0, 0)], 0.8);
        assert_eq!(quiet.disparate_impact, Some(1.0));
    }
}
