//! The monitoring half of the engine split, plus the incremental fairness
//! monitors over the windowed counters.
//!
//! [`Monitor`] owns everything drift-related a stream engine carries: the
//! two-plane sliding window, the per-(group, label) conformance profiles,
//! the per-cell Page–Hinkley detectors, the alert log, and the retrain
//! policy. It
//! is the lag-tolerant counterpart of [`Scorer`](crate::Scorer): the
//! serving path never waits on it, and in the async engine it lives on its
//! own thread behind a bounded queue. A retrain produces a replacement
//! predictor that the monitor *returns* rather than installs — model
//! publication is the caller's (or the async engine's swap slot's) job,
//! which is what keeps this half free of any reference to the serving
//! path.
//!
//! Ground truth may trail serving arbitrarily, so the monitor's state
//! splits across the window's two planes: [`Monitor::observe`] advances
//! only the **decision plane** — selection rates, the conformance check
//! against the tuple's (group, *decision*) reference cell, and the
//! Page–Hinkley step on that decision-conformance series — while
//! [`Monitor::feedback`] joins late labels by tuple id into the **label
//! plane** (TPR/FPR, the equal-opportunity gap). Drift is therefore
//! detectable before a single label arrives, and the label-dependent
//! metrics stay `None` (never a fabricated 0) until feedback joins.
//!
//! Each [`FairnessSnapshot`] is assembled in O(1) from [`GroupCounts`] —
//! the counters the window maintains per event — never by rescanning
//! tuples. The metrics deliberately mirror `cf-metrics`' definitions (§IV
//! of the paper) — including the `DI* = min(DI, 1/DI)` symmetrisation with
//! its 0/∞ guard — restated over the sliding window and over `Option`,
//! since an unobserved group yields `None`, which
//! `cf_metrics::Confusion`'s slice-based API cannot express: disparate
//! impact by selection-rate ratio with the EEOC four-fifths rule, the
//! demographic-parity gap, and the equal-opportunity (TPR) gap.

use crate::drift::{DriftAlert, DriftKind, PageHinkley};
use crate::engine::{LabelFeedback, RetrainPolicy, StreamConfig, StreamTuple};
use crate::repair::{RepairLadder, RepairTier, RepairUpdate};
use crate::telemetry::StreamMetrics;
use crate::window::{GroupCounts, JoinStats, LabelJoin, SlidingWindow, SlotMeta};
use crate::{Result, StreamError};
use cf_conformance::{learn_constraints, ConstraintSet};
use cf_data::{
    split::{split3_stratified, SplitRatios},
    CellIndex, Column, Dataset,
};
use cf_learners::LearnerKind;
use cf_telemetry::{
    FeedbackJoinEvent, IngestBatchEvent, ModelSwapEvent, RepairEndEvent, RepairStartEvent,
    SharedSink, SnapshotData, TelemetryEvent, ThresholdChangeEvent,
};
use confair_core::{confair::ConFair, Intervention, Predictor};
use std::borrow::Borrow;

/// A point-in-time fairness reading over the current window. Cell-indexed
/// fields are `K`-length, one entry per group cell (the classic binary
/// layout is `[majority W, minority U]`); `None` marks an empty
/// denominator (e.g. an unobserved cell), never a fabricated 0/0.
///
/// With more than two cells the scalar readings are **worst-pair**
/// statistics: `disparate_impact`/`di_star` come from the ordered cell
/// pair with the smallest `DI*`, and the gaps are the spread (max − min)
/// over all defined cells — so the EEOC floor is held against the most
/// disparate pair, exactly the reading pairwise binary monitoring of a
/// collapsed group column cannot produce.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessSnapshot {
    /// Tuples in the window when the snapshot was taken.
    pub window_len: u64,
    /// Windowed selection rate per group cell.
    pub selection_rate: Vec<Option<f64>>,
    /// Raw disparate impact of the worst pair `(i, j)`: `SR_j / SR_i`
    /// (∞ when `SR_i = 0` and `SR_j > 0`). At K=2 this is the classic
    /// `SR_U / SR_W`.
    pub disparate_impact: Option<f64>,
    /// Symmetrised `DI* = min(DI, 1/DI)` of the worst pair — 1.0 is
    /// perfectly fair.
    pub di_star: Option<f64>,
    /// Selection-rate spread `max − min` over defined cells (at K=2:
    /// `|SR_W − SR_U|`).
    pub demographic_parity_gap: Option<f64>,
    /// TPR spread over defined cells (equal opportunity; at K=2:
    /// `|TPR_W − TPR_U|`), over joined labels only — `None` while fewer
    /// than two cells' label planes hold positives, never a fabricated 0
    /// from decisions that have no ground truth yet.
    pub equal_opportunity_gap: Option<f64>,
    /// Windowed conformance-violation rate per cell (decision plane).
    pub violation_rate: Vec<Option<f64>>,
    /// Joined `(decision, label)` pairs per cell currently in the label
    /// plane — how much ground truth the label-dependent readings rest on.
    pub labeled: Vec<u64>,
    /// The DI* floor this stream is held to (EEOC four-fifths: 0.8).
    pub di_floor: f64,
    /// Whether the engine is serving in degraded mode: an on-alert repair
    /// episode exhausted its retry/timeout budget
    /// ([`RepairConfig`](crate::RepairConfig)), so the stale model keeps
    /// serving until a later retrain succeeds. Live-engine state, not
    /// window arithmetic: counter-derived snapshots (including replayed
    /// ones) report `false`.
    pub degraded: bool,
}

impl FairnessSnapshot {
    /// Assemble from windowed counters. O(1).
    ///
    /// The arithmetic itself lives in
    /// [`SnapshotData::from_counters`] — the telemetry plane's
    /// replay recomputes snapshots through the *same* function, which is
    /// what makes an audit trail's replayed sequence byte-identical to
    /// the live one by construction.
    pub fn from_counts(counts: &[GroupCounts], di_floor: f64) -> Self {
        Self::from_data(SnapshotData::from_counters(
            &crate::telemetry::both_counters(counts),
            di_floor,
        ))
    }

    /// The EEOC four-fifths verdict: `Some(true)` when `DI* ≥ floor`,
    /// `None` while either group is unobserved.
    pub fn passes_di_floor(&self) -> Option<bool> {
        self.di_star.map(|d| d >= self.di_floor)
    }

    /// Compact single-line rendering for monitoring output (alias for the
    /// [`Display`] impl, kept for callers that want an owned `String`).
    ///
    /// [`Display`]: std::fmt::Display
    pub fn one_line(&self) -> String {
        self.to_string()
    }
}

/// Human-readable one-liner, e.g.
/// `window=2000   labels=1820 DI*=0.913 dp_gap=0.051 eo_gap=0.042 viol(W)=0.012 viol(U)=0.019`
/// (`--` marks an unobserved cell's — or an unlabeled plane's — empty
/// denominator). The `viol(W)/viol(U)` wording is kept verbatim for the
/// binary layout; with any other K each cell renders as `viol(g)`.
impl std::fmt::Display for FairnessSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fmt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.3}"),
            None => "--".to_string(),
        };
        write!(
            f,
            "window={:<6} labels={:<6} DI*={} dp_gap={} eo_gap={}",
            self.window_len,
            self.labeled.iter().sum::<u64>(),
            fmt(self.di_star),
            fmt(self.demographic_parity_gap),
            fmt(self.equal_opportunity_gap),
        )?;
        if self.violation_rate.len() == 2 {
            write!(
                f,
                " viol(W)={} viol(U)={}",
                fmt(self.violation_rate[0]),
                fmt(self.violation_rate[1]),
            )?;
        } else {
            for (g, &rate) in self.violation_rate.iter().enumerate() {
                write!(f, " viol({g})={}", fmt(rate))?;
            }
        }
        if self.degraded {
            write!(f, " DEGRADED")?;
        }
        Ok(())
    }
}

/// Conformance profiles per (group, label) cell of the reference data:
/// `profiles[g][y]` for group cell `g` in `0..K` and binary label `y`.
pub(crate) type CellProfiles = Vec<[Option<ConstraintSet>; 2]>;

/// What one ladder batch produced:
/// `(retrained, retrain_error, model, repair_update)`.
type LadderOutcome = (
    bool,
    Option<StreamError>,
    Option<Box<dyn Predictor>>,
    Option<RepairUpdate>,
);

/// What one [`Monitor::observe`] call produced.
///
/// Not `Clone`/`Debug`: a successful on-alert retrain hands back the
/// freshly trained predictor in [`ObserveOutcome::model`], and trained
/// predictors are neither. The engines peel the model off for installation
/// and forward the rest as an [`IngestOutcome`](crate::IngestOutcome).
pub struct ObserveOutcome {
    /// The stream id assigned to the batch's first tuple (ids are
    /// consecutive within a batch) — the join keys later
    /// [`LabelFeedback`] records address.
    pub first_id: u64,
    /// Alerts raised by this batch (also appended to the monitor's log).
    pub alerts: Vec<DriftAlert>,
    /// The windowed fairness reading after the batch.
    pub snapshot: FairnessSnapshot,
    /// Whether the retraining hook ran successfully.
    pub retrained: bool,
    /// Why an attempted on-alert retrain failed, if it did.
    pub retrain_error: Option<StreamError>,
    /// The replacement predictor a successful retrain produced. The caller
    /// owns publication: the sync engine installs it into its scorer
    /// before returning, the async engine's monitor thread publishes it
    /// through the atomically-swapped model slot.
    pub model: Option<Box<dyn Predictor>>,
    /// A repair-state publication the ladder produced this batch
    /// (thresholds nudged, projection toggled, or artifacts reset by a
    /// successful retrain). Like `model`, the caller owns delivery: the
    /// sync engine applies it to its scorer before returning, the async
    /// engine's monitor thread publishes it through a swap slot. `None`
    /// whenever the ladder is off or took no action.
    pub repair: Option<RepairUpdate>,
}

/// What one [`Monitor::feedback`] call produced: how each record resolved,
/// plus the refreshed fairness reading (its label-plane metrics are the
/// fields feedback can move).
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackOutcome {
    /// Records whose label joined the label plane (in-window or late).
    pub joined: u64,
    /// Subset of `joined` that arrived after the tuple left the decision
    /// ring and was served from the pending-join index.
    pub joined_late: u64,
    /// Records for tuples that already had a label, ignored.
    pub duplicates: u64,
    /// Records whose tuple could not be found (pending entry evicted,
    /// record dropped before monitoring, …), counted and skipped.
    pub unmatched: u64,
    /// The windowed fairness reading after the joins.
    pub snapshot: FairnessSnapshot,
}

/// The monitoring half of a stream engine: sliding window, conformance
/// profiles, per-group Page–Hinkley detectors, alert log, and the retrain
/// policy — everything that tolerates lag.
///
/// A `Monitor` never scores: it *observes* already-served `(tuple,
/// decision)` pairs via [`Monitor::observe`], folding them into the O(1)
/// windowed counters and the detectors, and — under
/// [`RetrainPolicy::OnAlert`] — re-running ConFair on the window when a
/// detector fires. All state is plain owned data, so a monitor is `Send`
/// (it can move to a background thread; the async engine does exactly
/// that) and `Clone` (a coherent copy can be taken for checkpointing while
/// the original keeps running).
#[derive(Clone)]
pub struct Monitor {
    pub(crate) schema: Vec<String>,
    pub(crate) learner: LearnerKind,
    pub(crate) config: StreamConfig,
    pub(crate) profiles: CellProfiles,
    pub(crate) window: SlidingWindow,
    pub(crate) detectors: Vec<PageHinkley>,
    pub(crate) alerts: Vec<DriftAlert>,
    pub(crate) seen: u64,
    /// The next tuple id this monitor expects to assign. Equals `seen` in
    /// the synchronous engine; in the async engine it tracks the *scorer's*
    /// clock (records carry their ids), so it can run ahead of `seen` when
    /// records are dropped under backpressure.
    pub(crate) ids_issued: u64,
    pub(crate) retrains: u64,
    pub(crate) floor_quiet_until: u64,
    /// The repair-escalation ladder state (idle unless
    /// `config.repair.ladder` is on; see [`crate::repair`]).
    pub(crate) ladder: RepairLadder,
    /// Telemetry sink, if one is installed ([`Monitor::set_sink`]). `None`
    /// skips emission entirely — the default, and the reason the null
    /// path costs nothing. Shared (`Arc`) so a checkpoint clone feeds the
    /// same trail instead of forking it.
    pub(crate) sink: Option<SharedSink>,
    /// Metrics handles, if installed. Atomic clones shared with the
    /// engine's serving half.
    pub(crate) metrics: Option<StreamMetrics>,
    /// Whether the engine is serving in degraded mode (a repair episode
    /// exhausted its budget; cleared by the next successful retrain).
    pub(crate) degraded: bool,
    /// Events skipped because the sink lock was poisoned (interior
    /// mutability: `emit` runs on `&self` paths like checkpointing).
    pub(crate) telemetry_disabled: std::cell::Cell<u64>,
    /// The most recent telemetry failure, for operators
    /// ([`Monitor::telemetry_last_error`]).
    pub(crate) telemetry_error: std::cell::RefCell<Option<String>>,
    /// Installed fault schedule (test seam; `None` costs one branch).
    #[cfg(feature = "fault-injection")]
    pub(crate) faults: Option<crate::faults::FaultPlan>,
}

impl Monitor {
    /// Bootstrap the monitoring half from a labeled, fully numeric
    /// reference dataset: size the window and derive per-cell conformance
    /// profiles. (The serving half — training the predictor — is the
    /// engine constructors' job.)
    pub fn from_reference(
        reference: &Dataset,
        learner: LearnerKind,
        config: StreamConfig,
    ) -> Result<Self> {
        if reference.is_empty() {
            return Err(StreamError::EmptyReference);
        }
        crate::engine::ensure_all_numeric(reference)?;
        let window = SlidingWindow::new(
            config.window,
            reference.num_attributes(),
            config.pending_labels,
            config.groups,
        )?;
        let profiles = learn_profiles(reference, &config);
        let detectors = vec![PageHinkley::new(config.detector); config.groups];
        let ladder = RepairLadder::idle(config.groups);
        Ok(Monitor {
            schema: reference.column_names().to_vec(),
            learner,
            config,
            profiles,
            window,
            detectors,
            alerts: Vec::new(),
            seen: 0,
            ids_issued: 0,
            retrains: 0,
            floor_quiet_until: 0,
            ladder,
            sink: None,
            metrics: None,
            degraded: false,
            telemetry_disabled: std::cell::Cell::new(0),
            telemetry_error: std::cell::RefCell::new(None),
            #[cfg(feature = "fault-injection")]
            faults: None,
        })
    }

    /// Install a deterministic fault schedule (test seam). The plan's
    /// counters are `Arc`-shared across clones, so a recovery clone
    /// resumes the schedule where the dead incarnation left it.
    #[cfg(feature = "fault-injection")]
    pub fn inject_faults(&mut self, plan: crate::faults::FaultPlan) {
        self.faults = Some(plan);
    }

    /// The monitor-thread failpoint: counts one observed batch against
    /// the installed fault schedule and dies if one is due. Called by the
    /// async monitor loop before each batch is folded in.
    #[cfg(feature = "fault-injection")]
    pub(crate) fn observe_failpoint(&self) {
        if let Some(panics) = self.faults.as_ref().and_then(|p| p.monitor.as_ref()) {
            if panics.on_batch() {
                crate::faults::injected_panic();
            }
        }
    }

    /// Install a telemetry sink: every subsequent observable state change
    /// (ingest batch, alert, repair, feedback join, …) is emitted as a
    /// [`TelemetryEvent`]. Replaces any previous sink.
    pub fn set_sink(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }

    /// Remove the telemetry sink (emission stops immediately).
    pub fn clear_sink(&mut self) {
        self.sink = None;
    }

    /// Install metrics handles (the monitor half keeps the alert, retrain,
    /// join, and pending-label instruments fresh).
    pub fn set_metrics(&mut self, metrics: StreamMetrics) {
        self.metrics = Some(metrics);
    }

    /// Emit one event to the installed sink, if any. A poisoned sink lock
    /// (a panicked subscriber) disables telemetry rather than poisoning
    /// the stream — but *not silently*: each skipped event is counted
    /// (`cf_stream_telemetry_disabled_total`, plus
    /// [`Monitor::telemetry_disabled_count`]) and the condition surfaces
    /// through [`Monitor::telemetry_last_error`], so operators can see
    /// the trail died rather than discovering a truncated audit log at
    /// review time.
    pub(crate) fn emit(&self, event: TelemetryEvent) {
        if let Some(sink) = &self.sink {
            match sink.lock() {
                Ok(mut sink) => sink.emit(&event),
                Err(_) => {
                    self.telemetry_disabled
                        .set(self.telemetry_disabled.get() + 1);
                    *self.telemetry_error.borrow_mut() = Some(
                        "telemetry sink lock poisoned by a panicked subscriber; \
                         events are being dropped"
                            .to_string(),
                    );
                    if let Some(m) = &self.metrics {
                        m.telemetry_disabled_total.inc();
                    }
                }
            }
        }
    }

    /// Events dropped because the sink lock was poisoned.
    pub fn telemetry_disabled_count(&self) -> u64 {
        self.telemetry_disabled.get()
    }

    /// The most recent telemetry failure, if any (currently: a poisoned
    /// sink lock). `None` means the trail is healthy.
    pub fn telemetry_last_error(&self) -> Option<String> {
        self.telemetry_error.borrow().clone()
    }

    /// Whether the engine is serving in degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Flip into degraded mode (emits the transition once; repeat
    /// failures while already degraded are visible as repair-end events).
    fn enter_degraded(&mut self, attempts: u64, error: Option<&StreamError>) {
        if self.degraded {
            return;
        }
        self.degraded = true;
        self.emit(TelemetryEvent::DegradedMode(
            cf_telemetry::DegradedModeEvent {
                at_tuple: self.seen,
                entered: true,
                attempts,
                error: error.map(|e| e.to_string()),
                retrains: self.retrains,
            },
        ));
        if let Some(m) = &self.metrics {
            m.degraded.set(1.0);
        }
    }

    /// Leave degraded mode after a successful retrain (emits the
    /// transition once).
    pub(crate) fn clear_degraded(&mut self) {
        if !self.degraded {
            return;
        }
        self.degraded = false;
        self.emit(TelemetryEvent::DegradedMode(
            cf_telemetry::DegradedModeEvent {
                at_tuple: self.seen,
                entered: false,
                attempts: 0,
                error: None,
                retrains: self.retrains,
            },
        ));
        if let Some(m) = &self.metrics {
            m.degraded.set(0.0);
        }
    }

    /// Emit the model-swap event (called by whichever side publishes the
    /// replacement predictor: the sync engine inline, the async engine's
    /// monitor thread at the swap slot).
    pub(crate) fn emit_model_swap(&self) {
        self.emit(TelemetryEvent::ModelSwap(ModelSwapEvent {
            at_tuple: self.seen,
            retrains: self.retrains,
        }));
    }

    /// Refresh the monitor-side gauges after a state change.
    fn refresh_metrics(&self) {
        if let Some(m) = &self.metrics {
            m.alerts_total.set_u64(self.alerts.len() as u64);
            m.retrains_total.set_u64(self.retrains);
            m.pending_labels.set_u64(self.window.pending_len() as u64);
            m.window_fill.set_u64(self.window.len() as u64);
            let joins = self.window.join_stats();
            m.labels_joined.set_u64(joins.joined);
            m.labels_unmatched.set_u64(joins.unmatched);
            m.degraded.set(if self.degraded { 1.0 } else { 0.0 });
            m.repair_tier
                .set(f64::from(self.ladder.active.map_or(0, RepairTier::index)));
        }
    }

    /// Fold one served micro-batch into the monitoring state: per tuple a
    /// decision-conformance evaluation, an O(1) window/counter update, and
    /// one Page–Hinkley step; per batch one DI*-floor check and — under
    /// [`RetrainPolicy::OnAlert`] — at most one retrain, whose replacement
    /// predictor is handed back in [`ObserveOutcome::model`]. Everything
    /// here lives on the decision plane: a tuple's (optional) label only
    /// joins the label plane — at push time when present, or later through
    /// [`Monitor::feedback`].
    ///
    /// Tuple ids are assigned consecutively from the monitor's clock
    /// (starting at [`ObserveOutcome::first_id`]); use
    /// [`Monitor::observe_with_ids`] when the caller owns the id space.
    ///
    /// Callers guarantee the batch was validated against the schema and
    /// that `decisions` are the served decisions for exactly these tuples,
    /// in order.
    pub fn observe<T: Borrow<StreamTuple>>(
        &mut self,
        batch: &[T],
        decisions: &[u8],
    ) -> Result<ObserveOutcome> {
        self.observe_with_ids(batch, decisions, self.ids_issued)
    }

    /// [`Monitor::observe`] with caller-assigned tuple ids
    /// (`first_id..first_id + batch.len()`): the async engine's path,
    /// where the scorer issues ids and a record dropped under backpressure
    /// must leave a gap rather than shift every later join key.
    ///
    /// # Errors
    /// `first_id` may not fall behind ids already observed (joins are
    /// keyed by id, so a reused id would corrupt the label plane).
    pub fn observe_with_ids<T: Borrow<StreamTuple>>(
        &mut self,
        batch: &[T],
        decisions: &[u8],
        first_id: u64,
    ) -> Result<ObserveOutcome> {
        if first_id < self.ids_issued {
            return Err(StreamError::Schema(format!(
                "batch starts at id {first_id} but ids up to {} were already observed",
                self.ids_issued
            )));
        }
        if batch.is_empty() {
            return Ok(ObserveOutcome {
                first_id,
                alerts: Vec::new(),
                snapshot: self.snapshot(),
                retrained: false,
                retrain_error: None,
                model: None,
                repair: None,
            });
        }
        if decisions.len() != batch.len() {
            return Err(StreamError::Schema(format!(
                "{} decisions for a batch of {} tuples",
                decisions.len(),
                batch.len()
            )));
        }
        // Counter deltas are only needed for the audit trail; without a
        // sink the copy (and everything else telemetry adds) is skipped.
        let counts_before = self
            .sink
            .as_ref()
            .map(|_| crate::telemetry::both_counters(self.window.counts()));

        let mut new_alerts = Vec::new();
        for (offset, (t, &decision)) in batch.iter().zip(decisions).enumerate() {
            let tuple = t.borrow();
            let violated = self.violation_of(&tuple.features, tuple.group, decision)
                > self.config.conformance_eps;
            self.window.push(
                SlotMeta {
                    id: first_id + offset as u64,
                    group: tuple.group,
                    label: tuple.label,
                    decision,
                    violated,
                },
                &tuple.features,
            )?;
            self.seen += 1;
            if let Some(statistic) =
                self.detectors[tuple.group as usize].observe(f64::from(violated))
            {
                new_alerts.push(DriftAlert {
                    kind: DriftKind::ConformanceViolation,
                    group: tuple.group,
                    at_tuple: self.seen,
                    statistic,
                    threshold: self.config.detector.lambda,
                });
            }
        }
        self.ids_issued = first_id + batch.len() as u64;

        // One snapshot serves the floor check, the outcome, and the
        // post-retrain state alike: it reads only the windowed counters,
        // which the retraining hook never touches.
        let snapshot = self.snapshot();
        if snapshot.passes_di_floor() == Some(false)
            && self.window.len() >= self.config.floor_min_window
            && self.seen >= self.floor_quiet_until
        {
            // The cell on the losing side of the worst pair (at K=2 this
            // reproduces the classic rule: group U when `SR_U <= SR_W`,
            // else group W). The floor only fails when a worst pair
            // exists, so the fallback is unreachable in practice.
            let disadvantaged = SnapshotData::disadvantaged_cell(&crate::telemetry::both_counters(
                self.window.counts(),
            ))
            .unwrap_or(0) as u8;
            new_alerts.push(DriftAlert {
                kind: DriftKind::DisparateImpactFloor,
                group: disadvantaged,
                at_tuple: self.seen,
                statistic: snapshot.di_star.unwrap_or(0.0),
                threshold: self.config.di_floor,
            });
            self.floor_quiet_until = self.seen + self.config.floor_cooldown;
        }

        // Log the alerts before attempting any retrain, so a retrain
        // failure never loses the events that triggered it. The audit
        // trail mirrors that order: batch, then its alerts (each with a
        // moved-cell explanation), then any repair events.
        self.alerts.extend_from_slice(&new_alerts);
        if let Some(before) = counts_before {
            let after = crate::telemetry::both_counters(self.window.counts());
            self.emit(TelemetryEvent::IngestBatch(IngestBatchEvent {
                first_id,
                batch: batch.len() as u64,
                at_tuple: self.seen,
                di_floor: self.config.di_floor,
                delta: after
                    .iter()
                    .zip(&before)
                    .map(|(a, b)| a.delta_from(b))
                    .collect(),
                snapshot: snapshot.to_data(),
            }));
            for alert in &new_alerts {
                self.emit(crate::telemetry::alert_event(alert, &snapshot));
            }
        }
        let mut retrained = false;
        let mut retrain_error = None;
        let mut model = None;
        let mut repair_update = None;
        if self.config.repair.ladder {
            // The escalation ladder owns repair end to end: the legacy
            // retrain-on-alert path is disabled so a DI-floor alert can
            // never trigger a tier-3 retrain before the cheap tiers had
            // their chance.
            let (r, e, m, u) = self.ladder_step(&snapshot);
            retrained = r;
            retrain_error = e;
            model = m;
            repair_update = u;
        } else if !new_alerts.is_empty() {
            if let RetrainPolicy::OnAlert { min_window } = self.config.retrain {
                if self.window.len() >= min_window {
                    let (r, e, m) = self.run_retrain_episode();
                    retrained = r;
                    retrain_error = e;
                    model = m;
                }
            }
        }
        self.refresh_metrics();

        Ok(ObserveOutcome {
            first_id,
            alerts: new_alerts,
            snapshot,
            retrained,
            retrain_error,
            model,
            repair: repair_update,
        })
    }

    /// One repair *episode*: a bounded retry loop around the retraining
    /// hook, bracketed by `repair_start`/`repair_end` trail events. Each
    /// attempt may fail (or panic — contained and converted to
    /// `RetrainPanicked`); between attempts we back off with seeded
    /// jitter, and the whole episode is bounded by both an attempt budget
    /// and a wall-clock timeout. Exhausting the budget flips the engine
    /// into degraded mode: the stale model keeps serving, loudly.
    ///
    /// Shared verbatim by the legacy retrain-on-alert path and the
    /// ladder's tier 3, so both produce the same trail bytes and the same
    /// degraded-mode semantics.
    fn run_retrain_episode(&mut self) -> (bool, Option<StreamError>, Option<Box<dyn Predictor>>) {
        let mut retrained = false;
        let mut retrain_error = None;
        let mut model = None;
        self.emit(TelemetryEvent::RepairStart(RepairStartEvent {
            at_tuple: self.seen,
            tier: "confair_retrain".into(),
            window_len: self.window.len() as u64,
            labeled: self.window.labeled_len() as u64,
        }));
        let started = std::time::Instant::now();
        let repair = self.config.repair;
        let mut backoff = repair.backoff(self.retrains);
        let mut attempts: u64 = 0;
        loop {
            attempts += 1;
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.retrain()));
            let error = match outcome {
                Ok(Ok(predictor)) => {
                    retrained = true;
                    model = Some(predictor);
                    break;
                }
                Ok(Err(e)) => e,
                Err(payload) => StreamError::RetrainPanicked(panic_text(payload.as_ref())),
            };
            if let Some(m) = &self.metrics {
                m.retrain_failures_total.inc();
            }
            let out_of_budget =
                attempts >= u64::from(repair.attempts()) || started.elapsed() >= repair.timeout();
            if out_of_budget {
                retrain_error = Some(error);
                break;
            }
            let remaining = repair.timeout().saturating_sub(started.elapsed());
            let delay = backoff.next_delay().min(remaining);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
        let duration_us = started.elapsed().as_micros() as u64;
        if let Some(m) = &self.metrics {
            m.retrain_duration_us.observe(duration_us as f64);
        }
        self.emit(TelemetryEvent::RepairEnd(RepairEndEvent {
            at_tuple: self.seen,
            tier: "confair_retrain".into(),
            outcome: if retrained { "retrained" } else { "failed" }.into(),
            error: retrain_error.as_ref().map(|e| e.to_string()),
            duration_us,
            retrains: self.retrains,
        }));
        if retrained {
            self.clear_degraded();
        } else {
            self.enter_degraded(attempts, retrain_error.as_ref());
        }
        (retrained, retrain_error, model)
    }

    /// One batch of the repair-escalation ladder (see [`crate::repair`]):
    /// driven purely by the windowed DI* reading against the floor, with
    /// the same `floor_min_window` evidence bar as the alert — but
    /// independent of `floor_cooldown`, which only rate-limits alert
    /// *emission*; the ladder keeps acting every unhealthy batch.
    ///
    /// Tier 3 additionally honours the retrain policy: it is entered only
    /// under [`RetrainPolicy::OnAlert`] with its `min_window` satisfied —
    /// otherwise the ladder holds at tier 2 (the cheap, label-free rungs
    /// are exactly what a never-retrain deployment still gets).
    ///
    /// Returns `(retrained, retrain_error, model, repair_update)`.
    fn ladder_step(&mut self, snapshot: &FairnessSnapshot) -> LadderOutcome {
        let repair = self.config.repair;
        let verdict = snapshot.passes_di_floor();
        let unhealthy = verdict == Some(false) && self.window.len() >= self.config.floor_min_window;

        if self.ladder.active.is_none() {
            if !unhealthy {
                return (false, None, None, None);
            }
            // Open an episode on the cheapest rung.
            self.ladder.batches_in_tier = 0;
            self.ladder.recovery_streak = 0;
            self.ladder.work_us = 0;
            self.ladder.active = Some(RepairTier::ThresholdNudge);
            self.emit_repair_start(RepairTier::ThresholdNudge);
        }
        let tier = self.ladder.active.expect("episode opened above");

        if verdict == Some(true) {
            self.ladder.recovery_streak += 1;
            if self.ladder.recovery_streak >= repair.hold() {
                // De-escalate all the way: the episode closes, and the
                // installed repairs stay — they are what restored the
                // floor. Only a successful retrain resets them.
                self.emit_repair_end(tier, "recovered", None);
                self.ladder.active = None;
                self.ladder.batches_in_tier = 0;
                self.ladder.recovery_streak = 0;
            }
            return (false, None, None, None);
        }
        if !unhealthy {
            // An unobserved reading (or a still-thin window) is evidence
            // of nothing: it neither burns patience nor counts as
            // recovery.
            return (false, None, None, None);
        }
        self.ladder.recovery_streak = 0;
        self.ladder.batches_in_tier += 1;

        let mut update = None;
        match tier {
            RepairTier::ThresholdNudge => {
                if self.nudge_disadvantaged_cell() {
                    update = Some(self.repair_update());
                }
            }
            RepairTier::DiffFairProjection => {
                // Normally installed at escalation; this re-install only
                // fires for state restored from a checkpoint taken
                // mid-tier-2.
                if !self.ladder.projection {
                    self.ladder.projection = true;
                    update = Some(self.repair_update());
                }
            }
            // `active` never rests on tier 3 (entry runs the retrain and
            // immediately resolves to idle or tier 2), so there is no
            // per-batch action for it.
            RepairTier::ConFairRetrain => {}
        }

        if self.ladder.batches_in_tier < repair.patience() {
            return (false, None, None, update);
        }
        let Some(next) = tier.next() else {
            return (false, None, None, update);
        };
        if next == RepairTier::ConFairRetrain {
            let RetrainPolicy::OnAlert { min_window } = self.config.retrain else {
                // No retrain policy: the ladder tops out at tier 2.
                return (false, None, None, update);
            };
            if self.window.len() < min_window {
                return (false, None, None, update);
            }
            self.emit_repair_end(tier, "escalated", None);
            self.ladder.active = Some(RepairTier::ConFairRetrain);
            self.ladder.batches_in_tier = 0;
            // Tier 3 acts on entry: one bounded retrain episode (which
            // brackets itself with `confair_retrain` start/end events and
            // owns the degraded-mode transitions).
            let (retrained, retrain_error, model) = self.run_retrain_episode();
            if retrained {
                // Repaired at the root: the stream was re-profiled, so
                // the serve-time corrections no longer apply. Reset them
                // and close the episode.
                self.ladder.reset_artifacts();
                self.ladder.active = None;
                self.ladder.batches_in_tier = 0;
                self.ladder.recovery_streak = 0;
                update = Some(self.repair_update());
            } else {
                // Budget exhausted (the episode flagged degraded mode):
                // fall back to tier 2 so the cheap rungs keep serving
                // repairs while the retrain path is down. Another
                // `tier_patience` unhealthy batches re-enter tier 3.
                if !self.ladder.projection {
                    self.ladder.projection = true;
                    update = Some(self.repair_update());
                }
                self.ladder.active = Some(RepairTier::DiffFairProjection);
                self.ladder.batches_in_tier = 0;
                self.emit_repair_start(RepairTier::DiffFairProjection);
            }
            return (retrained, retrain_error, model, update);
        }
        // Escalate to tier 2 and act immediately: install the projection.
        self.emit_repair_end(tier, "escalated", None);
        self.ladder.active = Some(next);
        self.ladder.batches_in_tier = 0;
        self.emit_repair_start(next);
        if !self.ladder.projection {
            let t0 = std::time::Instant::now();
            self.ladder.projection = true;
            update = Some(self.repair_update());
            self.ladder.work_us += (t0.elapsed().as_micros() as u64).max(1);
        }
        (false, None, None, update)
    }

    /// Tier 1's action: lower the disadvantaged cell's margin cutoff by
    /// `nudge_step`, clamped at `-nudge_max`. Returns whether a threshold
    /// actually moved (at the clamp, nudging is exhausted and the batch
    /// only burns patience). Emits the `threshold_change` trail event and
    /// counts repair work into the episode's `work_us`.
    fn nudge_disadvantaged_cell(&mut self) -> bool {
        let t0 = std::time::Instant::now();
        let Some(cell) = SnapshotData::disadvantaged_cell(&crate::telemetry::both_counters(
            self.window.counts(),
        )) else {
            return false;
        };
        let Some(slot) = self.ladder.thresholds.get_mut(cell) else {
            return false;
        };
        let step = self.config.repair.nudge_step.abs();
        let floor = -self.config.repair.nudge_max.abs();
        let nudged = (*slot - step).max(floor);
        if nudged == *slot {
            return false;
        }
        *slot = nudged;
        self.ladder.work_us += (t0.elapsed().as_micros() as u64).max(1);
        if let Some(m) = &self.metrics {
            m.threshold_nudges_total.inc();
        }
        self.emit(TelemetryEvent::ThresholdChange(ThresholdChangeEvent {
            at_tuple: self.seen,
            tier: RepairTier::ThresholdNudge.wire_name().into(),
            cell: cell as u8,
            thresholds: self.ladder.thresholds.clone(),
        }));
        true
    }

    /// The full repair state as a scorer publication (absolute
    /// thresholds; profiles attached while the projection is installed).
    pub(crate) fn repair_update(&self) -> RepairUpdate {
        RepairUpdate {
            tier: self.ladder.active,
            thresholds: self.ladder.thresholds.clone(),
            projection: self.ladder.projection.then(|| self.profiles.clone()),
        }
    }

    /// Close any open ladder episode and zero the repair artifacts — a
    /// manual retrain re-profiled the stream exactly like a tier-3
    /// success, so serve-time corrections no longer apply. Returns the
    /// identity publication for the scorer.
    pub(crate) fn reset_ladder(&mut self) -> RepairUpdate {
        if let Some(tier) = self.ladder.active.take() {
            self.emit_repair_end(tier, "retrained", None);
        }
        self.ladder.reset_artifacts();
        self.ladder.batches_in_tier = 0;
        self.ladder.recovery_streak = 0;
        self.ladder.work_us = 0;
        if let Some(m) = &self.metrics {
            m.repair_tier.set(0.0);
        }
        self.repair_update()
    }

    fn emit_repair_start(&self, tier: RepairTier) {
        self.emit(TelemetryEvent::RepairStart(RepairStartEvent {
            at_tuple: self.seen,
            tier: tier.wire_name().into(),
            window_len: self.window.len() as u64,
            labeled: self.window.labeled_len() as u64,
        }));
    }

    fn emit_repair_end(&self, tier: RepairTier, outcome: &str, error: Option<String>) {
        self.emit(TelemetryEvent::RepairEnd(RepairEndEvent {
            at_tuple: self.seen,
            tier: tier.wire_name().into(),
            outcome: outcome.into(),
            error,
            duration_us: self.ladder.work_us,
            retrains: self.retrains,
        }));
    }

    /// The rung of the open ladder episode, if one is open.
    pub fn repair_tier(&self) -> Option<RepairTier> {
        self.ladder.active()
    }

    /// The per-cell serve-time margin cutoffs currently in force
    /// (index = group cell id; all zeros means decisions sit at the
    /// model's native boundary).
    pub fn repair_thresholds(&self) -> &[f64] {
        self.ladder.thresholds()
    }

    /// Whether the tier-2 conformance projection is installed on the
    /// serving path.
    pub fn repair_projection_active(&self) -> bool {
        self.ladder.projection
    }

    /// Join late ground truth into the label plane: each record is matched
    /// by tuple id against the decision ring (labeled in place) or the
    /// pending-join index (served late), and the label-plane counters
    /// advance per join. Purely additive observation — no Page–Hinkley
    /// step, no floor check, no retrain: alerts remain the decision
    /// plane's job, so feedback stays O(log window) per record.
    ///
    /// Records for already-labeled, evicted-and-forgotten, or
    /// never-monitored tuples are counted
    /// ([`Monitor::join_stats`]), not errors — all are expected
    /// operational events under bounded memory and backpressure drops.
    /// That leniency extends to ids beyond this monitor's clock: in the
    /// async pipeline a dropped record leaves ids the monitor never saw,
    /// indistinguishable here from never-issued ones, so both resolve as
    /// unmatched. The *engines* — which own the true id clock — reject
    /// genuinely future ids with [`StreamError::FutureFeedback`] before
    /// anything reaches the monitor.
    ///
    /// # Errors
    /// The whole batch is validated first ([`StreamError::BadLabel`] for a
    /// non-binary label); a validation failure applies nothing.
    pub fn feedback(&mut self, feedback: &[LabelFeedback]) -> Result<FeedbackOutcome> {
        for record in feedback {
            if record.label >= 2 {
                return Err(StreamError::BadLabel(record.label));
            }
        }
        let counts_before = self
            .sink
            .as_ref()
            .filter(|_| !feedback.is_empty())
            .map(|_| crate::telemetry::both_counters(self.window.counts()));
        let (mut joined, mut joined_late, mut duplicates, mut unmatched) = (0, 0, 0, 0);
        for record in feedback {
            match self.window.feedback(record.id, record.label) {
                LabelJoin::Joined => joined += 1,
                LabelJoin::JoinedLate => {
                    joined += 1;
                    joined_late += 1;
                }
                LabelJoin::Duplicate => duplicates += 1,
                LabelJoin::Unmatched => unmatched += 1,
            }
        }
        let snapshot = self.snapshot();
        if let Some(before) = counts_before {
            let after = crate::telemetry::both_counters(self.window.counts());
            self.emit(TelemetryEvent::FeedbackJoin(FeedbackJoinEvent {
                at_tuple: self.seen,
                records: feedback.len() as u64,
                joined,
                joined_late,
                duplicates,
                unmatched,
                di_floor: self.config.di_floor,
                delta: after
                    .iter()
                    .zip(&before)
                    .map(|(a, b)| a.delta_from(b))
                    .collect(),
                snapshot: snapshot.to_data(),
            }));
        }
        self.refresh_metrics();
        Ok(FeedbackOutcome {
            joined,
            joined_late,
            duplicates,
            unmatched,
            snapshot,
        })
    }

    /// The retraining hook: re-run ConFair on the window's **labeled**
    /// contents (ground truth is what training needs; unlabeled slots are
    /// skipped), re-derive the reference profiles from the same labeled
    /// subset (the stream's new normal), reset the drift detectors, and
    /// return the replacement predictor for the caller to install into its
    /// scorer.
    pub fn retrain(&mut self) -> Result<Box<dyn Predictor>> {
        #[cfg(feature = "fault-injection")]
        if let Some(faults) = self.faults.as_ref().and_then(|p| p.retrain.as_ref()) {
            match faults.on_attempt() {
                Some(crate::faults::FaultKind::Error) => {
                    return Err(StreamError::Injected(format!(
                        "retrain attempt {}",
                        faults.attempts_seen().saturating_sub(1)
                    )));
                }
                Some(crate::faults::FaultKind::Panic) => crate::faults::injected_panic(),
                None => {}
            }
        }
        let data = self.window_dataset("stream-window")?;
        for label in [0u8, 1] {
            if data.label_count(label) < 2 {
                return Err(StreamError::DegenerateWindow(format!(
                    "window holds {} labeled tuples of class {label}; both classes are \
                     required to retrain",
                    data.label_count(label)
                )));
            }
        }
        let split = split3_stratified(&data, SplitRatios::paper_default(), self.seen);
        let predictor = ConFair::new(self.config.confair.clone())
            .train(&split.train, &split.validation, self.learner)
            .map_err(StreamError::from_core)?;
        self.profiles = learn_profiles(&data, &self.config);
        for detector in &mut self.detectors {
            detector.reset();
        }
        self.retrains += 1;
        Ok(predictor)
    }

    /// The windowed fairness reading. O(1). Carries the live engine's
    /// degraded flag on top of the pure counter arithmetic.
    pub fn snapshot(&self) -> FairnessSnapshot {
        let mut s = FairnessSnapshot::from_counts(self.window.counts(), self.config.di_floor);
        s.degraded = self.degraded;
        s
    }

    /// Every alert raised since construction, in stream order.
    pub fn alerts(&self) -> &[DriftAlert] {
        &self.alerts
    }

    /// Total tuples observed.
    pub fn tuples_seen(&self) -> u64 {
        self.seen
    }

    /// How many times the retraining hook has run.
    pub fn retrain_count(&self) -> u64 {
        self.retrains
    }

    /// Tuples currently retained in the window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// The raw windowed per-cell counters (index = group cell id, `0..K`).
    pub fn window_counts(&self) -> &[GroupCounts] {
        self.window.counts()
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The reference schema's column names.
    pub fn schema(&self) -> &[String] {
        &self.schema
    }

    /// Materialise the window's **labeled** contents as a dataset
    /// (newest-window training set for the retraining hook; also useful
    /// for audits). Slots whose ground truth has not joined yet are
    /// skipped — a dataset cannot carry a missing label, and training on
    /// fabricated ones would poison the retrain.
    ///
    /// # Errors
    /// [`StreamError::DegenerateWindow`] when no labeled slot is retained.
    pub fn window_dataset(&self, name: &str) -> Result<Dataset> {
        if self.window.is_empty() {
            return Err(StreamError::DegenerateWindow("window is empty".into()));
        }
        // Window slots were validated on ingestion, so assembly can't fail
        // on shape.
        let len = self.window.len();
        let d = self.schema.len();
        let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(len); d];
        let mut labels = Vec::with_capacity(len);
        let mut groups = Vec::with_capacity(len);
        for (meta, features) in self.window.iter() {
            let Some(label) = meta.label else { continue };
            for (j, &v) in features.iter().enumerate() {
                columns[j].push(v);
            }
            labels.push(label);
            groups.push(meta.group);
        }
        if labels.is_empty() {
            return Err(StreamError::DegenerateWindow(
                "window holds no labeled tuples (no ground truth has joined yet)".into(),
            ));
        }
        Dataset::new(
            name,
            self.schema.clone(),
            columns.into_iter().map(Column::Numeric).collect(),
            labels,
            groups,
        )
        .map_err(|e| StreamError::Schema(e.to_string()))
    }

    /// Cumulative label-join observability counters (joins, duplicates,
    /// unmatched records, pending-index evictions). Reset on restore, like
    /// the async engine's drop counters.
    pub fn join_stats(&self) -> JoinStats {
        self.window.join_stats()
    }

    /// Evicted decisions currently awaiting their labels in the
    /// pending-join index.
    pub fn pending_labels(&self) -> usize {
        self.window.pending_len()
    }

    /// Joined `(decision, label)` pairs currently in the label plane.
    pub fn labeled_len(&self) -> usize {
        self.window.labeled_len()
    }

    /// The next tuple id this monitor will assign (ids `0..ids_issued`
    /// are valid feedback keys; under async backpressure drops some of
    /// them were never monitored and will resolve as unmatched).
    pub fn ids_issued(&self) -> u64 {
        self.ids_issued
    }

    /// The violation of a tuple's features against its (group,
    /// **decision**) reference profile — the decision plane's conformance
    /// check, computable before any ground truth arrives (the served
    /// decision stands in for the label in picking the cell); 0 when the
    /// cell had too few reference rows to profile.
    fn violation_of(&self, features: &[f64], group: u8, decision: u8) -> f64 {
        // An out-of-range cell reads as "no profile" here so the window's
        // push is what rejects it — with the typed `BadGroup`, not an
        // index panic.
        match self
            .profiles
            .get(group as usize)
            .and_then(|cell| cell[decision as usize].as_ref())
        {
            Some(constraints) => constraints.violation(features),
            None => 0.0,
        }
    }
}

/// Conformance profiles per (group, label) cell of the reference data:
/// one profile per `(g, y)` cell for `g` in `0..K`, skipping cells with
/// too few reference rows.
pub(crate) fn learn_profiles(reference: &Dataset, config: &StreamConfig) -> CellProfiles {
    let mut profiles: CellProfiles = vec![Default::default(); config.groups];
    for (group, cell_profiles) in profiles.iter_mut().enumerate() {
        for label in 0..2u8 {
            let cell = CellIndex {
                group: group as u8,
                label,
            };
            let members = reference.cell_indices(cell);
            if members.len() < config.min_profile_rows {
                continue;
            }
            let x = reference.numeric_matrix(Some(&members));
            cell_profiles[label as usize] = Some(learn_constraints(&x, &config.confair.learn_opts));
        }
    }
    profiles
}

/// Best-effort stringification of a caught panic payload (the `&str` and
/// `String` cases cover `panic!` and the injected-fault seam; anything
/// else is opaque by construction).
pub(crate) fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fully-labeled group's counters (every decision's label joined).
    fn counts(total: u64, selected: u64, label_pos: u64, tp: u64, viol: u64) -> GroupCounts {
        GroupCounts {
            total,
            selected,
            violations: viol,
            labeled: total,
            label_positive: label_pos,
            true_positive: tp,
            false_positive: selected.saturating_sub(tp),
        }
    }

    #[test]
    fn balanced_window_is_fair() {
        let s = FairnessSnapshot::from_counts(
            &[counts(100, 50, 60, 40, 5), counts(100, 50, 60, 40, 5)],
            0.8,
        );
        assert_eq!(s.disparate_impact, Some(1.0));
        assert_eq!(s.di_star, Some(1.0));
        assert_eq!(s.demographic_parity_gap, Some(0.0));
        assert_eq!(s.equal_opportunity_gap, Some(0.0));
        assert_eq!(s.passes_di_floor(), Some(true));
        assert_eq!(s.window_len, 200);
    }

    #[test]
    fn skewed_selection_fails_the_four_fifths_rule() {
        // SR_W = 0.6, SR_U = 0.3 → DI = 0.5 < 0.8.
        let s = FairnessSnapshot::from_counts(
            &[counts(100, 60, 50, 40, 0), counts(100, 30, 50, 20, 0)],
            0.8,
        );
        assert!((s.disparate_impact.unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(s.passes_di_floor(), Some(false));
        assert!((s.demographic_parity_gap.unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn di_star_symmetrises_reverse_bias() {
        // Minority over-selected: DI = 2.0 → DI* = 0.5.
        let s = FairnessSnapshot::from_counts(
            &[counts(100, 30, 50, 20, 0), counts(100, 60, 50, 40, 0)],
            0.8,
        );
        assert!((s.disparate_impact.unwrap() - 2.0).abs() < 1e-12);
        assert!((s.di_star.unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_group_stream_yields_none_not_nan() {
        let s = FairnessSnapshot::from_counts(
            &[counts(100, 60, 50, 40, 3), GroupCounts::default()],
            0.8,
        );
        assert_eq!(s.disparate_impact, None);
        assert_eq!(s.di_star, None);
        assert_eq!(s.passes_di_floor(), None);
        assert_eq!(s.violation_rate[1], None);
        assert_eq!(s.selection_rate[0], Some(0.6));
        assert!(s.one_line().contains("--"));
    }

    #[test]
    fn zero_majority_selection_is_infinite_di() {
        let s = FairnessSnapshot::from_counts(
            &[counts(50, 0, 25, 0, 0), counts(50, 10, 25, 5, 0)],
            0.8,
        );
        assert_eq!(s.disparate_impact, Some(f64::INFINITY));
        assert_eq!(s.di_star, Some(0.0));
        // Nobody selected at all: vacuously balanced, not unfair.
        let quiet =
            FairnessSnapshot::from_counts(&[counts(50, 0, 25, 0, 0), counts(50, 0, 25, 0, 0)], 0.8);
        assert_eq!(quiet.disparate_impact, Some(1.0));
    }
}
