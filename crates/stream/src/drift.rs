//! Per-group drift detection on the conformance-violation series.
//!
//! The paper's lens: unfairness *is* data drift between group
//! distributions, and a group's drift is visible as a rising rate of
//! conformance-constraint violations against the group's reference profile.
//! This module runs a Page–Hinkley test per group over the per-tuple
//! violation indicator — the standard sequential change-point test for
//! upward mean shifts: cheap (O(1) per observation), no stored history, and
//! with a tolerance `delta` that absorbs stationary noise.
//!
//! Like the window, the detectors live on the [`Monitor`] side of the
//! engine split: plain owned state, stepped by `Monitor::observe` — on the
//! caller's thread in the sync engine, behind the bounded queue in the
//! async one — and cloned wholesale for checkpoints.
//!
//! [`Monitor`]: crate::Monitor

/// Page–Hinkley configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PageHinkleyConfig {
    /// Tolerated upward deviation per observation; deviations below this
    /// never accumulate. Keeps a stationary stream quiet.
    pub delta: f64,
    /// Alert threshold on the accumulated deviation statistic.
    pub lambda: f64,
    /// Observations required before the test may fire (warm-up).
    pub min_samples: u64,
    /// Observations to ignore after an alert (hysteresis: one drift event
    /// produces one alert, not a flap of them while the window turns over).
    pub cooldown: u64,
}

impl Default for PageHinkleyConfig {
    fn default() -> Self {
        PageHinkleyConfig {
            delta: 0.02,
            lambda: 12.0,
            min_samples: 200,
            cooldown: 1_000,
        }
    }
}

/// Sequential Page–Hinkley test for an upward shift in a series' mean.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    config: PageHinkleyConfig,
    n: u64,
    mean: f64,
    cumulative: f64,
    minimum: f64,
    cooldown_left: u64,
}

impl PageHinkley {
    /// A fresh detector.
    pub fn new(config: PageHinkleyConfig) -> Self {
        PageHinkley {
            config,
            n: 0,
            mean: 0.0,
            cumulative: 0.0,
            minimum: 0.0,
            cooldown_left: 0,
        }
    }

    /// Feed one observation. Returns the test statistic when it crosses
    /// `lambda` (an upward change-point); the detector then resets and
    /// holds quiet for `cooldown` observations.
    pub fn observe(&mut self, x: f64) -> Option<f64> {
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return None;
        }
        self.n += 1;
        // Running mean of the series so far (Welford step).
        self.mean += (x - self.mean) / self.n as f64;
        self.cumulative += x - self.mean - self.config.delta;
        self.minimum = self.minimum.min(self.cumulative);
        let statistic = self.cumulative - self.minimum;
        if self.n >= self.config.min_samples && statistic > self.config.lambda {
            self.reset();
            self.cooldown_left = self.config.cooldown;
            Some(statistic)
        } else {
            None
        }
    }

    /// Observations consumed since the last reset.
    pub fn samples(&self) -> u64 {
        self.n
    }

    /// The configured threshold.
    pub fn lambda(&self) -> f64 {
        self.config.lambda
    }

    /// Forget all state, including any pending cooldown (used by the
    /// retraining hook, since retraining redefines the reference
    /// distribution and the fresh detector must not stay deaf).
    pub fn reset(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.cumulative = 0.0;
        self.minimum = 0.0;
        self.cooldown_left = 0;
    }

    /// Snapshot the full detector state for checkpointing — the running
    /// mean, the accumulated deviation, its minimum, and the warm-up /
    /// cooldown position, so a restored detector neither reopens the
    /// warm-up gap nor forgets a pending cooldown (no re-alert storm).
    pub fn state(&self) -> PageHinkleyState {
        PageHinkleyState {
            n: self.n,
            mean: self.mean,
            cumulative: self.cumulative,
            minimum: self.minimum,
            cooldown_left: self.cooldown_left,
        }
    }

    /// Rebuild a detector from a configuration plus a snapshotted state.
    /// The restored detector's future alerts are bit-identical to the
    /// original's on the same subsequent observation series.
    pub fn from_state(config: PageHinkleyConfig, state: &PageHinkleyState) -> Self {
        PageHinkley {
            config,
            n: state.n,
            mean: state.mean,
            cumulative: state.cumulative,
            minimum: state.minimum,
            cooldown_left: state.cooldown_left,
        }
    }
}

/// The serialisable mutable state of a [`PageHinkley`] detector (its
/// configuration travels separately, inside the engine's `StreamConfig`).
/// Every float round-trips bit-exactly through the JSON shim.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PageHinkleyState {
    /// Observations since the last reset.
    pub n: u64,
    /// Running mean of the series.
    pub mean: f64,
    /// Accumulated deviation statistic.
    pub cumulative: f64,
    /// Running minimum of the accumulated deviation.
    pub minimum: f64,
    /// Observations still to ignore after the last alert.
    pub cooldown_left: u64,
}

/// What kind of drift fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// Page–Hinkley change-point on a group's conformance-violation series:
    /// the group's live distribution has left its reference profile.
    ConformanceViolation,
    /// The windowed disparate-impact ratio fell below the configured floor
    /// (EEOC four-fifths rule).
    DisparateImpactFloor,
}

impl DriftKind {
    /// The stable wire name this kind serialises as (also what the
    /// telemetry plane's `AlertData::kind` carries).
    pub fn wire_name(&self) -> &'static str {
        match self {
            DriftKind::ConformanceViolation => "conformance_violation",
            DriftKind::DisparateImpactFloor => "disparate_impact_floor",
        }
    }
}

impl serde::Serialize for DriftKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.wire_name().into())
    }
}

impl serde::Deserialize for DriftKind {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        match v.as_str() {
            Some("conformance_violation") => Ok(DriftKind::ConformanceViolation),
            Some("disparate_impact_floor") => Ok(DriftKind::DisparateImpactFloor),
            _ => Err(serde::Error::msg("unknown drift kind")),
        }
    }
}

/// A typed drift event emitted by the engine.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DriftAlert {
    /// Which kind of detector fired.
    pub kind: DriftKind,
    /// The drifting cell id (one of the `config.groups` monitored cells;
    /// at the binary default, 0 = majority and 1 = minority). For
    /// [`DriftKind::DisparateImpactFloor`] this is the disadvantaged cell
    /// of the worst-served pair.
    pub group: u8,
    /// Global stream position (tuples ingested when the alert fired).
    pub at_tuple: u64,
    /// The detector statistic at firing time (Page–Hinkley statistic, or
    /// the DI* reading for floor alerts).
    pub statistic: f64,
    /// The threshold that was crossed (λ, or the DI floor).
    pub threshold: f64,
}

impl DriftAlert {
    /// Compact rendering for monitoring output (alias for the [`Display`]
    /// impl, kept for callers that want an owned `String`).
    ///
    /// [`Display`]: std::fmt::Display
    pub fn one_line(&self) -> String {
        self.to_string()
    }
}

/// Human-readable one-liner, e.g.
/// `[ALERT @9250] conformance drift in group 1: PH statistic 12.31 > λ=12.00`.
impl std::fmt::Display for DriftAlert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            DriftKind::ConformanceViolation => write!(
                f,
                "[ALERT @{}] conformance drift in group {}: PH statistic {:.2} > λ={:.2}",
                self.at_tuple, self.group, self.statistic, self.threshold
            ),
            DriftKind::DisparateImpactFloor => write!(
                f,
                "[ALERT @{}] DI* {:.3} below floor {:.2} (disadvantaged group {})",
                self.at_tuple, self.statistic, self.threshold, self.group
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(delta: f64, lambda: f64, min_samples: u64, cooldown: u64) -> PageHinkley {
        PageHinkley::new(PageHinkleyConfig {
            delta,
            lambda,
            min_samples,
            cooldown,
        })
    }

    /// Deterministic pseudo-Bernoulli stream with rate `p`.
    fn bernoulli(i: u64, p: f64) -> f64 {
        // Weyl sequence on the golden ratio: equidistributed in [0, 1).
        let u = (i as f64 * 0.618_033_988_749_894_9).fract();
        f64::from(u < p)
    }

    #[test]
    fn stationary_series_never_fires() {
        let mut ph = detector(0.02, 12.0, 200, 0);
        for i in 0..200_000 {
            assert_eq!(ph.observe(bernoulli(i, 0.10)), None, "false alarm at {i}");
        }
    }

    #[test]
    fn mean_shift_fires_and_only_after_the_shift() {
        let mut ph = detector(0.02, 12.0, 200, 10_000);
        let mut fired_at = None;
        for i in 0..20_000u64 {
            let p = if i < 5_000 { 0.10 } else { 0.60 };
            if ph.observe(bernoulli(i, p)).is_some() {
                fired_at = Some(i);
                break;
            }
        }
        let at = fired_at.expect("a 0.1 -> 0.6 shift must be detected");
        assert!(at >= 5_000, "no alert before the shift (fired at {at})");
        assert!(
            at < 5_200,
            "detection latency should be small (fired at {at})"
        );
    }

    #[test]
    fn cooldown_suppresses_flapping() {
        let mut ph = detector(0.02, 12.0, 100, 2_000);
        let mut alerts = 0;
        for i in 0..6_000u64 {
            let p = if i < 500 { 0.05 } else { 0.80 };
            if ph.observe(bernoulli(i, p)).is_some() {
                alerts += 1;
            }
        }
        // The post-shift series stays hot, so after each cooldown the test
        // re-arms and may legitimately fire again — but within any cooldown
        // span there is at most one alert.
        assert!(alerts >= 1);
        assert!(
            alerts <= 3,
            "cooldown must bound the alert rate, got {alerts}"
        );
    }

    #[test]
    fn min_samples_gates_early_fires() {
        let mut ph = detector(0.0, 0.1, 1_000, 0);
        // An alternating series whose deviations would trip λ = 0.1 almost
        // immediately: the warm-up gate must hold it back.
        for i in 0..999u32 {
            let x = f64::from(i % 2 == 0);
            assert_eq!(ph.observe(x), None, "fired during warm-up at {i}");
        }
    }

    #[test]
    fn reset_forgets_history() {
        let mut ph = detector(0.02, 5.0, 10, 0);
        for i in 0..3_000 {
            ph.observe(bernoulli(i, 0.9));
        }
        ph.reset();
        assert_eq!(ph.samples(), 0);
        // After reset the high rate is the *new normal*: no alert.
        for i in 0..3_000 {
            assert_eq!(ph.observe(bernoulli(i, 0.9)), None);
        }
    }
}
