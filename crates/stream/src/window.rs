//! Fixed-capacity ring buffer over scored tuples with O(1) windowed
//! counters.
//!
//! Every fairness monitor in this crate reads from [`GroupCounts`], which
//! [`SlidingWindow::push`] maintains incrementally: one increment for the
//! arriving tuple, one decrement for the evicted one. No monitor ever scans
//! the window — that is the invariant that keeps per-tuple ingestion O(1)
//! (property-checked in this module's tests and load-tested by the
//! `stream_ingest` benchmark).

use crate::{Result, StreamError};

/// One scored tuple as retained in the window. Features are kept so the
/// retraining hook can rebuild a training set from exactly the tuples the
/// drift detector fired on.
#[derive(Debug, Clone)]
pub struct WindowSlot {
    /// Group id (0 = majority `W`, 1 = minority `U`).
    pub group: u8,
    /// Ground-truth label (streaming setting with label feedback).
    pub label: u8,
    /// The served decision `ŷ`.
    pub decision: u8,
    /// Whether the tuple violated its (group, label) reference constraints.
    pub violated: bool,
    /// The numeric attribute vector.
    pub features: Box<[f64]>,
}

/// Windowed tallies for one group, every one maintained in O(1) per tuple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupCounts {
    /// Tuples of this group currently in the window.
    pub total: u64,
    /// Tuples with decision 1 (selected).
    pub selected: u64,
    /// Tuples with ground-truth label 1.
    pub label_positive: u64,
    /// Selected among label-positive (windowed true positives).
    pub true_positive: u64,
    /// Selected among label-negative (windowed false positives).
    pub false_positive: u64,
    /// Tuples violating their reference conformance constraints.
    pub violations: u64,
}

impl GroupCounts {
    fn apply(&mut self, slot: &WindowSlot, sign: i64) {
        let add = |c: &mut u64| {
            *c = c.wrapping_add_signed(sign);
        };
        add(&mut self.total);
        if slot.decision == 1 {
            add(&mut self.selected);
            if slot.label == 1 {
                add(&mut self.true_positive);
            } else {
                add(&mut self.false_positive);
            }
        }
        if slot.label == 1 {
            add(&mut self.label_positive);
        }
        if slot.violated {
            add(&mut self.violations);
        }
    }

    /// Windowed selection rate `P(ŷ=1 | g)`.
    pub fn selection_rate(&self) -> Option<f64> {
        (self.total > 0).then(|| self.selected as f64 / self.total as f64)
    }

    /// Windowed true-positive rate `P(ŷ=1 | y=1, g)`.
    pub fn tpr(&self) -> Option<f64> {
        (self.label_positive > 0).then(|| self.true_positive as f64 / self.label_positive as f64)
    }

    /// Windowed conformance-violation rate.
    pub fn violation_rate(&self) -> Option<f64> {
        (self.total > 0).then(|| self.violations as f64 / self.total as f64)
    }
}

/// The sliding window: a ring buffer of [`WindowSlot`]s plus per-group
/// counters.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    slots: Vec<WindowSlot>,
    capacity: usize,
    head: usize,
    len: usize,
    counts: [GroupCounts; 2],
}

impl SlidingWindow {
    /// A window retaining the most recent `capacity` tuples.
    pub fn new(capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(StreamError::EmptyWindow);
        }
        Ok(SlidingWindow {
            slots: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            len: 0,
            counts: [GroupCounts::default(); 2],
        })
    }

    /// Insert a scored tuple, evicting the oldest when full. O(1).
    pub fn push(&mut self, slot: WindowSlot) -> Result<()> {
        let g = slot.group as usize;
        if g >= 2 {
            return Err(StreamError::BadGroup(slot.group));
        }
        if self.len < self.capacity {
            self.counts[g].apply(&slot, 1);
            self.slots.push(slot);
            self.len += 1;
            // head stays 0 until the ring wraps.
            return Ok(());
        }
        let evicted = &self.slots[self.head];
        self.counts[evicted.group as usize].apply(evicted, -1);
        self.counts[g].apply(&slot, 1);
        self.slots[self.head] = slot;
        self.head = (self.head + 1) % self.capacity;
        Ok(())
    }

    /// Tuples currently retained.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window holds no tuples yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum retained tuples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The windowed per-group counters (index = group id).
    pub fn counts(&self) -> &[GroupCounts; 2] {
        &self.counts
    }

    /// Iterate retained slots, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &WindowSlot> {
        let (wrapped, recent) = self.slots.split_at(self.head.min(self.slots.len()));
        recent.iter().chain(wrapped.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(group: u8, label: u8, decision: u8, violated: bool) -> WindowSlot {
        WindowSlot {
            group,
            label,
            decision,
            violated,
            features: vec![f64::from(group), f64::from(label)].into_boxed_slice(),
        }
    }

    /// Recompute the counters by scanning — the O(n) ground truth the O(1)
    /// incremental path must match.
    fn brute_counts(w: &SlidingWindow) -> [GroupCounts; 2] {
        let mut counts = [GroupCounts::default(); 2];
        for s in w.iter() {
            counts[s.group as usize].apply(s, 1);
        }
        counts
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(matches!(
            SlidingWindow::new(0),
            Err(StreamError::EmptyWindow)
        ));
    }

    #[test]
    fn bad_group_is_rejected() {
        let mut w = SlidingWindow::new(4).unwrap();
        assert!(matches!(
            w.push(slot(2, 0, 0, false)),
            Err(StreamError::BadGroup(2))
        ));
    }

    #[test]
    fn counters_match_brute_force_through_wraparound() {
        let mut w = SlidingWindow::new(7).unwrap();
        for i in 0..50u32 {
            let g = (i % 3 == 0) as u8;
            let y = (i % 2) as u8;
            let d = (i % 5 < 3) as u8;
            let v = i % 4 == 1;
            w.push(slot(g, y, d, v)).unwrap();
            assert_eq!(*w.counts(), brute_counts(&w), "after push {i}");
            assert_eq!(w.len(), (i as usize + 1).min(7));
        }
    }

    #[test]
    fn eviction_is_fifo() {
        let mut w = SlidingWindow::new(3).unwrap();
        for i in 0..5u8 {
            let mut s = slot(0, 0, 0, false);
            s.features = vec![f64::from(i)].into_boxed_slice();
            w.push(s).unwrap();
        }
        let order: Vec<f64> = w.iter().map(|s| s.features[0]).collect();
        assert_eq!(order, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn rates_handle_empty_denominators() {
        let c = GroupCounts::default();
        assert_eq!(c.selection_rate(), None);
        assert_eq!(c.tpr(), None);
        assert_eq!(c.violation_rate(), None);

        let mut w = SlidingWindow::new(4).unwrap();
        w.push(slot(0, 0, 1, true)).unwrap();
        let c = w.counts()[0];
        assert_eq!(c.selection_rate(), Some(1.0));
        assert_eq!(c.tpr(), None, "no label-positives yet");
        assert_eq!(c.violation_rate(), Some(1.0));
    }
}
