//! Fixed-capacity ring buffer over scored tuples with O(1) windowed
//! counters and a contiguous feature arena.
//!
//! Every fairness monitor in this crate reads from [`GroupCounts`], which
//! [`SlidingWindow::push`] maintains incrementally: one increment for the
//! arriving tuple, one decrement for the evicted one. No monitor ever scans
//! the window — that is the invariant that keeps per-tuple ingestion O(1)
//! (property-checked in this module's tests and load-tested by the
//! `stream_ingest` benchmark).
//!
//! Features live in **one ring arena** with stride `dim` — slot `i`'s
//! vector is `arena[i*dim..(i+1)*dim]` — so pushing a tuple copies `dim`
//! floats into place instead of boxing a fresh heap allocation per tuple.
//! Once the ring has wrapped, `push` never allocates again.
//!
//! In the engine split, the window belongs to the [`Monitor`] half: it is
//! plain owned data (no handles, no interior mutability), which is what
//! lets a monitor move to the async engine's background thread — and be
//! cloned for quiescent-point checkpoints — without any synchronisation
//! here.
//!
//! [`Monitor`]: crate::Monitor

use crate::{Result, StreamError};

/// The per-tuple metadata retained in the window (the feature vector lives
/// in the window's arena, not here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SlotMeta {
    /// Group id (0 = majority `W`, 1 = minority `U`).
    pub group: u8,
    /// Ground-truth label (streaming setting with label feedback).
    pub label: u8,
    /// The served decision `ŷ`.
    pub decision: u8,
    /// Whether the tuple violated its (group, label) reference constraints.
    pub violated: bool,
}

/// Windowed tallies for one group, every one maintained in O(1) per tuple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupCounts {
    /// Tuples of this group currently in the window.
    pub total: u64,
    /// Tuples with decision 1 (selected).
    pub selected: u64,
    /// Tuples with ground-truth label 1.
    pub label_positive: u64,
    /// Selected among label-positive (windowed true positives).
    pub true_positive: u64,
    /// Selected among label-negative (windowed false positives).
    pub false_positive: u64,
    /// Tuples violating their reference conformance constraints.
    pub violations: u64,
}

impl GroupCounts {
    fn apply(&mut self, slot: &SlotMeta, sign: i64) {
        let add = |c: &mut u64| {
            *c = c.wrapping_add_signed(sign);
        };
        add(&mut self.total);
        if slot.decision == 1 {
            add(&mut self.selected);
            if slot.label == 1 {
                add(&mut self.true_positive);
            } else {
                add(&mut self.false_positive);
            }
        }
        if slot.label == 1 {
            add(&mut self.label_positive);
        }
        if slot.violated {
            add(&mut self.violations);
        }
    }

    /// Fold another group's tallies into this one. The counters are all
    /// additive, which is what makes cross-shard snapshot merging exact.
    pub fn merge(&mut self, other: &GroupCounts) {
        self.total += other.total;
        self.selected += other.selected;
        self.label_positive += other.label_positive;
        self.true_positive += other.true_positive;
        self.false_positive += other.false_positive;
        self.violations += other.violations;
    }

    /// Windowed selection rate `P(ŷ=1 | g)`.
    pub fn selection_rate(&self) -> Option<f64> {
        (self.total > 0).then(|| self.selected as f64 / self.total as f64)
    }

    /// Windowed true-positive rate `P(ŷ=1 | y=1, g)`.
    pub fn tpr(&self) -> Option<f64> {
        (self.label_positive > 0).then(|| self.true_positive as f64 / self.label_positive as f64)
    }

    /// Windowed conformance-violation rate.
    pub fn violation_rate(&self) -> Option<f64> {
        (self.total > 0).then(|| self.violations as f64 / self.total as f64)
    }
}

/// The sliding window: a metadata ring plus a stride-`dim` feature arena,
/// with per-group counters.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    meta: Vec<SlotMeta>,
    arena: Vec<f64>,
    dim: usize,
    capacity: usize,
    head: usize,
    len: usize,
    counts: [GroupCounts; 2],
}

impl SlidingWindow {
    /// A window retaining the most recent `capacity` tuples of `dim`
    /// features each.
    pub fn new(capacity: usize, dim: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(StreamError::EmptyWindow);
        }
        Ok(SlidingWindow {
            meta: Vec::with_capacity(capacity),
            arena: Vec::with_capacity(capacity.saturating_mul(dim)),
            dim,
            capacity,
            head: 0,
            len: 0,
            counts: [GroupCounts::default(); 2],
        })
    }

    /// Insert a scored tuple, evicting the oldest when full. O(1), and
    /// allocation-free once the ring has filled.
    pub fn push(&mut self, meta: SlotMeta, features: &[f64]) -> Result<()> {
        let g = meta.group as usize;
        if g >= 2 {
            return Err(StreamError::BadGroup(meta.group));
        }
        if features.len() != self.dim {
            return Err(StreamError::Schema(format!(
                "tuple has {} features; the window stride is {}",
                features.len(),
                self.dim
            )));
        }
        if self.len < self.capacity {
            self.counts[g].apply(&meta, 1);
            self.meta.push(meta);
            self.arena.extend_from_slice(features);
            self.len += 1;
            // head stays 0 until the ring wraps.
            return Ok(());
        }
        let evicted = self.meta[self.head];
        self.counts[evicted.group as usize].apply(&evicted, -1);
        self.counts[g].apply(&meta, 1);
        self.meta[self.head] = meta;
        self.arena[self.head * self.dim..(self.head + 1) * self.dim].copy_from_slice(features);
        self.head = (self.head + 1) % self.capacity;
        Ok(())
    }

    /// Tuples currently retained.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window holds no tuples yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum retained tuples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Features per tuple (the arena stride).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The windowed per-group counters (index = group id).
    pub fn counts(&self) -> &[GroupCounts; 2] {
        &self.counts
    }

    /// Iterate retained tuples as `(meta, features)`, oldest first.
    /// (`head` is 0 until the ring wraps, so the modular walk covers both
    /// the filling and the wrapped regime.)
    pub fn iter(&self) -> impl Iterator<Item = (SlotMeta, &[f64])> {
        (0..self.len).map(move |i| {
            let idx = (self.head + i) % self.capacity;
            (
                self.meta[idx],
                &self.arena[idx * self.dim..(idx + 1) * self.dim],
            )
        })
    }

    /// Snapshot the window's logical contents for checkpointing: capacity,
    /// stride, and the retained tuples **oldest-first**. The physical ring
    /// offset is not recorded — it is unobservable (iteration order,
    /// eviction order, and counters are all phase-independent), so
    /// [`SlidingWindow::from_state`] repacks the slots from phase 0.
    pub fn state(&self) -> WindowState {
        let mut meta = Vec::with_capacity(self.len);
        let mut features = Vec::with_capacity(self.len * self.dim);
        for (m, f) in self.iter() {
            meta.push(m);
            features.extend_from_slice(f);
        }
        WindowState {
            capacity: self.capacity,
            dim: self.dim,
            meta,
            features,
        }
    }

    /// Rebuild a window from a snapshot by replaying its slots through
    /// [`SlidingWindow::push`] — the counters are recomputed rather than
    /// trusted, so a tampered snapshot cannot desynchronise them.
    ///
    /// # Errors
    /// Rejects zero capacities, more slots than capacity, feature buffers
    /// that disagree with `len × dim`, and slots with non-binary groups or
    /// labels — a corrupted checkpoint fails loudly, it never half-loads.
    pub fn from_state(state: &WindowState) -> Result<Self> {
        if state.meta.len() > state.capacity {
            return Err(StreamError::Checkpoint(format!(
                "window snapshot holds {} slots but capacity is {}",
                state.meta.len(),
                state.capacity
            )));
        }
        if state.features.len() != state.meta.len() * state.dim {
            return Err(StreamError::Checkpoint(format!(
                "window snapshot has {} feature values for {} slots of stride {}",
                state.features.len(),
                state.meta.len(),
                state.dim
            )));
        }
        let mut window = SlidingWindow::new(state.capacity, state.dim)?;
        for (i, meta) in state.meta.iter().enumerate() {
            if meta.label >= 2 {
                return Err(StreamError::BadLabel(meta.label));
            }
            window.push(*meta, &state.features[i * state.dim..(i + 1) * state.dim])?;
        }
        Ok(window)
    }
}

/// The serialisable logical contents of a [`SlidingWindow`] (see
/// [`SlidingWindow::state`]). Feature values are stored flat, stride `dim`,
/// oldest slot first.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WindowState {
    /// Maximum retained tuples.
    pub capacity: usize,
    /// Features per tuple.
    pub dim: usize,
    /// Retained slot metadata, oldest first.
    pub meta: Vec<SlotMeta>,
    /// Flat feature buffer (`meta.len() × dim` values), oldest slot first.
    pub features: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(group: u8, label: u8, decision: u8, violated: bool) -> SlotMeta {
        SlotMeta {
            group,
            label,
            decision,
            violated,
        }
    }

    /// Recompute the counters by scanning — the O(n) ground truth the O(1)
    /// incremental path must match.
    fn brute_counts(w: &SlidingWindow) -> [GroupCounts; 2] {
        let mut counts = [GroupCounts::default(); 2];
        for (m, _) in w.iter() {
            counts[m.group as usize].apply(&m, 1);
        }
        counts
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(matches!(
            SlidingWindow::new(0, 2),
            Err(StreamError::EmptyWindow)
        ));
    }

    #[test]
    fn bad_group_is_rejected() {
        let mut w = SlidingWindow::new(4, 2).unwrap();
        assert!(matches!(
            w.push(slot(2, 0, 0, false), &[0.0, 0.0]),
            Err(StreamError::BadGroup(2))
        ));
    }

    #[test]
    fn wrong_stride_is_rejected() {
        let mut w = SlidingWindow::new(4, 2).unwrap();
        assert!(matches!(
            w.push(slot(0, 0, 0, false), &[1.0, 2.0, 3.0]),
            Err(StreamError::Schema(_))
        ));
        assert!(w.is_empty());
    }

    #[test]
    fn counters_match_brute_force_through_wraparound() {
        let mut w = SlidingWindow::new(7, 2).unwrap();
        for i in 0..50u32 {
            let g = (i % 3 == 0) as u8;
            let y = (i % 2) as u8;
            let d = (i % 5 < 3) as u8;
            let v = i % 4 == 1;
            w.push(slot(g, y, d, v), &[f64::from(i), f64::from(g)])
                .unwrap();
            assert_eq!(*w.counts(), brute_counts(&w), "after push {i}");
            assert_eq!(w.len(), (i as usize + 1).min(7));
        }
    }

    #[test]
    fn eviction_is_fifo_and_arena_tracks_features() {
        let mut w = SlidingWindow::new(3, 1).unwrap();
        for i in 0..5u8 {
            w.push(slot(0, 0, 0, false), &[f64::from(i)]).unwrap();
        }
        let order: Vec<f64> = w.iter().map(|(_, f)| f[0]).collect();
        assert_eq!(order, vec![2.0, 3.0, 4.0]);
        // The arena never grows past capacity * dim.
        assert_eq!(w.arena.len(), 3);
    }

    #[test]
    fn zero_dim_windows_iterate_empty_feature_slices() {
        // A degenerate schema with no attributes still counts correctly.
        let mut w = SlidingWindow::new(2, 0).unwrap();
        w.push(slot(0, 1, 1, false), &[]).unwrap();
        w.push(slot(1, 0, 0, true), &[]).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.counts()[0].selected, 1);
        assert_eq!(w.counts()[1].violations, 1);
    }

    #[test]
    fn merge_is_componentwise_addition() {
        let mut a = GroupCounts {
            total: 5,
            selected: 3,
            label_positive: 2,
            true_positive: 1,
            false_positive: 2,
            violations: 4,
        };
        let b = GroupCounts {
            total: 7,
            selected: 1,
            label_positive: 6,
            true_positive: 1,
            false_positive: 0,
            violations: 2,
        };
        a.merge(&b);
        assert_eq!(a.total, 12);
        assert_eq!(a.selected, 4);
        assert_eq!(a.label_positive, 8);
        assert_eq!(a.true_positive, 2);
        assert_eq!(a.false_positive, 2);
        assert_eq!(a.violations, 6);
    }

    #[test]
    fn rates_handle_empty_denominators() {
        let c = GroupCounts::default();
        assert_eq!(c.selection_rate(), None);
        assert_eq!(c.tpr(), None);
        assert_eq!(c.violation_rate(), None);

        let mut w = SlidingWindow::new(4, 1).unwrap();
        w.push(slot(0, 0, 1, true), &[0.0]).unwrap();
        let c = w.counts()[0];
        assert_eq!(c.selection_rate(), Some(1.0));
        assert_eq!(c.tpr(), None, "no label-positives yet");
        assert_eq!(c.violation_rate(), Some(1.0));
    }
}
