//! The two-plane sliding window: a decision ring over scored tuples, a
//! label ring over joined `(decision, label)` outcome pairs, and a bounded
//! pending-join index bridging them — all with O(1) windowed counters.
//!
//! Real serving receives ground truth late or never, so the window splits
//! the fairness state into two planes:
//!
//! * **Decision plane** — everything observable the moment a tuple is
//!   served: the tuple's features, group, decision, and conformance
//!   verdict. It lives in the fixed-capacity decision ring and backs the
//!   selection-rate metrics (DI/DP) and the Page–Hinkley violation series.
//! * **Label plane** — everything that needs ground truth: TPR/FPR and the
//!   equal-opportunity gap. It lives in the label ring, which holds the
//!   most recent `capacity` *joined* `(group, decision, label)` pairs — a
//!   pair joins when its label arrives, either at ingest (a labeled tuple)
//!   or later through [`SlidingWindow::feedback`].
//!
//! Labels may outlive their tuple's stay in the decision ring: a slot
//! evicted while still unlabeled moves its join key into the bounded
//! **pending-join index**, so late feedback still lands in the label plane.
//! The index evicts its oldest entry when full and counts what it dropped
//! ([`JoinStats::pending_evicted`]) — labels for dropped entries can never
//! join and are counted as [`JoinStats::unmatched`].
//!
//! Every fairness monitor in this crate reads from [`GroupCounts`], which
//! the two rings maintain incrementally: one increment for an arriving
//! entry, one decrement for an evicted one. No monitor ever scans a ring —
//! that is the invariant that keeps per-tuple ingestion O(1)
//! (property-checked in this module's tests and load-tested by the
//! `stream_ingest` benchmark). Joins are O(log n): an id lookup is a
//! binary search over the decision ring (slot ids are strictly
//! increasing) or a `BTreeMap` probe of the pending index.
//!
//! Features live in **one ring arena** with stride `dim` — slot `i`'s
//! vector is `arena[i*dim..(i+1)*dim]` — so pushing a tuple copies `dim`
//! floats into place instead of boxing a fresh heap allocation per tuple.
//! Once the ring has wrapped, `push` never allocates again.
//!
//! In the engine split, the window belongs to the [`Monitor`] half: it is
//! plain owned data (no handles, no interior mutability), which is what
//! lets a monitor move to the async engine's background thread — and be
//! cloned for quiescent-point checkpoints — without any synchronisation
//! here.
//!
//! [`Monitor`]: crate::Monitor

use crate::{Result, StreamError};
use std::collections::BTreeMap;

/// The per-tuple metadata retained in the decision ring (the feature
/// vector lives in the window's arena, not here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SlotMeta {
    /// The tuple's stream id (its position in ingestion order) — the join
    /// key label feedback addresses.
    pub id: u64,
    /// Group cell id, `0..K` (the classic binary layout is 0 = majority
    /// `W`, 1 = minority `U`).
    pub group: u8,
    /// Ground truth, if it has arrived — at ingest for a labeled tuple, or
    /// later through a feedback join. `None` while the label is pending.
    pub label: Option<u8>,
    /// The served decision `ŷ`.
    pub decision: u8,
    /// Whether the tuple violated its (group, decision) reference
    /// constraints (decision plane: computable before any label arrives).
    pub violated: bool,
}

/// One joined outcome pair in the label ring: the ground truth that
/// arrived for a served decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LabelSlot {
    /// Group id of the joined tuple.
    pub group: u8,
    /// The served decision `ŷ`.
    pub decision: u8,
    /// The joined ground-truth label.
    pub label: u8,
}

/// A decision awaiting its label after eviction from the decision ring —
/// one entry of the pending-join index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PendingLabel {
    /// The tuple's stream id (the join key).
    pub id: u64,
    /// Group id of the evicted tuple.
    pub group: u8,
    /// The served decision `ŷ`.
    pub decision: u8,
}

/// Windowed tallies for one group across both planes, every one maintained
/// in O(1) per event.
///
/// Decision-plane fields (`total`, `selected`, `violations`) track the
/// decision ring and are current the moment a tuple is served;
/// label-plane fields (`labeled`, `label_positive`, `true_positive`,
/// `false_positive`) track the label ring and advance only as ground truth
/// joins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupCounts {
    /// Tuples of this group currently in the decision ring.
    pub total: u64,
    /// Tuples with decision 1 (selected).
    pub selected: u64,
    /// Tuples violating their reference conformance constraints.
    pub violations: u64,
    /// Joined `(decision, label)` pairs currently in the label ring.
    pub labeled: u64,
    /// Joined pairs with ground-truth label 1.
    pub label_positive: u64,
    /// Selected among label-positive pairs (windowed true positives).
    pub true_positive: u64,
    /// Selected among label-negative pairs (windowed false positives).
    pub false_positive: u64,
}

impl GroupCounts {
    /// Fold a decision-ring slot in (`sign = 1`) or out (`sign = -1`).
    fn apply_decision(&mut self, slot: &SlotMeta, sign: i64) {
        let add = |c: &mut u64| {
            *c = c.wrapping_add_signed(sign);
        };
        add(&mut self.total);
        if slot.decision == 1 {
            add(&mut self.selected);
        }
        if slot.violated {
            add(&mut self.violations);
        }
    }

    /// Fold a label-ring pair in (`sign = 1`) or out (`sign = -1`).
    fn apply_label(&mut self, pair: &LabelSlot, sign: i64) {
        let add = |c: &mut u64| {
            *c = c.wrapping_add_signed(sign);
        };
        add(&mut self.labeled);
        if pair.label == 1 {
            add(&mut self.label_positive);
            if pair.decision == 1 {
                add(&mut self.true_positive);
            }
        } else if pair.decision == 1 {
            add(&mut self.false_positive);
        }
    }

    /// Fold another group's tallies into this one. The counters are all
    /// additive, which is what makes cross-shard snapshot merging exact.
    pub fn merge(&mut self, other: &GroupCounts) {
        self.total += other.total;
        self.selected += other.selected;
        self.violations += other.violations;
        self.labeled += other.labeled;
        self.label_positive += other.label_positive;
        self.true_positive += other.true_positive;
        self.false_positive += other.false_positive;
    }

    /// Windowed selection rate `P(ŷ=1 | g)` (decision plane).
    pub fn selection_rate(&self) -> Option<f64> {
        (self.total > 0).then(|| self.selected as f64 / self.total as f64)
    }

    /// Windowed conformance-violation rate (decision plane).
    pub fn violation_rate(&self) -> Option<f64> {
        (self.total > 0).then(|| self.violations as f64 / self.total as f64)
    }

    /// Windowed true-positive rate `P(ŷ=1 | y=1, g)` over joined pairs.
    /// `None` until at least one positive label has joined — a cell with
    /// decisions but no ground truth yet has no TPR, not a TPR of 0.
    pub fn tpr(&self) -> Option<f64> {
        (self.label_positive > 0).then(|| self.true_positive as f64 / self.label_positive as f64)
    }

    /// Windowed false-positive rate `P(ŷ=1 | y=0, g)` over joined pairs.
    /// `None` until at least one negative label has joined.
    pub fn fpr(&self) -> Option<f64> {
        let negatives = self.labeled - self.label_positive;
        (negatives > 0).then(|| self.false_positive as f64 / negatives as f64)
    }
}

/// How one label-feedback record resolved against the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelJoin {
    /// The tuple was still in the decision ring; its slot is now labeled
    /// and the pair entered the label plane.
    Joined,
    /// The tuple had rotated out of the decision ring but its join key was
    /// retained in the pending index; the pair entered the label plane.
    JoinedLate,
    /// The tuple already had a label (at ingest or from earlier feedback);
    /// the record was ignored.
    Duplicate,
    /// The tuple is unknown: its pending entry was evicted, it was dropped
    /// before monitoring, or the id was never issued here.
    Unmatched,
}

/// Cumulative join/drop observability counters for the label plane. Not
/// part of any checkpoint (like the async engine's
/// [`DropCounters`](crate::DropCounters), they reset to zero on restore).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Labels joined into the label plane (at ingest or via feedback).
    pub joined: u64,
    /// Subset of `joined` that arrived after the tuple left the decision
    /// ring (served from the pending index).
    pub joined_late: u64,
    /// Feedback records for already-labeled tuples, ignored.
    pub duplicates: u64,
    /// Feedback records whose tuple could not be found (evicted from the
    /// pending index, dropped before monitoring, or never issued).
    pub unmatched: u64,
    /// Pending-index entries evicted to respect the configured bound —
    /// their labels, should they ever arrive, will count as `unmatched`.
    pub pending_evicted: u64,
}

/// Human-readable one-liner, e.g.
/// `joined=1820 late=301 dup=0 unmatched=12 evicted=3`.
impl std::fmt::Display for JoinStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "joined={} late={} dup={} unmatched={} evicted={}",
            self.joined, self.joined_late, self.duplicates, self.unmatched, self.pending_evicted
        )
    }
}

/// The two-plane sliding window: a decision-metadata ring plus a
/// stride-`dim` feature arena, a label ring of joined outcome pairs, and
/// the bounded pending-join index — with per-cell counters over both
/// planes. The group dimension K is a runtime parameter: the counter
/// bank is K-length, and `push` rejects `group >= K` with a typed
/// [`StreamError::BadGroup`].
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    meta: Vec<SlotMeta>,
    arena: Vec<f64>,
    dim: usize,
    capacity: usize,
    head: usize,
    len: usize,
    /// Label ring: the most recent `capacity` joined pairs.
    labels: Vec<LabelSlot>,
    label_head: usize,
    label_len: usize,
    /// Evicted-but-unlabeled decisions awaiting feedback, keyed by tuple
    /// id (ids are monotonic, so iteration order is eviction order).
    pending: BTreeMap<u64, (u8, u8)>,
    pending_capacity: usize,
    joins: JoinStats,
    /// Group-cell count K (the length of `counts`).
    groups: usize,
    counts: Vec<GroupCounts>,
}

impl SlidingWindow {
    /// A window retaining the most recent `capacity` tuples of `dim`
    /// features each, remembering up to `pending_capacity` evicted
    /// unlabeled decisions for late label joins, with `groups` group
    /// cells (K ≥ 1; group ids are `u8`, so K ≤ 256).
    pub fn new(
        capacity: usize,
        dim: usize,
        pending_capacity: usize,
        groups: usize,
    ) -> Result<Self> {
        if capacity == 0 {
            return Err(StreamError::EmptyWindow);
        }
        if groups == 0 || groups > 256 {
            return Err(StreamError::Schema(format!(
                "the window needs 1..=256 group cells, not {groups}"
            )));
        }
        Ok(SlidingWindow {
            meta: Vec::with_capacity(capacity),
            arena: Vec::with_capacity(capacity.saturating_mul(dim)),
            dim,
            capacity,
            head: 0,
            len: 0,
            labels: Vec::new(),
            label_head: 0,
            label_len: 0,
            pending: BTreeMap::new(),
            pending_capacity,
            joins: JoinStats::default(),
            groups,
            counts: vec![GroupCounts::default(); groups],
        })
    }

    /// Insert a scored tuple, evicting the oldest when full. A labeled
    /// tuple joins the label plane immediately; an evicted unlabeled slot
    /// moves its join key into the pending index. O(log pending) worst
    /// case, allocation-free in the rings once they have filled.
    pub fn push(&mut self, meta: SlotMeta, features: &[f64]) -> Result<()> {
        let g = meta.group as usize;
        if g >= self.groups {
            return Err(StreamError::BadGroup(meta.group));
        }
        if let Some(label) = meta.label {
            if label >= 2 {
                return Err(StreamError::BadLabel(label));
            }
        }
        if features.len() != self.dim {
            return Err(StreamError::Schema(format!(
                "tuple has {} features; the window stride is {}",
                features.len(),
                self.dim
            )));
        }
        if let Some(newest) = self.newest_id() {
            if meta.id <= newest {
                return Err(StreamError::Schema(format!(
                    "tuple id {} is not newer than the window's newest id {newest}",
                    meta.id
                )));
            }
        }
        if let Some(label) = meta.label {
            // Immediate join: the at-ingest label is just a feedback that
            // needed no waiting.
            self.push_label(LabelSlot {
                group: meta.group,
                decision: meta.decision,
                label,
            });
            self.joins.joined += 1;
        }
        self.push_decision_only(meta, features)
    }

    /// The decision-ring half of [`SlidingWindow::push`], with no label
    /// side effects — also the checkpoint-replay path, where the label
    /// ring is restored separately.
    fn push_decision_only(&mut self, meta: SlotMeta, features: &[f64]) -> Result<()> {
        let g = meta.group as usize;
        if self.len < self.capacity {
            self.counts[g].apply_decision(&meta, 1);
            self.meta.push(meta);
            self.arena.extend_from_slice(features);
            self.len += 1;
            // head stays 0 until the ring wraps.
            return Ok(());
        }
        let evicted = self.meta[self.head];
        self.counts[evicted.group as usize].apply_decision(&evicted, -1);
        if evicted.label.is_none() {
            self.remember_pending(evicted);
        }
        self.counts[g].apply_decision(&meta, 1);
        self.meta[self.head] = meta;
        self.arena[self.head * self.dim..(self.head + 1) * self.dim].copy_from_slice(features);
        self.head = (self.head + 1) % self.capacity;
        Ok(())
    }

    /// Park an evicted unlabeled decision in the pending index, evicting
    /// the oldest entry (and counting it) when the bound is reached.
    fn remember_pending(&mut self, evicted: SlotMeta) {
        if self.pending_capacity == 0 {
            self.joins.pending_evicted += 1;
            return;
        }
        while self.pending.len() >= self.pending_capacity {
            self.pending.pop_first();
            self.joins.pending_evicted += 1;
        }
        self.pending
            .insert(evicted.id, (evicted.group, evicted.decision));
    }

    /// Push one joined pair into the label ring, evicting the oldest pair
    /// when full.
    fn push_label(&mut self, pair: LabelSlot) {
        self.counts[pair.group as usize].apply_label(&pair, 1);
        if self.label_len < self.capacity {
            self.labels.push(pair);
            self.label_len += 1;
            return;
        }
        let evicted = self.labels[self.label_head];
        self.counts[evicted.group as usize].apply_label(&evicted, -1);
        self.labels[self.label_head] = pair;
        self.label_head = (self.label_head + 1) % self.capacity;
    }

    /// Join one late label by tuple id: an in-ring slot is labeled in
    /// place, an evicted-but-pending decision is served from the index,
    /// and anything else is counted, never an error — feedback for a
    /// forgotten tuple is an expected operational event.
    ///
    /// Callers validate `label` (binary) and the id's plausibility (ids
    /// never issued are *their* callers' bugs); the window only resolves.
    pub fn feedback(&mut self, id: u64, label: u8) -> LabelJoin {
        if let Some(pos) = self.position_of(id) {
            let slot = &mut self.meta[pos];
            if slot.label.is_some() {
                self.joins.duplicates += 1;
                return LabelJoin::Duplicate;
            }
            slot.label = Some(label);
            let pair = LabelSlot {
                group: slot.group,
                decision: slot.decision,
                label,
            };
            self.push_label(pair);
            self.joins.joined += 1;
            return LabelJoin::Joined;
        }
        if let Some((group, decision)) = self.pending.remove(&id) {
            self.push_label(LabelSlot {
                group,
                decision,
                label,
            });
            self.joins.joined += 1;
            self.joins.joined_late += 1;
            return LabelJoin::JoinedLate;
        }
        // Anything older than the window that is not pending was either
        // evicted from the pending index or dropped before monitoring;
        // ids newer than the window were never observed here (e.g. a
        // record dropped under backpressure). Both resolve as unmatched.
        self.joins.unmatched += 1;
        LabelJoin::Unmatched
    }

    /// Physical index of the slot holding tuple `id`, if it is still in
    /// the decision ring. O(log len): slot ids are strictly increasing in
    /// ring order.
    fn position_of(&self, id: u64) -> Option<usize> {
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.meta[(self.head + mid) % self.capacity].id < id {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == self.len {
            return None;
        }
        let idx = (self.head + lo) % self.capacity;
        (self.meta[idx].id == id).then_some(idx)
    }

    /// The oldest retained tuple's id.
    fn oldest_id(&self) -> Option<u64> {
        (self.len > 0).then(|| self.meta[self.head].id)
    }

    /// The newest retained tuple's id.
    fn newest_id(&self) -> Option<u64> {
        (self.len > 0).then(|| self.meta[(self.head + self.len - 1) % self.capacity].id)
    }

    /// Tuples currently retained in the decision ring.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the decision ring holds no tuples yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum retained tuples (shared by both rings).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Features per tuple (the arena stride).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Joined pairs currently retained in the label ring.
    pub fn labeled_len(&self) -> usize {
        self.label_len
    }

    /// Evicted decisions currently awaiting their labels.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The configured bound on the pending-join index.
    pub fn pending_capacity(&self) -> usize {
        self.pending_capacity
    }

    /// Cumulative join/drop counters (reset on restore, like every
    /// observability counter).
    pub fn join_stats(&self) -> JoinStats {
        self.joins
    }

    /// The group-cell count K this window was built with.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// The windowed per-cell counters (K-length, index = group id),
    /// covering both planes.
    pub fn counts(&self) -> &[GroupCounts] {
        &self.counts
    }

    /// Iterate retained tuples as `(meta, features)`, oldest first.
    /// (`head` is 0 until the ring wraps, so the modular walk covers both
    /// the filling and the wrapped regime.)
    pub fn iter(&self) -> impl Iterator<Item = (SlotMeta, &[f64])> {
        (0..self.len).map(move |i| {
            let idx = (self.head + i) % self.capacity;
            (
                self.meta[idx],
                &self.arena[idx * self.dim..(idx + 1) * self.dim],
            )
        })
    }

    /// Iterate the label ring's joined pairs, oldest join first.
    pub fn iter_labels(&self) -> impl Iterator<Item = LabelSlot> + '_ {
        (0..self.label_len).map(move |i| self.labels[(self.label_head + i) % self.capacity])
    }

    /// Snapshot the window's logical contents for checkpointing: capacity,
    /// stride, the retained tuples **oldest-first**, the label ring
    /// **oldest-join-first**, and the pending-join index in id order. The
    /// physical ring offsets are not recorded — they are unobservable
    /// (iteration order, eviction order, and counters are all
    /// phase-independent), so [`SlidingWindow::from_state`] repacks the
    /// slots from phase 0.
    pub fn state(&self) -> WindowState {
        let mut meta = Vec::with_capacity(self.len);
        let mut features = Vec::with_capacity(self.len * self.dim);
        for (m, f) in self.iter() {
            meta.push(m);
            features.extend_from_slice(f);
        }
        WindowState {
            capacity: self.capacity,
            dim: self.dim,
            meta,
            features,
            labels: self.iter_labels().collect(),
            pending: self
                .pending
                .iter()
                .map(|(&id, &(group, decision))| PendingLabel {
                    id,
                    group,
                    decision,
                })
                .collect(),
        }
    }

    /// Rebuild a window from a snapshot by replaying its slots, label
    /// pairs, and pending entries through the incremental paths — the
    /// counters are recomputed rather than trusted, so a tampered snapshot
    /// cannot desynchronise them. Join counters restart at zero (they are
    /// observability state, not monitoring state).
    ///
    /// # Errors
    /// Rejects zero capacities, more slots (or joined pairs, or pending
    /// entries) than their bounds, feature buffers that disagree with
    /// `len × dim`, non-monotonic ids, slots with out-of-range groups
    /// (`>= groups`) or non-binary labels, and pending entries that
    /// overlap the decision ring — a corrupted checkpoint fails loudly,
    /// it never half-loads.
    pub fn from_state(state: &WindowState, pending_capacity: usize, groups: usize) -> Result<Self> {
        if state.meta.len() > state.capacity {
            return Err(StreamError::Checkpoint(format!(
                "window snapshot holds {} slots but capacity is {}",
                state.meta.len(),
                state.capacity
            )));
        }
        if state.features.len() != state.meta.len() * state.dim {
            return Err(StreamError::Checkpoint(format!(
                "window snapshot has {} feature values for {} slots of stride {}",
                state.features.len(),
                state.meta.len(),
                state.dim
            )));
        }
        if state.labels.len() > state.capacity {
            return Err(StreamError::Checkpoint(format!(
                "label ring snapshot holds {} pairs but capacity is {}",
                state.labels.len(),
                state.capacity
            )));
        }
        if state.pending.len() > pending_capacity {
            return Err(StreamError::Checkpoint(format!(
                "pending-join snapshot holds {} entries but the bound is {pending_capacity}",
                state.pending.len()
            )));
        }
        let mut window = SlidingWindow::new(state.capacity, state.dim, pending_capacity, groups)?;
        let mut last_id: Option<u64> = None;
        for (i, meta) in state.meta.iter().enumerate() {
            // The replay bypasses `push` (the label ring restores
            // separately below — a slot labeled via late feedback has no
            // label-ring pairing with its own push, so the pairing cannot
            // be re-derived), so it must repeat push's validation: an
            // in-range group, a binary label, and strictly increasing ids
            // (the invariant the feedback binary search relies on).
            if meta.group as usize >= groups {
                return Err(StreamError::BadGroup(meta.group));
            }
            if let Some(label) = meta.label {
                if label >= 2 {
                    return Err(StreamError::BadLabel(label));
                }
            }
            if last_id.is_some_and(|p| meta.id <= p) {
                return Err(StreamError::Checkpoint(format!(
                    "window slot ids must be strictly increasing (id {} follows {})",
                    meta.id,
                    last_id.expect("checked")
                )));
            }
            last_id = Some(meta.id);
            window
                .push_decision_only(*meta, &state.features[i * state.dim..(i + 1) * state.dim])?;
        }
        for pair in &state.labels {
            if pair.group as usize >= groups {
                return Err(StreamError::BadGroup(pair.group));
            }
            if pair.label >= 2 {
                return Err(StreamError::BadLabel(pair.label));
            }
            window.push_label(*pair);
        }
        let oldest = window.oldest_id();
        let mut last_pending: Option<u64> = None;
        for entry in &state.pending {
            if entry.group as usize >= groups {
                return Err(StreamError::BadGroup(entry.group));
            }
            if entry.decision >= 2 {
                return Err(StreamError::Checkpoint(format!(
                    "pending entry {} has non-binary decision {}",
                    entry.id, entry.decision
                )));
            }
            if last_pending.is_some_and(|p| entry.id <= p) {
                return Err(StreamError::Checkpoint(
                    "pending-join ids must be strictly increasing".into(),
                ));
            }
            if oldest.is_some_and(|o| entry.id >= o) {
                return Err(StreamError::Checkpoint(format!(
                    "pending entry {} overlaps the decision ring (oldest retained id {})",
                    entry.id,
                    oldest.expect("checked")
                )));
            }
            last_pending = Some(entry.id);
            window
                .pending
                .insert(entry.id, (entry.group, entry.decision));
        }
        // Replays are restores, not live joins: counters restart at zero.
        window.joins = JoinStats::default();
        Ok(window)
    }
}

/// The serialisable logical contents of a [`SlidingWindow`] (see
/// [`SlidingWindow::state`]). Feature values are stored flat, stride
/// `dim`, oldest slot first.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WindowState {
    /// Maximum retained tuples (shared by both rings).
    pub capacity: usize,
    /// Features per tuple.
    pub dim: usize,
    /// Retained slot metadata, oldest first.
    pub meta: Vec<SlotMeta>,
    /// Flat feature buffer (`meta.len() × dim` values), oldest slot first.
    pub features: Vec<f64>,
    /// The label ring's joined pairs, oldest join first.
    pub labels: Vec<LabelSlot>,
    /// The pending-join index, in ascending id order.
    pub pending: Vec<PendingLabel>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(id: u64, group: u8, label: Option<u8>, decision: u8, violated: bool) -> SlotMeta {
        SlotMeta {
            id,
            group,
            label,
            decision,
            violated,
        }
    }

    /// Recompute the counters by scanning both rings — the O(n) ground
    /// truth the O(1) incremental path must match.
    fn brute_counts(w: &SlidingWindow) -> Vec<GroupCounts> {
        let mut counts = vec![GroupCounts::default(); w.groups()];
        for (m, _) in w.iter() {
            counts[m.group as usize].apply_decision(&m, 1);
        }
        for pair in w.iter_labels() {
            counts[pair.group as usize].apply_label(&pair, 1);
        }
        counts
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(matches!(
            SlidingWindow::new(0, 2, 8, 2),
            Err(StreamError::EmptyWindow)
        ));
    }

    #[test]
    fn bad_group_and_label_are_rejected() {
        let mut w = SlidingWindow::new(4, 2, 8, 2).unwrap();
        assert!(matches!(
            w.push(slot(0, 2, None, 0, false), &[0.0, 0.0]),
            Err(StreamError::BadGroup(2))
        ));
        assert!(matches!(
            w.push(slot(0, 0, Some(9), 0, false), &[0.0, 0.0]),
            Err(StreamError::BadLabel(9))
        ));
    }

    #[test]
    fn wrong_stride_is_rejected() {
        let mut w = SlidingWindow::new(4, 2, 8, 2).unwrap();
        assert!(matches!(
            w.push(slot(0, 0, None, 0, false), &[1.0, 2.0, 3.0]),
            Err(StreamError::Schema(_))
        ));
        assert!(w.is_empty());
    }

    #[test]
    fn non_monotonic_ids_are_rejected() {
        let mut w = SlidingWindow::new(4, 1, 8, 2).unwrap();
        w.push(slot(5, 0, None, 0, false), &[0.0]).unwrap();
        assert!(matches!(
            w.push(slot(5, 0, None, 0, false), &[0.0]),
            Err(StreamError::Schema(_))
        ));
        assert!(matches!(
            w.push(slot(3, 0, None, 0, false), &[0.0]),
            Err(StreamError::Schema(_))
        ));
        // Gaps are fine (records dropped under backpressure skip ids).
        w.push(slot(9, 0, None, 0, false), &[0.0]).unwrap();
    }

    #[test]
    fn counters_match_brute_force_through_wraparound() {
        let mut w = SlidingWindow::new(7, 2, 16, 2).unwrap();
        for i in 0..50u32 {
            let g = (i % 3 == 0) as u8;
            let y = (i % 2) as u8;
            let d = (i % 5 < 3) as u8;
            let v = i % 4 == 1;
            // Mixed regime: every third tuple arrives unlabeled.
            let label = (i % 3 != 2).then_some(y);
            w.push(
                slot(u64::from(i), g, label, d, v),
                &[f64::from(i), f64::from(g)],
            )
            .unwrap();
            assert_eq!(w.counts(), &brute_counts(&w)[..], "after push {i}");
            assert_eq!(w.len(), (i as usize + 1).min(7));
        }
        // Join some of the outstanding labels, late and in-window alike.
        for id in [2u64, 5, 44, 47] {
            w.feedback(id, 1);
            assert_eq!(w.counts(), &brute_counts(&w)[..], "after feedback {id}");
        }
    }

    #[test]
    fn eviction_is_fifo_and_arena_tracks_features() {
        let mut w = SlidingWindow::new(3, 1, 8, 2).unwrap();
        for i in 0..5u8 {
            w.push(slot(u64::from(i), 0, Some(0), 0, false), &[f64::from(i)])
                .unwrap();
        }
        let order: Vec<f64> = w.iter().map(|(_, f)| f[0]).collect();
        assert_eq!(order, vec![2.0, 3.0, 4.0]);
        // The arena never grows past capacity * dim.
        assert_eq!(w.arena.len(), 3);
        // Labeled slots leave nothing pending.
        assert_eq!(w.pending_len(), 0);
    }

    #[test]
    fn zero_dim_windows_iterate_empty_feature_slices() {
        // A degenerate schema with no attributes still counts correctly.
        let mut w = SlidingWindow::new(2, 0, 8, 2).unwrap();
        w.push(slot(0, 0, Some(1), 1, false), &[]).unwrap();
        w.push(slot(1, 1, Some(0), 0, true), &[]).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.counts()[0].selected, 1);
        assert_eq!(w.counts()[1].violations, 1);
    }

    #[test]
    fn merge_is_componentwise_addition() {
        let mut a = GroupCounts {
            total: 5,
            selected: 3,
            violations: 4,
            labeled: 3,
            label_positive: 2,
            true_positive: 1,
            false_positive: 2,
        };
        let b = GroupCounts {
            total: 7,
            selected: 1,
            violations: 2,
            labeled: 6,
            label_positive: 6,
            true_positive: 1,
            false_positive: 0,
        };
        a.merge(&b);
        assert_eq!(a.total, 12);
        assert_eq!(a.selected, 4);
        assert_eq!(a.violations, 6);
        assert_eq!(a.labeled, 9);
        assert_eq!(a.label_positive, 8);
        assert_eq!(a.true_positive, 2);
        assert_eq!(a.false_positive, 2);
    }

    #[test]
    fn rates_handle_empty_denominators() {
        let c = GroupCounts::default();
        assert_eq!(c.selection_rate(), None);
        assert_eq!(c.tpr(), None);
        assert_eq!(c.fpr(), None);
        assert_eq!(c.violation_rate(), None);

        let mut w = SlidingWindow::new(4, 1, 8, 2).unwrap();
        w.push(slot(0, 0, None, 1, true), &[0.0]).unwrap();
        let c = w.counts()[0];
        assert_eq!(c.selection_rate(), Some(1.0));
        assert_eq!(c.tpr(), None, "no labels joined yet");
        assert_eq!(c.fpr(), None, "no labels joined yet");
        assert_eq!(c.violation_rate(), Some(1.0));

        // The join flips the label plane on without touching decisions.
        assert_eq!(w.feedback(0, 0), LabelJoin::Joined);
        let c = w.counts()[0];
        assert_eq!(c.tpr(), None, "still no positive labels");
        assert_eq!(c.fpr(), Some(1.0));
        assert_eq!(c.selection_rate(), Some(1.0));
    }

    #[test]
    fn feedback_joins_late_through_the_pending_index() {
        let mut w = SlidingWindow::new(2, 1, 2, 2).unwrap();
        for i in 0..4u64 {
            w.push(slot(i, (i % 2) as u8, None, 1, false), &[0.0])
                .unwrap();
        }
        // Ids 0 and 1 rotated out unlabeled; both are pending.
        assert_eq!(w.pending_len(), 2);
        assert_eq!(w.feedback(0, 1), LabelJoin::JoinedLate);
        assert_eq!(w.feedback(1, 0), LabelJoin::JoinedLate);
        assert_eq!(w.pending_len(), 0);
        assert_eq!(w.counts()[0].tpr(), Some(1.0));
        assert_eq!(w.counts()[1].fpr(), Some(1.0));
        // In-window joins still work alongside.
        assert_eq!(w.feedback(3, 1), LabelJoin::Joined);
        assert_eq!(w.feedback(3, 1), LabelJoin::Duplicate);
        assert_eq!(w.feedback(100, 1), LabelJoin::Unmatched);
        let stats = w.join_stats();
        assert_eq!(stats.joined, 3);
        assert_eq!(stats.joined_late, 2);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.unmatched, 1);
    }

    #[test]
    fn pending_index_is_bounded_and_counts_evictions() {
        let mut w = SlidingWindow::new(1, 1, 2, 2).unwrap();
        for i in 0..5u64 {
            w.push(slot(i, 0, None, 1, false), &[0.0]).unwrap();
        }
        // Ids 0..=3 were evicted unlabeled; the bound keeps only 2 and 3.
        assert_eq!(w.pending_len(), 2);
        assert_eq!(w.join_stats().pending_evicted, 2);
        assert_eq!(w.feedback(0, 1), LabelJoin::Unmatched);
        assert_eq!(w.feedback(2, 1), LabelJoin::JoinedLate);

        // A zero-capacity index drops every unlabeled eviction.
        let mut w = SlidingWindow::new(1, 1, 0, 2).unwrap();
        w.push(slot(0, 0, None, 1, false), &[0.0]).unwrap();
        w.push(slot(1, 0, None, 1, false), &[0.0]).unwrap();
        assert_eq!(w.pending_len(), 0);
        assert_eq!(w.join_stats().pending_evicted, 1);
    }

    #[test]
    fn label_ring_outlives_decision_eviction() {
        // A joined pair stays in the label plane even after its tuple
        // leaves the decision ring.
        let mut w = SlidingWindow::new(2, 1, 4, 2).unwrap();
        w.push(slot(0, 1, Some(1), 1, false), &[0.0]).unwrap();
        w.push(slot(1, 0, None, 0, false), &[0.0]).unwrap();
        w.push(slot(2, 0, None, 0, false), &[0.0]).unwrap();
        assert_eq!(w.counts()[1].total, 0, "tuple 0 left the decision ring");
        assert_eq!(w.counts()[1].tpr(), Some(1.0), "its joined pair remains");
    }

    #[test]
    fn state_round_trips_both_planes_and_pending() {
        let mut w = SlidingWindow::new(3, 1, 4, 2).unwrap();
        for i in 0..6u64 {
            let label = (i % 2 == 0).then_some((i % 4 == 0) as u8);
            w.push(slot(i, (i % 2) as u8, label, 1, i % 3 == 0), &[i as f64])
                .unwrap();
        }
        w.feedback(1, 1); // pending by now → late join
        let state = w.state();
        let restored = SlidingWindow::from_state(&state, 4, 2).unwrap();
        assert_eq!(restored.counts(), w.counts());
        assert_eq!(restored.pending_len(), w.pending_len());
        assert_eq!(restored.labeled_len(), w.labeled_len());
        assert_eq!(restored.state(), state, "restate is a fixed point");
        // Counters reset on restore; behaviour does not.
        assert_eq!(restored.join_stats(), JoinStats::default());
    }

    #[test]
    fn corrupted_states_are_rejected() {
        let mut w = SlidingWindow::new(3, 1, 4, 2).unwrap();
        for i in 0..5u64 {
            w.push(slot(i, 0, None, 1, false), &[i as f64]).unwrap();
        }
        let good = w.state();

        let mut overlap = good.clone();
        overlap.pending[0].id = overlap.meta[0].id; // collides with the ring
        assert!(matches!(
            SlidingWindow::from_state(&overlap, 4, 2),
            Err(StreamError::Checkpoint(_))
        ));

        let mut too_many = good.clone();
        too_many.pending.push(PendingLabel {
            id: 1_000,
            group: 0,
            decision: 0,
        });
        assert!(SlidingWindow::from_state(&too_many, 2, 2).is_err());

        let mut bad_pair = good.clone();
        bad_pair.labels.push(LabelSlot {
            group: 0,
            decision: 1,
            label: 7,
        });
        assert!(matches!(
            SlidingWindow::from_state(&bad_pair, 4, 2),
            Err(StreamError::BadLabel(7))
        ));

        let mut unsorted = good.clone();
        unsorted.pending.reverse();
        assert!(SlidingWindow::from_state(&unsorted, 4, 2).is_err());

        // Replay repeats push's validation: a non-binary slot group is a
        // typed error (not an out-of-bounds panic), and non-monotonic
        // slot ids — which would break the feedback binary search — are
        // rejected loudly.
        let mut bad_group = good.clone();
        bad_group.meta[1].group = 5;
        assert!(matches!(
            SlidingWindow::from_state(&bad_group, 4, 2),
            Err(StreamError::BadGroup(5))
        ));

        let mut unsorted_ids = good.clone();
        unsorted_ids.meta.swap(0, 1);
        assert!(matches!(
            SlidingWindow::from_state(&unsorted_ids, 4, 2),
            Err(StreamError::Checkpoint(_))
        ));

        let mut duplicate_ids = good;
        duplicate_ids.meta[1].id = duplicate_ids.meta[0].id;
        assert!(matches!(
            SlidingWindow::from_state(&duplicate_ids, 4, 2),
            Err(StreamError::Checkpoint(_))
        ));
    }
}
