//! Supervision policy for the self-healing stream engines: retry
//! budgets, deterministic exponential backoff, and per-shard health.
//!
//! Failure handling in this crate is *policy-driven*, and every policy
//! knob lives here so the chaos suite can pin recovery behaviour
//! byte-for-byte:
//!
//! * [`RepairConfig`] — the retry budget, backoff, and wall-clock
//!   timeout for on-alert retraining. Exhausting it flips the engine
//!   into **degraded mode** (stale model keeps serving, flag visible in
//!   snapshots/metrics/telemetry) instead of surfacing an error string
//!   and forgetting.
//! * [`SupervisorConfig`] — how the async engines respawn a dead
//!   monitor thread: bounded restart attempts, backoff between
//!   respawns, and how often the monitor publishes the coherent clone
//!   the supervisor restores from.
//! * [`Backoff`] — the shared exponential-backoff schedule. Jitter is
//!   drawn from a seeded [`rand::rngs::StdRng`], so two supervisors with
//!   the same seed sleep the same schedule — a requirement for
//!   reproducing a recovery timeline under test.
//! * [`ShardHealth`] — the tri-state the sharded engines report per
//!   shard, replacing the old all-or-nothing `StreamError::Async`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Liveness of one monitored engine (or one shard of a sharded engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardHealth {
    /// The monitor thread is running and draining its queue.
    Live,
    /// The monitor thread died; the supervisor is backing off before the
    /// next respawn (or about to respawn). Ingest keeps serving — tuples
    /// scored now are counted into the monitoring gap.
    Restarting,
    /// The restart budget is exhausted. Ingest returns
    /// [`StreamError::Async`](crate::StreamError::Async) permanently.
    Dead,
}

impl std::fmt::Display for ShardHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardHealth::Live => write!(f, "live"),
            ShardHealth::Restarting => write!(f, "restarting"),
            ShardHealth::Dead => write!(f, "dead"),
        }
    }
}

/// Retry policy for on-alert repairs (the `RetrainPolicy::OnAlert`
/// path). Serialised inside [`StreamConfig`](crate::StreamConfig), so a
/// checkpointed engine restores with the same recovery behaviour.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RepairConfig {
    /// Attempts per repair episode before giving up (≥ 1; 0 is treated
    /// as 1). One alert batch triggers one episode.
    pub max_attempts: u32,
    /// Base delay between attempts, in milliseconds (attempt `k` waits
    /// about `base · 2^k`, jittered).
    pub backoff_base_ms: u64,
    /// Ceiling on any single backoff delay, in milliseconds.
    pub backoff_max_ms: u64,
    /// Wall-clock budget for the whole episode, in milliseconds. Once
    /// elapsed, no further attempts are made even if the attempt budget
    /// remains.
    pub timeout_ms: u64,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
    /// Enable the serve-time repair escalation ladder
    /// ([`RepairTier`](crate::RepairTier)): threshold nudge → DiffFair
    /// projection → full retrain. Off by default — the legacy
    /// retrain-on-alert path is then byte-identical to earlier releases.
    pub ladder: bool,
    /// Unhealthy batches tolerated on one ladder rung before escalating
    /// to the next (≥ 1; 0 is treated as 1).
    pub tier_patience: u32,
    /// Margin-threshold shift applied to the disadvantaged cell per
    /// unhealthy batch while tier 1 is active.
    pub nudge_step: f64,
    /// Clamp on the absolute per-cell threshold magnitude accumulated by
    /// tier-1 nudges.
    pub nudge_max: f64,
    /// Consecutive floor-passing batches before an open ladder episode
    /// closes as recovered (≥ 1; 0 is treated as 1).
    pub recovery_hold: u32,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            max_attempts: 3,
            backoff_base_ms: 10,
            backoff_max_ms: 1_000,
            timeout_ms: 30_000,
            jitter_seed: 0x5EED_0001,
            ladder: false,
            tier_patience: 8,
            nudge_step: 0.05,
            nudge_max: 2.0,
            recovery_hold: 4,
        }
    }
}

impl RepairConfig {
    /// The attempt budget with the ≥ 1 floor applied.
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// The episode wall-clock budget as a [`Duration`].
    pub fn timeout(&self) -> Duration {
        Duration::from_millis(self.timeout_ms)
    }

    /// The per-rung escalation patience with the ≥ 1 floor applied.
    pub fn patience(&self) -> u64 {
        u64::from(self.tier_patience.max(1))
    }

    /// The recovery hold with the ≥ 1 floor applied.
    pub fn hold(&self) -> u64 {
        u64::from(self.recovery_hold.max(1))
    }

    /// A backoff schedule for one repair episode. `episode` (typically
    /// the stream position that opened the episode) is folded into the
    /// seed so distinct episodes jitter differently while the whole
    /// timeline stays a pure function of the config.
    pub fn backoff(&self, episode: u64) -> Backoff {
        Backoff::new(
            self.backoff_base_ms,
            self.backoff_max_ms,
            self.jitter_seed ^ episode.rotate_left(17),
        )
    }
}

/// Supervision policy for the async engines' monitor thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Respawns allowed over the engine's lifetime before the shard is
    /// declared [`ShardHealth::Dead`].
    pub max_restarts: u32,
    /// Base delay before a respawn, in milliseconds (doubles per death,
    /// jittered).
    pub backoff_base_ms: u64,
    /// Ceiling on any single respawn delay, in milliseconds.
    pub backoff_max_ms: u64,
    /// Seed for the deterministic respawn jitter.
    pub jitter_seed: u64,
    /// Batches between the monitor thread's coherent recovery clones.
    /// Smaller = narrower monitoring gap on a crash, more clone
    /// bandwidth (one full `Monitor` copy per interval).
    pub snapshot_every: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_restarts: 3,
            backoff_base_ms: 10,
            backoff_max_ms: 2_000,
            jitter_seed: 0x5EED_0002,
            snapshot_every: 32,
        }
    }
}

impl SupervisorConfig {
    /// The respawn backoff schedule this policy describes.
    pub fn backoff(&self) -> Backoff {
        Backoff::new(self.backoff_base_ms, self.backoff_max_ms, self.jitter_seed)
    }

    /// `snapshot_every` with the ≥ 1 floor applied.
    pub fn clone_interval(&self) -> u32 {
        self.snapshot_every.max(1)
    }
}

/// A deterministic exponential-backoff schedule with equal jitter.
///
/// Attempt `k` (0-based) sleeps `d/2 + uniform(0 ..= d/2)` where
/// `d = min(base · 2^k, max)` — the standard "equal jitter" scheme, which
/// keeps at least half the exponential spacing while decorrelating
/// retries. The jitter stream is a seeded xoshiro generator, so the full
/// delay sequence is a pure function of `(base, max, seed)`.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    max_ms: u64,
    attempt: u32,
    rng: StdRng,
}

impl Backoff {
    /// A fresh schedule. `base_ms == 0` yields all-zero delays (useful
    /// in tests that want retries without sleeps).
    pub fn new(base_ms: u64, max_ms: u64, seed: u64) -> Self {
        Backoff {
            base_ms,
            max_ms: max_ms.max(base_ms),
            attempt: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The next delay in the schedule (advances the attempt counter).
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(32);
        self.attempt = self.attempt.saturating_add(1);
        let raw = self.base_ms.saturating_mul(1u64 << exp).min(self.max_ms);
        if raw == 0 {
            return Duration::ZERO;
        }
        let half = raw / 2;
        let jitter = self.rng.gen_range(0..=raw - half);
        Duration::from_millis(half + jitter)
    }

    /// Attempts taken so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Restart the schedule from attempt 0 with a fresh jitter stream.
    pub fn reset(&mut self, seed: u64) {
        self.attempt = 0;
        self.rng = StdRng::seed_from_u64(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delays(mut b: Backoff, n: usize) -> Vec<u64> {
        (0..n).map(|_| b.next_delay().as_millis() as u64).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = delays(Backoff::new(10, 1_000, 7), 8);
        let b = delays(Backoff::new(10, 1_000, 7), 8);
        assert_eq!(a, b, "backoff must be a pure function of its seed");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = delays(Backoff::new(100, 100_000, 1), 8);
        let b = delays(Backoff::new(100, 100_000, 2), 8);
        assert_ne!(a, b, "distinct seeds should jitter differently");
    }

    #[test]
    fn delays_stay_within_equal_jitter_envelope() {
        let base = 16u64;
        let max = 4_096u64;
        let mut b = Backoff::new(base, max, 99);
        for k in 0..12u32 {
            let d = b.next_delay().as_millis() as u64;
            let raw = base.saturating_mul(1 << k.min(32)).min(max);
            assert!(
                d >= raw / 2 && d <= raw,
                "attempt {k}: delay {d}ms outside [{}, {raw}]ms",
                raw / 2
            );
        }
    }

    #[test]
    fn zero_base_never_sleeps() {
        let mut b = Backoff::new(0, 1_000, 3);
        for _ in 0..8 {
            assert_eq!(b.next_delay(), Duration::ZERO);
        }
    }

    #[test]
    fn cap_binds_eventually() {
        let mut b = Backoff::new(10, 80, 5);
        let last = delays(b.clone(), 16).pop().unwrap();
        assert!(last <= 80, "delay {last}ms exceeds the 80ms cap");
        // Exhaust the exponent far past 2^32 without overflow.
        for _ in 0..64 {
            assert!(b.next_delay().as_millis() as u64 <= 80);
        }
    }

    #[test]
    fn reset_restarts_the_schedule() {
        let mut b = Backoff::new(10, 1_000, 11);
        let first = delays(b.clone(), 4);
        for _ in 0..4 {
            b.next_delay();
        }
        b.reset(11);
        assert_eq!(delays(b, 4), first);
    }

    #[test]
    fn repair_config_floors_and_episode_seeding() {
        let cfg = RepairConfig {
            max_attempts: 0,
            ..RepairConfig::default()
        };
        assert_eq!(cfg.attempts(), 1);
        let a = delays(cfg.backoff(1), 4);
        let b = delays(cfg.backoff(1), 4);
        let c = delays(cfg.backoff(2), 4);
        assert_eq!(a, b);
        assert_ne!(a, c, "distinct episodes should jitter differently");
    }
}
