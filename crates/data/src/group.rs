//! The user-specified mapping function `g : t ↦ {W, U}` (paper §II-A).

use crate::{dataset::Dataset, DataError, Result, MAJORITY, MINORITY};

/// How tuples are assigned to the majority (`W`, id 0) or minority (`U`, id 1)
/// group. This mirrors the paper's mapping function `g`, which is "typically
/// a simple function over one or more attributes".
#[derive(Debug, Clone, PartialEq)]
pub enum GroupSpec {
    /// Minority when the numeric column compares below (or at/above) a
    /// threshold — e.g. the Credit dataset's `age < 35`.
    NumericThreshold {
        /// Name of the numeric column.
        column: String,
        /// The comparison threshold.
        threshold: f64,
        /// `true` → minority is `value < threshold`; `false` → `value ≥ threshold`.
        minority_below: bool,
    },
    /// Minority when the categorical column takes one of the given levels —
    /// e.g. `race = African-American` in LSAC/ACS.
    CategoricalIn {
        /// Name of the categorical column.
        column: String,
        /// Levels whose members form the minority.
        levels: Vec<String>,
    },
    /// Explicit per-tuple assignment (used by generators and tests).
    Explicit(Vec<u8>),
}

impl GroupSpec {
    /// Evaluate the mapping function on every tuple.
    pub fn assign(&self, ds: &Dataset) -> Result<Vec<u8>> {
        match self {
            GroupSpec::NumericThreshold {
                column,
                threshold,
                minority_below,
            } => {
                let j = ds.column_index(column)?;
                let values =
                    ds.column(j)
                        .as_numeric()
                        .ok_or_else(|| DataError::WrongColumnKind {
                            name: column.clone(),
                            expected: "numeric",
                        })?;
                Ok(values
                    .iter()
                    .map(|&v| {
                        let below = v < *threshold;
                        if below == *minority_below {
                            MINORITY
                        } else {
                            MAJORITY
                        }
                    })
                    .collect())
            }
            GroupSpec::CategoricalIn { column, levels } => {
                let j = ds.column_index(column)?;
                let (codes, col_levels) =
                    ds.column(j)
                        .as_categorical()
                        .ok_or_else(|| DataError::WrongColumnKind {
                            name: column.clone(),
                            expected: "categorical",
                        })?;
                let minority_codes: Vec<u32> = col_levels
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| levels.contains(l))
                    .map(|(i, _)| i as u32)
                    .collect();
                Ok(codes
                    .iter()
                    .map(|c| {
                        if minority_codes.contains(c) {
                            MINORITY
                        } else {
                            MAJORITY
                        }
                    })
                    .collect())
            }
            GroupSpec::Explicit(groups) => {
                if groups.len() != ds.len() {
                    return Err(DataError::LengthMismatch {
                        expected: ds.len(),
                        got: groups.len(),
                        what: "explicit groups".into(),
                    });
                }
                Ok(groups.clone())
            }
        }
    }

    /// Assign and install the groups on the dataset in one step.
    pub fn apply(&self, ds: &mut Dataset) -> Result<()> {
        let groups = self.assign(ds)?;
        ds.set_groups(groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn base() -> Dataset {
        Dataset::new(
            "g",
            vec!["age".into(), "race".into()],
            vec![
                Column::Numeric(vec![20.0, 40.0, 34.9, 35.0]),
                Column::categorical_from_strs(&["A", "B", "A", "C"]),
            ],
            vec![0, 1, 0, 1],
            vec![0, 0, 0, 0],
        )
        .unwrap()
    }

    #[test]
    fn numeric_threshold_below() {
        let spec = GroupSpec::NumericThreshold {
            column: "age".into(),
            threshold: 35.0,
            minority_below: true,
        };
        assert_eq!(spec.assign(&base()).unwrap(), vec![1, 0, 1, 0]);
    }

    #[test]
    fn numeric_threshold_above() {
        let spec = GroupSpec::NumericThreshold {
            column: "age".into(),
            threshold: 35.0,
            minority_below: false,
        };
        assert_eq!(spec.assign(&base()).unwrap(), vec![0, 1, 0, 1]);
    }

    #[test]
    fn categorical_membership() {
        let spec = GroupSpec::CategoricalIn {
            column: "race".into(),
            levels: vec!["A".into(), "C".into()],
        };
        assert_eq!(spec.assign(&base()).unwrap(), vec![1, 0, 1, 1]);
    }

    #[test]
    fn explicit_assignment_validated() {
        let spec = GroupSpec::Explicit(vec![1, 1, 0, 0]);
        assert_eq!(spec.assign(&base()).unwrap(), vec![1, 1, 0, 0]);
        let bad = GroupSpec::Explicit(vec![1]);
        assert!(bad.assign(&base()).is_err());
    }

    #[test]
    fn wrong_kind_errors() {
        let spec = GroupSpec::NumericThreshold {
            column: "race".into(),
            threshold: 0.0,
            minority_below: true,
        };
        assert!(matches!(
            spec.assign(&base()),
            Err(DataError::WrongColumnKind { .. })
        ));
        let spec = GroupSpec::CategoricalIn {
            column: "age".into(),
            levels: vec![],
        };
        assert!(spec.assign(&base()).is_err());
        let spec = GroupSpec::CategoricalIn {
            column: "nope".into(),
            levels: vec![],
        };
        assert!(matches!(
            spec.assign(&base()),
            Err(DataError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn apply_installs_groups() {
        let mut d = base();
        GroupSpec::Explicit(vec![1, 0, 1, 0]).apply(&mut d).unwrap();
        assert_eq!(d.groups(), &[1, 0, 1, 0]);
    }
}
