//! Minimal CSV round-tripping for datasets (examples and artifacts).
//!
//! The format is deliberately simple: comma-separated, first row is the
//! header, two reserved trailing columns `__label__` and `__group__`. Fields
//! never contain commas in this workspace (generated data), so no quoting is
//! implemented; writing a value containing a comma is an error.

use crate::{column::Column, dataset::Dataset, DataError, Result};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

const LABEL_COL: &str = "__label__";
const GROUP_COL: &str = "__group__";

/// Serialise the dataset to CSV at `path`.
pub fn write_csv(ds: &Dataset, path: &Path) -> Result<()> {
    let file = std::fs::File::create(path).map_err(|e| DataError::Io(e.to_string()))?;
    let mut out = BufWriter::new(file);
    let mut write_row = |fields: &[String]| -> Result<()> {
        for f in fields {
            if f.contains(',') {
                return Err(DataError::Parse(format!("field contains comma: {f}")));
            }
        }
        writeln!(out, "{}", fields.join(",")).map_err(|e| DataError::Io(e.to_string()))
    };

    let mut header: Vec<String> = ds.column_names().to_vec();
    header.push(LABEL_COL.to_string());
    header.push(GROUP_COL.to_string());
    write_row(&header)?;

    for i in 0..ds.len() {
        let mut row: Vec<String> = Vec::with_capacity(header.len());
        for j in 0..ds.num_attributes() {
            match ds.column(j) {
                Column::Numeric(v) => {
                    row.push(if v[i].is_nan() {
                        String::new()
                    } else {
                        format!("{}", v[i])
                    });
                }
                Column::Categorical { codes, levels } => {
                    row.push(if ds.column(j).is_null(i) {
                        String::new()
                    } else {
                        levels[codes[i] as usize].clone()
                    });
                }
            }
        }
        row.push(format!("{}", ds.labels()[i]));
        row.push(format!("{}", ds.groups()[i]));
        write_row(&row)?;
    }
    Ok(())
}

/// Read a dataset written by [`write_csv`]. Column kinds are inferred:
/// a column is numeric if every non-empty field parses as `f64`.
pub fn read_csv(name: &str, path: &Path) -> Result<Dataset> {
    let file = std::fs::File::open(path).map_err(|e| DataError::Io(e.to_string()))?;
    let reader = std::io::BufReader::new(file);
    let mut lines = reader.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| DataError::Parse("empty file".into()))?
        .map_err(|e| DataError::Io(e.to_string()))?;
    let header: Vec<String> = header_line.split(',').map(str::to_string).collect();
    let label_idx = header
        .iter()
        .position(|h| h == LABEL_COL)
        .ok_or_else(|| DataError::Parse(format!("missing {LABEL_COL} column")))?;
    let group_idx = header
        .iter()
        .position(|h| h == GROUP_COL)
        .ok_or_else(|| DataError::Parse(format!("missing {GROUP_COL} column")))?;

    let mut raw: Vec<Vec<String>> = vec![Vec::new(); header.len()];
    for line in lines {
        let line = line.map_err(|e| DataError::Io(e.to_string()))?;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != header.len() {
            return Err(DataError::Parse(format!(
                "row has {} fields, header has {}",
                fields.len(),
                header.len()
            )));
        }
        for (col, f) in raw.iter_mut().zip(&fields) {
            col.push((*f).to_string());
        }
    }

    let labels: Vec<u8> = raw[label_idx]
        .iter()
        .map(|s| {
            s.parse::<u8>()
                .map_err(|_| DataError::Parse(format!("bad label: {s}")))
        })
        .collect::<Result<_>>()?;
    let groups: Vec<u8> = raw[group_idx]
        .iter()
        .map(|s| {
            s.parse::<u8>()
                .map_err(|_| DataError::Parse(format!("bad group: {s}")))
        })
        .collect::<Result<_>>()?;

    let mut col_names = Vec::new();
    let mut columns = Vec::new();
    for (j, col_name) in header.iter().enumerate() {
        if j == label_idx || j == group_idx {
            continue;
        }
        let values = &raw[j];
        let all_numeric = values
            .iter()
            .all(|v| v.is_empty() || v.parse::<f64>().is_ok());
        let column = if all_numeric {
            Column::Numeric(
                values
                    .iter()
                    .map(|v| {
                        if v.is_empty() {
                            f64::NAN
                        } else {
                            v.parse::<f64>().expect("checked numeric")
                        }
                    })
                    .collect(),
            )
        } else {
            Column::categorical_from_strs(values)
        };
        col_names.push(col_name.clone());
        columns.push(column);
    }

    Dataset::new(name, col_names, columns, labels, groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::new(
            "csv",
            vec!["x".into(), "c".into()],
            vec![
                Column::Numeric(vec![1.5, f64::NAN, 3.0]),
                Column::categorical_from_strs(&["red", "blue", "red"]),
            ],
            vec![0, 1, 1],
            vec![0, 0, 1],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let dir = std::env::temp_dir().join("cf_data_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.csv");
        let d = sample();
        write_csv(&d, &path).unwrap();
        let back = read_csv("csv", &path).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.labels(), d.labels());
        assert_eq!(back.groups(), d.groups());
        let x = back.column(0).as_numeric().unwrap();
        assert_eq!(x[0], 1.5);
        assert!(x[1].is_nan());
        let (codes, levels) = back.column(1).as_categorical().unwrap();
        assert_eq!(levels, &["red".to_string(), "blue".to_string()]);
        assert_eq!(codes, &[0, 1, 0]);
    }

    #[test]
    fn read_rejects_missing_reserved_columns() {
        let dir = std::env::temp_dir().join("cf_data_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "a,b\n1,2\n").unwrap();
        assert!(matches!(read_csv("bad", &path), Err(DataError::Parse(_))));
    }

    #[test]
    fn read_rejects_ragged_rows() {
        let dir = std::env::temp_dir().join("cf_data_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.csv");
        std::fs::write(&path, "x,__label__,__group__\n1,0,0\n2,1\n").unwrap();
        assert!(read_csv("ragged", &path).is_err());
    }

    #[test]
    fn write_rejects_comma_fields() {
        let dir = std::env::temp_dir().join("cf_data_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("comma.csv");
        let d = Dataset::new(
            "comma",
            vec!["c".into()],
            vec![Column::categorical_from_strs(&["a,b"])],
            vec![0],
            vec![0],
        )
        .unwrap();
        assert!(write_csv(&d, &path).is_err());
    }
}
