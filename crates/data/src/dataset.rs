//! The [`Dataset`] relation and its partition helpers.

use crate::{column::Column, DataError, Result, MAJORITY, MINORITY};
use cf_linalg::Matrix;

/// A (group, label) cell index — the partition unit of Algorithms 1–3.
///
/// Every method in the paper operates per cell: conformance constraints are
/// derived per cell, ConFair's weights are per cell, and the density filter
/// keeps the densest tuples per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellIndex {
    /// Group id (`0` = majority `W`, `1` = minority `U`).
    pub group: u8,
    /// Class label.
    pub label: u8,
}

impl CellIndex {
    /// All four cells of a binary-label, two-group dataset, in a fixed order.
    pub fn binary_cells() -> [CellIndex; 4] {
        [
            CellIndex {
                group: MAJORITY,
                label: 0,
            },
            CellIndex {
                group: MAJORITY,
                label: 1,
            },
            CellIndex {
                group: MINORITY,
                label: 0,
            },
            CellIndex {
                group: MINORITY,
                label: 1,
            },
        ]
    }
}

/// A named, columnar relation with labels, groups, and optional weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    col_names: Vec<String>,
    columns: Vec<Column>,
    labels: Vec<u8>,
    groups: Vec<u8>,
    weights: Option<Vec<f64>>,
}

impl Dataset {
    /// Assemble a dataset, validating that all buffers have equal length.
    pub fn new(
        name: impl Into<String>,
        col_names: Vec<String>,
        columns: Vec<Column>,
        labels: Vec<u8>,
        groups: Vec<u8>,
    ) -> Result<Self> {
        let n = labels.len();
        if col_names.len() != columns.len() {
            return Err(DataError::LengthMismatch {
                expected: columns.len(),
                got: col_names.len(),
                what: "column names".into(),
            });
        }
        for (name, col) in col_names.iter().zip(&columns) {
            if col.len() != n {
                return Err(DataError::LengthMismatch {
                    expected: n,
                    got: col.len(),
                    what: format!("column {name}"),
                });
            }
        }
        if groups.len() != n {
            return Err(DataError::LengthMismatch {
                expected: n,
                got: groups.len(),
                what: "groups".into(),
            });
        }
        Ok(Self {
            name: name.into(),
            col_names,
            columns,
            labels,
            groups,
            weights: None,
        })
    }

    /// Dataset name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tuples `n = |D|`.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has zero tuples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of attributes (numeric + categorical).
    pub fn num_attributes(&self) -> usize {
        self.columns.len()
    }

    /// Attribute names.
    pub fn column_names(&self) -> &[String] {
        &self.col_names
    }

    /// Borrow a column by index.
    pub fn column(&self, j: usize) -> &Column {
        &self.columns[j]
    }

    /// Find a column index by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.col_names
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| DataError::NoSuchColumn(name.to_string()))
    }

    /// Target attribute `Y` per tuple.
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// Group id per tuple (`g(t)`).
    pub fn groups(&self) -> &[u8] {
        &self.groups
    }

    /// Number of distinct label values (`c` in the paper); 0 when empty.
    pub fn num_classes(&self) -> usize {
        self.labels
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m as usize + 1)
    }

    /// Instance weights, if any intervention has attached them.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Attach (or replace) instance weights.
    pub fn set_weights(&mut self, w: Vec<f64>) -> Result<()> {
        if w.len() != self.len() {
            return Err(DataError::LengthMismatch {
                expected: self.len(),
                got: w.len(),
                what: "weights".into(),
            });
        }
        self.weights = Some(w);
        Ok(())
    }

    /// Remove attached weights.
    pub fn clear_weights(&mut self) {
        self.weights = None;
    }

    /// Replace group assignments (used by [`crate::GroupSpec::assign`]).
    pub fn set_groups(&mut self, groups: Vec<u8>) -> Result<()> {
        if groups.len() != self.len() {
            return Err(DataError::LengthMismatch {
                expected: self.len(),
                got: groups.len(),
                what: "groups".into(),
            });
        }
        self.groups = groups;
        Ok(())
    }

    /// Indices of the columns that are numeric (profiling attributes).
    pub fn numeric_column_indices(&self) -> Vec<usize> {
        (0..self.columns.len())
            .filter(|&j| self.columns[j].is_numeric())
            .collect()
    }

    /// Gather tuples by index into a new dataset (weights follow).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            name: self.name.clone(),
            col_names: self.col_names.clone(),
            columns: self.columns.iter().map(|c| c.select(indices)).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            groups: indices.iter().map(|&i| self.groups[i]).collect(),
            weights: self
                .weights
                .as_ref()
                .map(|w| indices.iter().map(|&i| w[i]).collect()),
        }
    }

    /// Tuple indices belonging to a (group, label) cell.
    pub fn cell_indices(&self, cell: CellIndex) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.groups[i] == cell.group && self.labels[i] == cell.label)
            .collect()
    }

    /// Tuple indices belonging to a group (either label).
    pub fn group_indices(&self, group: u8) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.groups[i] == group)
            .collect()
    }

    /// Count of tuples in a (group, label) cell.
    pub fn cell_count(&self, cell: CellIndex) -> usize {
        (0..self.len())
            .filter(|&i| self.groups[i] == cell.group && self.labels[i] == cell.label)
            .count()
    }

    /// Count of tuples in a group.
    pub fn group_count(&self, group: u8) -> usize {
        self.groups.iter().filter(|&&g| g == group).count()
    }

    /// Count of tuples with a label.
    pub fn label_count(&self, label: u8) -> usize {
        self.labels.iter().filter(|&&l| l == label).count()
    }

    /// The numeric attributes of the given rows as a dense matrix
    /// (rows = tuples, columns = numeric attributes in column order).
    ///
    /// This is the view conformance constraints and KDE profile; categorical
    /// attributes never enter the profiling path (paper §I "Considering
    /// other data profiling primitives").
    pub fn numeric_matrix(&self, rows: Option<&[usize]>) -> Matrix {
        let num_cols = self.numeric_column_indices();
        let row_count = rows.map_or(self.len(), |r| r.len());
        let mut data = Vec::with_capacity(row_count * num_cols.len());
        let fill = |i: usize, data: &mut Vec<f64>| {
            for &j in &num_cols {
                // Unwrap is safe: numeric_column_indices only returns numerics.
                data.push(self.columns[j].as_numeric().unwrap()[i]);
            }
        };
        match rows {
            Some(idx) => {
                for &i in idx {
                    fill(i, &mut data);
                }
            }
            None => {
                for i in 0..self.len() {
                    fill(i, &mut data);
                }
            }
        }
        Matrix::from_vec(row_count, num_cols.len(), data)
    }

    /// Drop tuples with any null attribute (paper §IV preprocessing).
    pub fn drop_nulls(&self) -> Dataset {
        let keep: Vec<usize> = (0..self.len())
            .filter(|&i| !self.columns.iter().any(|c| c.is_null(i)))
            .collect();
        self.subset(&keep)
    }

    /// Summary statistics in the shape of the paper's Fig. 4 rows.
    pub fn summary(&self) -> DatasetSummary {
        let minority = self.group_count(MINORITY);
        let minority_pos = self.cell_count(CellIndex {
            group: MINORITY,
            label: 1,
        });
        let numeric = self.numeric_column_indices().len();
        DatasetSummary {
            name: self.name.clone(),
            size: self.len(),
            numeric_attrs: numeric,
            categorical_attrs: self.num_attributes() - numeric,
            minority_fraction: minority as f64 / self.len().max(1) as f64,
            minority_positive_fraction: minority_pos as f64 / minority.max(1) as f64,
        }
    }
}

/// The Fig. 4 row: headline statistics of one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Number of tuples.
    pub size: usize,
    /// Count of numeric attributes.
    pub numeric_attrs: usize,
    /// Count of categorical attributes.
    pub categorical_attrs: usize,
    /// `|U| / |D|`.
    pub minority_fraction: f64,
    /// `|U₁| / |U|` — positive-label rate within the minority.
    pub minority_positive_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec!["x".into(), "cat".into()],
            vec![
                Column::Numeric(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]),
                Column::categorical_from_strs(&["a", "b", "a", "b", "a", "b"]),
            ],
            vec![0, 1, 0, 1, 1, 0],
            vec![0, 0, 0, 1, 1, 1],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_lengths() {
        let bad = Dataset::new(
            "bad",
            vec!["x".into()],
            vec![Column::Numeric(vec![1.0])],
            vec![0, 1],
            vec![0, 0],
        );
        assert!(matches!(bad, Err(DataError::LengthMismatch { .. })));

        let bad_groups = Dataset::new(
            "bad",
            vec!["x".into()],
            vec![Column::Numeric(vec![1.0, 2.0])],
            vec![0, 1],
            vec![0],
        );
        assert!(bad_groups.is_err());
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.len(), 6);
        assert_eq!(d.num_attributes(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.column_index("cat").unwrap(), 1);
        assert!(d.column_index("nope").is_err());
        assert_eq!(d.numeric_column_indices(), vec![0]);
    }

    #[test]
    fn cell_partitioning_covers_everything() {
        let d = toy();
        let total: usize = CellIndex::binary_cells()
            .iter()
            .map(|&c| d.cell_indices(c).len())
            .sum();
        assert_eq!(total, d.len());
        assert_eq!(d.cell_indices(CellIndex { group: 1, label: 1 }), vec![3, 4]);
        assert_eq!(d.cell_count(CellIndex { group: 0, label: 0 }), 2);
        assert_eq!(d.group_count(MINORITY), 3);
        assert_eq!(d.label_count(1), 3);
    }

    #[test]
    fn subset_carries_everything() {
        let mut d = toy();
        d.set_weights(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let s = d.subset(&[3, 5]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[1, 0]);
        assert_eq!(s.groups(), &[1, 1]);
        assert_eq!(s.weights().unwrap(), &[4.0, 6.0]);
        assert_eq!(s.column(0).as_numeric().unwrap(), &[3.0, 5.0]);
    }

    #[test]
    fn numeric_matrix_selects_numeric_only() {
        let d = toy();
        let m = d.numeric_matrix(None);
        assert_eq!(m.rows(), 6);
        assert_eq!(m.cols(), 1);
        let sub = d.numeric_matrix(Some(&[1, 2]));
        assert_eq!(sub.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn weights_validation() {
        let mut d = toy();
        assert!(d.set_weights(vec![1.0]).is_err());
        assert!(d.set_weights(vec![1.0; 6]).is_ok());
        assert!(d.weights().is_some());
        d.clear_weights();
        assert!(d.weights().is_none());
    }

    #[test]
    fn drop_nulls_removes_offending_tuples() {
        let d = Dataset::new(
            "nulls",
            vec!["x".into(), "c".into()],
            vec![
                Column::Numeric(vec![1.0, f64::NAN, 3.0]),
                Column::categorical_from_strs(&["a", "b", ""]),
            ],
            vec![0, 1, 1],
            vec![0, 0, 1],
        )
        .unwrap();
        let clean = d.drop_nulls();
        assert_eq!(clean.len(), 1);
        assert_eq!(clean.labels(), &[0]);
    }

    #[test]
    fn summary_matches_fig4_shape() {
        let d = toy();
        let s = d.summary();
        assert_eq!(s.size, 6);
        assert_eq!(s.numeric_attrs, 1);
        assert_eq!(s.categorical_attrs, 1);
        assert!((s.minority_fraction - 0.5).abs() < 1e-12);
        assert!((s.minority_positive_fraction - 2.0 / 3.0).abs() < 1e-12);
    }
}
