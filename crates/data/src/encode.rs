//! Feature encoding: min–max normalisation + one-hot, fit on training data.
//!
//! The paper's §IV preprocessing normalises numerical attributes and one-hot
//! encodes categorical attributes. The encoding is *fitted* on the training
//! split and *applied* to validation/test so no statistics leak across the
//! split boundary.

use crate::{column::Column, dataset::Dataset, DataError, Result};
use cf_linalg::Matrix;

#[derive(Debug, Clone, PartialEq)]
enum ColumnEncoder {
    /// Min–max scaling to [0, 1]; constant columns map to 0.5.
    MinMax { min: f64, max: f64 },
    /// One-hot over the training levels; unseen/null codes produce all-zeros.
    OneHot { n_levels: usize },
}

impl ColumnEncoder {
    fn width(&self) -> usize {
        match self {
            ColumnEncoder::MinMax { .. } => 1,
            ColumnEncoder::OneHot { n_levels } => *n_levels,
        }
    }
}

/// A fitted feature encoding mapping a [`Dataset`] to a dense feature matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureEncoding {
    encoders: Vec<ColumnEncoder>,
    width: usize,
    feature_names: Vec<String>,
}

impl FeatureEncoding {
    /// Fit per-column encoders on (typically) the training split.
    pub fn fit(train: &Dataset) -> Self {
        let mut encoders = Vec::with_capacity(train.num_attributes());
        let mut feature_names = Vec::new();
        for j in 0..train.num_attributes() {
            match train.column(j) {
                Column::Numeric(values) => {
                    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
                    for &v in values {
                        if v.is_nan() {
                            continue;
                        }
                        min = min.min(v);
                        max = max.max(v);
                    }
                    if !min.is_finite() {
                        // Entirely-null column: encode as constant.
                        min = 0.0;
                        max = 0.0;
                    }
                    encoders.push(ColumnEncoder::MinMax { min, max });
                    feature_names.push(train.column_names()[j].clone());
                }
                Column::Categorical { levels, .. } => {
                    encoders.push(ColumnEncoder::OneHot {
                        n_levels: levels.len(),
                    });
                    for l in levels {
                        feature_names.push(format!("{}={}", train.column_names()[j], l));
                    }
                }
            }
        }
        let width = encoders.iter().map(ColumnEncoder::width).sum();
        Self {
            encoders,
            width,
            feature_names,
        }
    }

    /// Total feature-vector width after encoding.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of input columns the encoding was fitted on (one encoder per
    /// dataset column; one-hot encoders fan out to several features).
    pub fn num_columns(&self) -> usize {
        self.encoders.len()
    }

    /// Names of the produced features (`col` or `col=level`).
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Encode a dataset into a dense `n × width` feature matrix.
    ///
    /// The dataset must have the same column structure as the one the
    /// encoding was fitted on.
    pub fn transform(&self, ds: &Dataset) -> Result<Matrix> {
        if ds.num_attributes() != self.encoders.len() {
            return Err(DataError::LengthMismatch {
                expected: self.encoders.len(),
                got: ds.num_attributes(),
                what: "columns for encoding".into(),
            });
        }
        let n = ds.len();
        let mut out = Matrix::zeros(n, self.width);
        let mut offset = 0;
        for (j, enc) in self.encoders.iter().enumerate() {
            match (enc, ds.column(j)) {
                (ColumnEncoder::MinMax { min, max }, Column::Numeric(values)) => {
                    let range = max - min;
                    for (i, &v) in values.iter().enumerate() {
                        let scaled = if v.is_nan() {
                            0.5
                        } else if range > 0.0 {
                            ((v - min) / range).clamp(0.0, 1.0)
                        } else {
                            0.5
                        };
                        out[(i, offset)] = scaled;
                    }
                }
                (ColumnEncoder::OneHot { n_levels }, Column::Categorical { codes, .. }) => {
                    for (i, &code) in codes.iter().enumerate() {
                        if (code as usize) < *n_levels {
                            out[(i, offset + code as usize)] = 1.0;
                        }
                        // Null or unseen level: all-zero block.
                    }
                }
                _ => {
                    return Err(DataError::WrongColumnKind {
                        name: ds.column_names()[j].clone(),
                        expected: "same kind as at fit time",
                    })
                }
            }
            offset += enc.width();
        }
        Ok(out)
    }

    /// Encode a row-major numeric feature matrix directly, without building
    /// a [`Dataset`] — the streaming hot path. One column per encoder, in
    /// fit order; NaN encodes to 0.5 exactly as [`Self::transform`] does.
    ///
    /// # Errors
    /// Errors when the matrix width disagrees with the fitted column count,
    /// or when the encoding contains a categorical (one-hot) column —
    /// categorical data has no row-major `f64` representation and must take
    /// the `Dataset` path.
    pub fn transform_rows(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != self.encoders.len() {
            return Err(DataError::LengthMismatch {
                expected: self.encoders.len(),
                got: x.cols(),
                what: "feature-matrix columns for encoding".into(),
            });
        }
        // (min, range) per column, resolved once so the per-element loop is
        // branch-light and allocation-free.
        let mut scalers = Vec::with_capacity(self.encoders.len());
        for (j, enc) in self.encoders.iter().enumerate() {
            match enc {
                ColumnEncoder::MinMax { min, max } => scalers.push((*min, *max - *min)),
                ColumnEncoder::OneHot { .. } => {
                    return Err(DataError::WrongColumnKind {
                        name: format!("column {j}"),
                        expected: "numeric (categorical encodings need the Dataset path)",
                    })
                }
            }
        }
        let mut out = Matrix::zeros(x.rows(), self.width);
        for i in 0..x.rows() {
            let src = x.row(i);
            let dst = out.row_mut(i);
            for ((d, &v), &(min, range)) in dst.iter_mut().zip(src).zip(&scalers) {
                *d = if v.is_nan() {
                    0.5
                } else if range > 0.0 {
                    ((v - min) / range).clamp(0.0, 1.0)
                } else {
                    0.5
                };
            }
        }
        Ok(out)
    }

    /// Fit on `train` and transform it in one call.
    pub fn fit_transform(train: &Dataset) -> (Self, Matrix) {
        let enc = Self::fit(train);
        let m = enc
            .transform(train)
            .expect("fit and transform on the same dataset cannot disagree");
        (enc, m)
    }
}

// Manual serde impls (the derive shim cannot see through the private
// `ColumnEncoder` enum): each encoder serialises as a tagged object and the
// fitted min/max bounds round-trip bit-exactly through the JSON shim, so a
// restored encoding scales features identically to the original.
impl serde::Serialize for ColumnEncoder {
    fn to_value(&self) -> serde::Value {
        match self {
            ColumnEncoder::MinMax { min, max } => serde::Value::Object(vec![
                ("kind".into(), serde::Value::String("minmax".into())),
                ("min".into(), serde::Value::Number(*min)),
                ("max".into(), serde::Value::Number(*max)),
            ]),
            ColumnEncoder::OneHot { n_levels } => serde::Value::Object(vec![
                ("kind".into(), serde::Value::String("onehot".into())),
                ("n_levels".into(), serde::Value::Number(*n_levels as f64)),
            ]),
        }
    }
}

impl serde::Deserialize for ColumnEncoder {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        match v.get_or_err("kind")?.as_str() {
            Some("minmax") => Ok(ColumnEncoder::MinMax {
                min: serde::Deserialize::from_value(v.get_or_err("min")?)?,
                max: serde::Deserialize::from_value(v.get_or_err("max")?)?,
            }),
            Some("onehot") => Ok(ColumnEncoder::OneHot {
                n_levels: serde::Deserialize::from_value(v.get_or_err("n_levels")?)?,
            }),
            _ => Err(serde::Error::msg("unknown column-encoder kind")),
        }
    }
}

impl serde::Serialize for FeatureEncoding {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("encoders".into(), self.encoders.to_value()),
            ("feature_names".into(), self.feature_names.to_value()),
        ])
    }
}

impl serde::Deserialize for FeatureEncoding {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let encoders: Vec<ColumnEncoder> =
            serde::Deserialize::from_value(v.get_or_err("encoders")?)?;
        let feature_names: Vec<String> =
            serde::Deserialize::from_value(v.get_or_err("feature_names")?)?;
        // `width` is derived state; recompute instead of trusting the
        // document, so a hand-edited checkpoint cannot desynchronise it.
        let width = encoders.iter().map(ColumnEncoder::width).sum();
        if feature_names.len() != width {
            return Err(serde::Error::msg(format!(
                "feature encoding lists {} names for width {width}",
                feature_names.len()
            )));
        }
        Ok(FeatureEncoding {
            encoders,
            width,
            feature_names,
        })
    }
}

/// Labels as `f64` (0.0 / 1.0), the shape learners consume.
pub fn labels_as_f64(ds: &Dataset) -> Vec<f64> {
    ds.labels().iter().map(|&l| l as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::new(
            "enc",
            vec!["x".into(), "c".into()],
            vec![
                Column::Numeric(vec![0.0, 5.0, 10.0]),
                Column::categorical_from_strs(&["a", "b", "a"]),
            ],
            vec![0, 1, 1],
            vec![0, 1, 0],
        )
        .unwrap()
    }

    #[test]
    fn min_max_scales_to_unit_interval() {
        let (enc, m) = FeatureEncoding::fit_transform(&sample());
        assert_eq!(enc.width(), 3); // 1 numeric + 2 one-hot
        assert_eq!(m.col(0), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn one_hot_is_indicator() {
        let (_, m) = FeatureEncoding::fit_transform(&sample());
        // rows: a -> (1,0), b -> (0,1), a -> (1,0)
        assert_eq!(m.row(0)[1..], [1.0, 0.0]);
        assert_eq!(m.row(1)[1..], [0.0, 1.0]);
        assert_eq!(m.row(2)[1..], [1.0, 0.0]);
    }

    #[test]
    fn feature_names_follow_layout() {
        let enc = FeatureEncoding::fit(&sample());
        assert_eq!(
            enc.feature_names(),
            &["x".to_string(), "c=a".to_string(), "c=b".to_string()]
        );
    }

    #[test]
    fn transform_clamps_out_of_range_values() {
        let enc = FeatureEncoding::fit(&sample());
        let test = Dataset::new(
            "t",
            vec!["x".into(), "c".into()],
            vec![
                Column::Numeric(vec![-5.0, 20.0]),
                Column::categorical_from_strs(&["b", "a"]),
            ],
            vec![0, 1],
            vec![0, 0],
        )
        .unwrap();
        let m = enc.transform(&test).unwrap();
        assert_eq!(m.col(0), vec![0.0, 1.0]);
    }

    #[test]
    fn constant_numeric_column_maps_to_half() {
        let d = Dataset::new(
            "const",
            vec!["x".into()],
            vec![Column::Numeric(vec![3.0, 3.0])],
            vec![0, 1],
            vec![0, 1],
        )
        .unwrap();
        let (_, m) = FeatureEncoding::fit_transform(&d);
        assert_eq!(m.col(0), vec![0.5, 0.5]);
    }

    #[test]
    fn unseen_level_encodes_as_zeros() {
        let enc = FeatureEncoding::fit(&sample());
        // Build a dataset whose categorical column has an extra level "z";
        // codes beyond the fitted level count must produce a zero block.
        let test = Dataset::new(
            "t",
            vec!["x".into(), "c".into()],
            vec![
                Column::Numeric(vec![1.0]),
                Column::Categorical {
                    codes: vec![7],
                    levels: vec!["a".into(), "b".into()],
                },
            ],
            vec![0],
            vec![0],
        )
        .unwrap();
        let m = enc.transform(&test).unwrap();
        assert_eq!(m.row(0)[1..], [0.0, 0.0]);
    }

    #[test]
    fn structure_mismatch_errors() {
        let enc = FeatureEncoding::fit(&sample());
        let other = Dataset::new(
            "o",
            vec!["x".into()],
            vec![Column::Numeric(vec![1.0])],
            vec![0],
            vec![0],
        )
        .unwrap();
        assert!(enc.transform(&other).is_err());
    }

    #[test]
    fn transform_rows_matches_dataset_path_on_numeric_data() {
        let train = Dataset::new(
            "num",
            vec!["a".into(), "b".into()],
            vec![
                Column::Numeric(vec![0.0, 5.0, 10.0]),
                Column::Numeric(vec![-1.0, 0.0, 3.0]),
            ],
            vec![0, 1, 1],
            vec![0, 1, 0],
        )
        .unwrap();
        let enc = FeatureEncoding::fit(&train);
        let test = Dataset::new(
            "t",
            vec!["a".into(), "b".into()],
            vec![
                Column::Numeric(vec![-2.0, 7.5, f64::NAN]),
                Column::Numeric(vec![1.0, 9.0, 0.5]),
            ],
            vec![0, 1, 0],
            vec![0, 0, 1],
        )
        .unwrap();
        let via_dataset = enc.transform(&test).unwrap();
        let rows = Matrix::from_rows(&[vec![-2.0, 1.0], vec![7.5, 9.0], vec![f64::NAN, 0.5]]);
        let via_rows = enc.transform_rows(&rows).unwrap();
        assert_eq!(via_rows, via_dataset);
    }

    #[test]
    fn transform_rows_rejects_categorical_encodings_and_bad_width() {
        let enc = FeatureEncoding::fit(&sample());
        let rows = Matrix::from_rows(&[vec![1.0, 0.0]]);
        assert!(matches!(
            enc.transform_rows(&rows),
            Err(DataError::WrongColumnKind { .. })
        ));
        let numeric_only = Dataset::new(
            "n",
            vec!["x".into()],
            vec![Column::Numeric(vec![0.0, 1.0])],
            vec![0, 1],
            vec![0, 1],
        )
        .unwrap();
        let enc = FeatureEncoding::fit(&numeric_only);
        let wide = Matrix::from_rows(&[vec![1.0, 2.0]]);
        assert!(matches!(
            enc.transform_rows(&wide),
            Err(DataError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn labels_as_f64_converts() {
        assert_eq!(labels_as_f64(&sample()), vec![0.0, 1.0, 1.0]);
    }
}
