//! Columnar attribute storage.

/// One attribute of a [`crate::Dataset`], stored columnar.
///
/// Numeric attributes participate in conformance-constraint profiling and
/// are min–max normalised for learners; categorical attributes are one-hot
/// encoded for learners and may define the group mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// A numeric attribute. `NaN` encodes null (dropped by preprocessing).
    Numeric(Vec<f64>),
    /// A categorical attribute as integer codes into `levels`.
    Categorical {
        /// Per-tuple level codes; `u32::MAX` encodes null.
        codes: Vec<u32>,
        /// Human-readable level names; `codes[i] < levels.len()` for non-null.
        levels: Vec<String>,
    },
}

/// Sentinel code for a null categorical value.
pub const NULL_CODE: u32 = u32::MAX;

impl Column {
    /// Number of tuples stored.
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len(),
            Column::Categorical { codes, .. } => codes.len(),
        }
    }

    /// Whether the column stores zero tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this is a numeric column.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Column::Numeric(_))
    }

    /// Whether tuple `i` is null.
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Column::Numeric(v) => v[i].is_nan(),
            Column::Categorical { codes, .. } => codes[i] == NULL_CODE,
        }
    }

    /// Borrow the numeric payload, if numeric.
    pub fn as_numeric(&self) -> Option<&[f64]> {
        match self {
            Column::Numeric(v) => Some(v),
            Column::Categorical { .. } => None,
        }
    }

    /// Borrow the categorical payload, if categorical.
    pub fn as_categorical(&self) -> Option<(&[u32], &[String])> {
        match self {
            Column::Numeric(_) => None,
            Column::Categorical { codes, levels } => Some((codes, levels)),
        }
    }

    /// Gather the given tuple indices into a new column.
    pub fn select(&self, indices: &[usize]) -> Column {
        match self {
            Column::Numeric(v) => Column::Numeric(indices.iter().map(|&i| v[i]).collect()),
            Column::Categorical { codes, levels } => Column::Categorical {
                codes: indices.iter().map(|&i| codes[i]).collect(),
                levels: levels.clone(),
            },
        }
    }

    /// Build a categorical column from string values, interning levels in
    /// first-appearance order. Empty strings become nulls.
    pub fn categorical_from_strs<S: AsRef<str>>(values: &[S]) -> Column {
        let mut levels: Vec<String> = Vec::new();
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            let v = v.as_ref();
            if v.is_empty() {
                codes.push(NULL_CODE);
                continue;
            }
            let code = match levels.iter().position(|l| l == v) {
                Some(p) => p as u32,
                None => {
                    levels.push(v.to_string());
                    (levels.len() - 1) as u32
                }
            };
            codes.push(code);
        }
        Column::Categorical { codes, levels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_basics() {
        let c = Column::Numeric(vec![1.0, f64::NAN, 3.0]);
        assert_eq!(c.len(), 3);
        assert!(c.is_numeric());
        assert!(!c.is_null(0));
        assert!(c.is_null(1));
        assert!(c.as_numeric().is_some());
        assert!(c.as_categorical().is_none());
    }

    #[test]
    fn categorical_interning() {
        let c = Column::categorical_from_strs(&["a", "b", "a", "", "c"]);
        let (codes, levels) = c.as_categorical().unwrap();
        assert_eq!(levels, &["a".to_string(), "b".to_string(), "c".to_string()]);
        assert_eq!(codes, &[0, 1, 0, NULL_CODE, 2]);
        assert!(c.is_null(3));
        assert!(!c.is_numeric());
    }

    #[test]
    fn select_gathers_and_keeps_levels() {
        let c = Column::categorical_from_strs(&["x", "y", "z"]);
        let s = c.select(&[2, 0]);
        let (codes, levels) = s.as_categorical().unwrap();
        assert_eq!(codes, &[2, 0]);
        assert_eq!(levels.len(), 3);

        let n = Column::Numeric(vec![10.0, 20.0, 30.0]);
        assert_eq!(n.select(&[1]), Column::Numeric(vec![20.0]));
    }

    #[test]
    fn empty_column() {
        let c = Column::Numeric(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.select(&[]).len(), 0);
    }
}
