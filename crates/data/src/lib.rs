//! # cf-data
//!
//! Tabular dataset substrate for the ConFair reproduction.
//!
//! The paper's methods consume a relation `D` with numeric attributes,
//! categorical attributes, a binary target `Y`, and a group mapping
//! `g : t ↦ {W, U}` (majority/minority). This crate provides that relation as
//! a columnar [`Dataset`], plus the preprocessing the paper's §IV applies
//! before training: null dropping, min–max normalisation of numeric
//! attributes, one-hot encoding of categorical attributes, and seeded
//! 70/15/15 train/validation/test splits.
//!
//! Modules:
//! * [`mod@column`] — the [`Column`] storage enum.
//! * [`dataset`] — [`Dataset`] and partition helpers (the (group,label) cells
//!   that every algorithm in the paper iterates over).
//! * [`group`] — [`GroupSpec`], the user-specified mapping function `g`.
//! * [`encode`] — [`FeatureEncoding`]: fit on training data, apply anywhere.
//! * [`split`] — seeded random and stratified splits.
//! * [`csv`] — plain-text round-tripping for examples and artifacts.

pub mod column;
pub mod csv;
pub mod dataset;
pub mod encode;
pub mod group;
pub mod split;

pub use column::Column;
pub use dataset::{CellIndex, Dataset};
pub use encode::FeatureEncoding;
pub use group::GroupSpec;
pub use split::SplitRatios;

/// Majority-group id (the paper's `W`), i.e. `g(t) = 0`.
pub const MAJORITY: u8 = 0;
/// Minority-group id (the paper's `U`), i.e. `g(t) = 1`.
pub const MINORITY: u8 = 1;

/// Errors surfaced by dataset construction and preprocessing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// Column lengths (or label/group lengths) disagree.
    LengthMismatch {
        /// Expected number of tuples.
        expected: usize,
        /// Offending length.
        got: usize,
        /// What the offending buffer was.
        what: String,
    },
    /// Referenced a column that does not exist.
    NoSuchColumn(String),
    /// The operation needed a column of the other kind.
    WrongColumnKind {
        /// Column name.
        name: String,
        /// What the operation required.
        expected: &'static str,
    },
    /// CSV parsing failed.
    Parse(String),
    /// Underlying I/O failure.
    Io(String),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::LengthMismatch {
                expected,
                got,
                what,
            } => write!(f, "{what}: expected length {expected}, got {got}"),
            DataError::NoSuchColumn(name) => write!(f, "no such column: {name}"),
            DataError::WrongColumnKind { name, expected } => {
                write!(f, "column {name} must be {expected}")
            }
            DataError::Parse(msg) => write!(f, "parse error: {msg}"),
            DataError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, DataError>;
