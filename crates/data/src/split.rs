//! Seeded train/validation/test splitting (paper §IV: 70/15/15, i.i.d.).

use crate::dataset::Dataset;
use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};

/// Fractions for the three-way split; must sum to ≤ 1 (the remainder, if
/// any, goes to the test split).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitRatios {
    /// Training fraction.
    pub train: f64,
    /// Validation fraction.
    pub validation: f64,
}

impl SplitRatios {
    /// The paper's 70/15/15 split.
    pub fn paper_default() -> Self {
        Self {
            train: 0.70,
            validation: 0.15,
        }
    }

    /// Construct with validation of the fractions.
    pub fn new(train: f64, validation: f64) -> Self {
        assert!(
            train > 0.0 && validation >= 0.0,
            "fractions must be positive"
        );
        assert!(
            train + validation < 1.0 + 1e-12,
            "train + validation must leave room for test"
        );
        Self { train, validation }
    }
}

/// The three disjoint subsets produced by a split.
#[derive(Debug, Clone)]
pub struct ThreeWaySplit {
    /// Training set `Dt`.
    pub train: Dataset,
    /// Validation set `Dv`.
    pub validation: Dataset,
    /// Deployment/test set `Dd`.
    pub test: Dataset,
}

/// Randomly partition the dataset into train/validation/test (i.i.d., as the
/// paper specifies). Deterministic under a fixed `seed`.
pub fn split3(ds: &Dataset, ratios: SplitRatios, seed: u64) -> ThreeWaySplit {
    let mut idx: Vec<usize> = (0..ds.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n = ds.len();
    let n_train = ((n as f64) * ratios.train).round() as usize;
    let n_val = ((n as f64) * ratios.validation).round() as usize;
    let n_train = n_train.min(n);
    let n_val = n_val.min(n - n_train);
    ThreeWaySplit {
        train: ds.subset(&idx[..n_train]),
        validation: ds.subset(&idx[n_train..n_train + n_val]),
        test: ds.subset(&idx[n_train + n_val..]),
    }
}

/// Stratified variant: preserves each (group, label) cell's proportion in
/// every split. Useful for the smallest minorities, where an i.i.d. split
/// can leave a cell empty.
pub fn split3_stratified(ds: &Dataset, ratios: SplitRatios, seed: u64) -> ThreeWaySplit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train_idx = Vec::new();
    let mut val_idx = Vec::new();
    let mut test_idx = Vec::new();

    // Partition indices by (group, label) cell, shuffle within each, and cut.
    use std::collections::BTreeMap;
    let mut cells: BTreeMap<(u8, u8), Vec<usize>> = BTreeMap::new();
    for i in 0..ds.len() {
        cells
            .entry((ds.groups()[i], ds.labels()[i]))
            .or_default()
            .push(i);
    }
    for (_, mut members) in cells {
        members.shuffle(&mut rng);
        let n = members.len();
        let n_train = ((n as f64) * ratios.train).round() as usize;
        let n_val = (((n as f64) * ratios.validation).round() as usize).min(n - n_train.min(n));
        let n_train = n_train.min(n);
        train_idx.extend_from_slice(&members[..n_train]);
        val_idx.extend_from_slice(&members[n_train..n_train + n_val]);
        test_idx.extend_from_slice(&members[n_train + n_val..]);
    }
    // Shuffle the concatenated cell runs so downstream mini-batching (if any)
    // does not see group-sorted data.
    train_idx.shuffle(&mut rng);
    val_idx.shuffle(&mut rng);
    test_idx.shuffle(&mut rng);
    ThreeWaySplit {
        train: ds.subset(&train_idx),
        validation: ds.subset(&val_idx),
        test: ds.subset(&test_idx),
    }
}

/// Draw a weighted bootstrap sample of size `n` (used to apply ConFair
/// weights to learners without native weight support — paper §I).
pub fn weighted_resample(ds: &Dataset, n: usize, seed: u64) -> Dataset {
    let weights = ds
        .weights()
        .map(<[f64]>::to_vec)
        .unwrap_or_else(|| vec![1.0; ds.len()]);
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "total weight must be positive");
    // Inverse-CDF sampling over the cumulative weights.
    let mut cum = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += *w;
        cum.push(acc);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let idx: Vec<usize> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..total);
            match cum.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
                Ok(i) | Err(i) => i.min(weights.len() - 1),
            }
        })
        .collect();
    ds.subset(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn dataset(n: usize) -> Dataset {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let labels: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let groups: Vec<u8> = (0..n).map(|i| u8::from(i % 5 == 0)).collect();
        Dataset::new(
            "split",
            vec!["x".into()],
            vec![Column::Numeric(x)],
            labels,
            groups,
        )
        .unwrap()
    }

    #[test]
    fn split_sizes_match_ratios() {
        let d = dataset(100);
        let s = split3(&d, SplitRatios::paper_default(), 7);
        assert_eq!(s.train.len(), 70);
        assert_eq!(s.validation.len(), 15);
        assert_eq!(s.test.len(), 15);
    }

    #[test]
    fn split_partitions_without_overlap() {
        let d = dataset(50);
        let s = split3(&d, SplitRatios::paper_default(), 3);
        let mut seen: Vec<f64> = Vec::new();
        for part in [&s.train, &s.validation, &s.test] {
            seen.extend(part.column(0).as_numeric().unwrap());
        }
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = dataset(40);
        let a = split3(&d, SplitRatios::paper_default(), 11);
        let b = split3(&d, SplitRatios::paper_default(), 11);
        assert_eq!(a.train, b.train);
        let c = split3(&d, SplitRatios::paper_default(), 12);
        assert_ne!(
            a.train, c.train,
            "different seed should shuffle differently"
        );
    }

    #[test]
    fn stratified_preserves_cell_shares() {
        let d = dataset(200);
        let s = split3_stratified(&d, SplitRatios::paper_default(), 5);
        // Minority fraction is 20% overall; each split should be within 5pp.
        for part in [&s.train, &s.validation, &s.test] {
            let frac = part.group_count(1) as f64 / part.len() as f64;
            assert!((frac - 0.2).abs() < 0.05, "frac={frac}");
        }
        let total = s.train.len() + s.validation.len() + s.test.len();
        assert_eq!(total, 200);
    }

    #[test]
    fn weighted_resample_follows_weights() {
        let mut d = dataset(10);
        // All the weight on tuple 3.
        let mut w = vec![0.0; 10];
        w[3] = 1.0;
        d.set_weights(w).unwrap();
        let r = weighted_resample(&d, 25, 9);
        assert_eq!(r.len(), 25);
        assert!(r.column(0).as_numeric().unwrap().iter().all(|&v| v == 3.0));
    }

    #[test]
    fn unweighted_resample_is_uniform_bootstrap() {
        let d = dataset(10);
        let r = weighted_resample(&d, 1000, 13);
        // Every tuple should appear at least once with overwhelming probability.
        let xs = r.column(0).as_numeric().unwrap();
        for i in 0..10 {
            assert!(xs.contains(&(i as f64)), "missing tuple {i}");
        }
    }

    #[test]
    #[should_panic]
    fn ratios_reject_overflow() {
        let _ = SplitRatios::new(0.9, 0.2);
    }
}
