//! Property tests for the dataset substrate.

use cf_data::{
    split::split3, split::split3_stratified, Column, Dataset, FeatureEncoding, SplitRatios,
};
use proptest::prelude::*;

/// Strategy producing a random small dataset with one numeric and one
/// categorical attribute, random binary labels and groups.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (4usize..80).prop_flat_map(|n| {
        (
            proptest::collection::vec(-50.0..50.0f64, n),
            proptest::collection::vec(0u8..3, n),
            proptest::collection::vec(0u8..2, n),
            proptest::collection::vec(0u8..2, n),
        )
            .prop_map(move |(x, cat_codes, labels, groups)| {
                let cats: Vec<&str> = cat_codes
                    .iter()
                    .map(|&c| ["a", "b", "c"][c as usize])
                    .collect();
                Dataset::new(
                    "prop",
                    vec!["x".into(), "c".into()],
                    vec![Column::Numeric(x), Column::categorical_from_strs(&cats)],
                    labels,
                    groups,
                )
                .unwrap()
            })
    })
}

proptest! {
    #[test]
    fn split_is_a_partition(d in dataset_strategy(), seed in 0u64..1000) {
        let s = split3(&d, SplitRatios::paper_default(), seed);
        prop_assert_eq!(s.train.len() + s.validation.len() + s.test.len(), d.len());
    }

    #[test]
    fn stratified_split_is_a_partition(d in dataset_strategy(), seed in 0u64..1000) {
        let s = split3_stratified(&d, SplitRatios::paper_default(), seed);
        prop_assert_eq!(s.train.len() + s.validation.len() + s.test.len(), d.len());
    }

    #[test]
    fn cells_partition_the_dataset(d in dataset_strategy()) {
        let total: usize = cf_data::CellIndex::binary_cells()
            .iter()
            .map(|&c| d.cell_indices(c).len())
            .sum();
        prop_assert_eq!(total, d.len());
    }

    #[test]
    fn one_hot_rows_sum_to_one(d in dataset_strategy()) {
        let (enc, m) = FeatureEncoding::fit_transform(&d);
        // Feature layout: [x, c=a, c=b, (c=c)]; one-hot block sums to 1
        // because the generator never produces nulls.
        let hot_width = enc.width() - 1;
        for i in 0..m.rows() {
            let s: f64 = m.row(i)[1..].iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-12, "row {} one-hot sum {} (width {})", i, s, hot_width);
        }
    }

    #[test]
    fn encoded_features_are_bounded(d in dataset_strategy()) {
        let (_, m) = FeatureEncoding::fit_transform(&d);
        for v in m.as_slice() {
            prop_assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn subset_of_all_indices_is_identity(d in dataset_strategy()) {
        let all: Vec<usize> = (0..d.len()).collect();
        prop_assert_eq!(d.subset(&all), d);
    }

    #[test]
    fn summary_fractions_in_range(d in dataset_strategy()) {
        let s = d.summary();
        prop_assert!((0.0..=1.0).contains(&s.minority_fraction));
        prop_assert!((0.0..=1.0).contains(&s.minority_positive_fraction));
    }
}
