//! A single conformance constraint `ϕ : ϵ_lb ≤ F(X) ≤ ϵ_ub`.

/// Guard against division by zero in the violation formula for degenerate
/// (zero-variance) projections — those are the *strongest* constraints, so a
/// tiny σ keeps their violation saturating quickly, as intended.
const MIN_SIGMA: f64 = 1e-9;

/// One arithmetic constraint over a linear projection of numeric attributes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Projection {
    /// Projection coefficients: `F(t) = coeffs · t`.
    pub coeffs: Vec<f64>,
    /// Lower bound `ϵ_lb` observed on the profiled data.
    pub lb: f64,
    /// Upper bound `ϵ_ub` observed on the profiled data.
    pub ub: f64,
    /// Standard deviation `σ(F)` of the projection on the profiled data.
    pub std: f64,
    /// Importance weight `qᵢ` (normalised within a [`crate::ConstraintSet`]).
    pub importance: f64,
}

impl Projection {
    /// Evaluate `F(t)`.
    #[inline]
    pub fn project(&self, t: &[f64]) -> f64 {
        debug_assert_eq!(t.len(), self.coeffs.len());
        cf_linalg::vector::dot(&self.coeffs, t)
    }

    /// `dist(F, t) = max(0, F(t) − ϵ_ub, ϵ_lb − F(t))` — how far outside the
    /// bounds the tuple projects; 0 inside.
    #[inline]
    pub fn distance(&self, t: &[f64]) -> f64 {
        let f = self.project(t);
        (f - self.ub).max(self.lb - f).max(0.0)
    }

    /// `⟦ϕ⟧(t) = η(dist/σ)` with `η(x) = 1 − e^{−x}` — in `[0, 1)`
    /// mathematically; saturates to exactly `1.0` in floating point when the
    /// exponent underflows.
    #[inline]
    pub fn violation(&self, t: &[f64]) -> f64 {
        let d = self.distance(t);
        if d == 0.0 {
            return 0.0;
        }
        1.0 - (-d / self.std.max(MIN_SIGMA)).exp()
    }

    /// Boolean semantics: does the tuple satisfy the constraint?
    #[inline]
    pub fn satisfied(&self, t: &[f64]) -> bool {
        self.distance(t) == 0.0
    }

    /// Render like the paper's Example 6, e.g.
    /// `0.708 <= 0.477*X1 + 0.265*X2 <= 0.902`.
    pub fn display_with(&self, attr_names: &[String]) -> String {
        let terms: Vec<String> = self
            .coeffs
            .iter()
            .enumerate()
            .filter(|(_, c)| c.abs() > 1e-12)
            .map(|(i, c)| {
                let name = attr_names
                    .get(i)
                    .map_or_else(|| format!("X{}", i + 1), Clone::clone);
                format!("{c:.3}*{name}")
            })
            .collect();
        let body = if terms.is_empty() {
            "0".to_string()
        } else {
            terms.join(" + ")
        };
        format!("{:.3} <= {} <= {:.3}", self.lb, body, self.ub)
    }
}

impl std::fmt::Display for Projection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.display_with(&[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The majority-positive constraint of the paper's Example 6.
    fn example6_w() -> Projection {
        Projection {
            coeffs: vec![0.477, 0.265],
            lb: 0.708,
            ub: 0.902,
            std: 0.05,
            importance: 1.0,
        }
    }

    #[test]
    fn project_is_linear() {
        let p = example6_w();
        assert!((p.project(&[1.0, 1.0]) - 0.742).abs() < 1e-12);
        assert!((p.project(&[0.0, 0.0])).abs() < 1e-12);
    }

    #[test]
    fn distance_zero_inside_bounds() {
        let p = example6_w();
        // F = 0.742 ∈ [0.708, 0.902]
        assert_eq!(p.distance(&[1.0, 1.0]), 0.0);
        assert!(p.satisfied(&[1.0, 1.0]));
        assert_eq!(p.violation(&[1.0, 1.0]), 0.0);
    }

    #[test]
    fn distance_positive_outside_both_sides() {
        let p = example6_w();
        // Below: F(0,0) = 0 → dist = 0.708.
        assert!((p.distance(&[0.0, 0.0]) - 0.708).abs() < 1e-12);
        // Above: F(2,2) = 1.484 → dist = 0.582.
        assert!((p.distance(&[2.0, 2.0]) - 0.582).abs() < 1e-12);
        assert!(!p.satisfied(&[0.0, 0.0]));
    }

    #[test]
    fn violation_matches_eta_formula() {
        let p = example6_w();
        let d = p.distance(&[0.0, 0.0]);
        let expected = 1.0 - (-d / 0.05).exp();
        assert!((p.violation(&[0.0, 0.0]) - expected).abs() < 1e-12);
    }

    #[test]
    fn violation_bounded_by_one() {
        let p = example6_w();
        let v = p.violation(&[1000.0, 1000.0]);
        assert!(v <= 1.0 && v > 0.999);
    }

    #[test]
    fn violation_monotone_in_distance() {
        let p = example6_w();
        let mut last = 0.0;
        for k in 0..20 {
            let t = [1.0 + k as f64, 1.0];
            let v = p.violation(&t);
            assert!(v >= last, "violation should not decrease moving away");
            last = v;
        }
    }

    #[test]
    fn zero_sigma_is_guarded() {
        let p = Projection {
            coeffs: vec![1.0],
            lb: 0.0,
            ub: 0.0,
            std: 0.0,
            importance: 1.0,
        };
        let v = p.violation(&[0.5]);
        assert!(
            v > 0.999 && v <= 1.0,
            "degenerate projection saturates: {v}"
        );
        assert_eq!(p.violation(&[0.0]), 0.0);
    }

    #[test]
    fn display_renders_example6_style() {
        let p = example6_w();
        let s = p.display_with(&["X1".into(), "X2".into()]);
        assert_eq!(s, "0.708 <= 0.477*X1 + 0.265*X2 <= 0.902");
        // Fallback naming without attribute names.
        assert_eq!(format!("{p}"), "0.708 <= 0.477*X1 + 0.265*X2 <= 0.902");
    }
}
