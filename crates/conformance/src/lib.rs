//! # cf-conformance
//!
//! Conformance constraints (Fariha et al., SIGMOD 2021) — the data-profiling
//! primitive both ConFair and DiffFair are built on (paper §II-C).
//!
//! A constraint is `ϵ_lb ≤ F(X) ≤ ϵ_ub` for a linear projection `F` of the
//! numeric attributes. A set `Φ` of conjunctive constraints carries
//! quantitative *violation* semantics (paper Eq. 1):
//!
//! ```text
//! ⟦Φ⟧(t)  = Σᵢ qᵢ · ⟦ϕᵢ⟧(t)
//! ⟦ϕᵢ⟧(t) = 1 − e^{−dist(Fᵢ,t)/σ(Fᵢ)}
//! dist    = max(0, Fᵢ(t) − ϵ_ub, ϵ_lb − Fᵢ(t))
//! ```
//!
//! Discovery finds the projections as the principal axes of the profiled
//! subset's attribute covariance: low-variance axes are near-constant linear
//! combinations — exactly the "dense rectangular regions" of the paper's
//! Fig. 1 — and receive the largest importance weights `qᵢ`.
//!
//! Modules:
//! * [`projection`] — a single constraint `ϕ` and its violation.
//! * [`set`] — [`ConstraintSet`] (`Φ`) and [`ConstraintFamily`] (`C`, with
//!   the min-violation used by DiffFair's `PREDICT`).
//! * [`learn`] — discovery from a data matrix.

pub mod learn;
pub mod projection;
pub mod set;

pub use learn::{learn_constraints, LearnOptions};
pub use projection::Projection;
pub use set::{ConstraintFamily, ConstraintSet};
