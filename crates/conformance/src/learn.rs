//! Discovery of conformance constraints from a data matrix.
//!
//! Following Fariha et al., the candidate projections are the principal axes
//! of the profiled subset's attribute covariance: eigenvectors with *low*
//! eigenvalues are near-constant linear combinations of the attributes —
//! the strongest constraints — and the importance weight `qᵢ` rewards
//! exactly that. The paper's literal formula
//! (`qᵢ = 1 − σᵢ/(σ_max − σ_min)`) is ill-defined when projection variances
//! are close (it can go negative, and tiny σ differences flip the weights
//! 0↔1); we use the smooth, scale-aware form `qᵢ ∝ 1/(1 + σᵢ/σ̄)` (σ̄ = mean
//! projection std) which preserves the stated semantics — lower standard
//! deviation ⇒ strictly higher importance, weights sum to 1 — and degrades
//! gracefully to uniform weights for isotropic data. See DESIGN.md §1.
//! Bounds are the observed min/max of each projection, optionally
//! quantile-trimmed.

use crate::{projection::Projection, set::ConstraintSet};
use cf_linalg::{eigen_symmetric, stats, Matrix};

/// Knobs for constraint discovery.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LearnOptions {
    /// Trim this fraction from each tail when setting bounds (0.0 = strict
    /// min/max, the default — Algorithm 3 relies on bounds being sensitive
    /// to outliers *before* filtering, so trimming is off by default).
    pub bound_quantile: f64,
    /// Keep at most this many projections, preferring low variance (`None`
    /// keeps all `m`).
    pub max_projections: Option<usize>,
    /// Floor for the raw importance before normalisation, so the
    /// highest-variance projection still participates slightly.
    pub min_raw_importance: f64,
}

impl Default for LearnOptions {
    fn default() -> Self {
        Self {
            bound_quantile: 0.0,
            max_projections: None,
            min_raw_importance: 0.05,
        }
    }
}

impl LearnOptions {
    /// The configuration used throughout the paper's experiments.
    pub fn paper_default() -> Self {
        Self::default()
    }
}

/// Learn a [`ConstraintSet`] from the rows of `x` (tuples × numeric attrs).
///
/// Mirrors the paper's `GetCCs` subroutine: one constraint per principal
/// axis, bounds from the observed projections, importance from projection
/// variance. Cost: `O(n·m²)` for the covariance plus `O(m³)` for the
/// eigendecomposition — the complexity the paper quotes for Algorithms 1–2.
///
/// # Panics
/// Panics if `x` has no rows or no columns.
pub fn learn_constraints(x: &Matrix, opts: &LearnOptions) -> ConstraintSet {
    assert!(x.rows() > 0, "cannot profile an empty partition");
    assert!(x.cols() > 0, "cannot profile zero attributes");

    let cov = stats::covariance(x).expect("non-empty input");
    let eig = eigen_symmetric(&cov).expect("covariance is symmetric");

    // Eigenvalues arrive sorted descending; σ = sqrt(max(λ, 0)).
    let stds: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
    let sigma_mean = (stds.iter().sum::<f64>() / stds.len() as f64).max(1e-12);

    let mut projections: Vec<Projection> = (0..stds.len())
        .map(|j| {
            let coeffs = eig.vector(j);
            // Project every tuple to find the empirical bounds.
            let values: Vec<f64> = x
                .iter_rows()
                .map(|row| cf_linalg::vector::dot(&coeffs, row))
                .collect();
            let (lb, ub) = if opts.bound_quantile > 0.0 {
                (
                    cf_linalg::vector::quantile(&values, opts.bound_quantile),
                    cf_linalg::vector::quantile(&values, 1.0 - opts.bound_quantile),
                )
            } else {
                let lb = values.iter().copied().fold(f64::INFINITY, f64::min);
                let ub = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                (lb, ub)
            };
            // Smooth inverse-variance importance: strictly decreasing in σ,
            // ~uniform when projections are isotropic (see module docs).
            let raw_q = (1.0 / (1.0 + stds[j] / sigma_mean)).max(opts.min_raw_importance);
            Projection {
                coeffs,
                lb,
                ub,
                std: stds[j],
                importance: raw_q,
            }
        })
        .collect();

    if let Some(k) = opts.max_projections {
        // Prefer the strongest (lowest-variance) constraints; eigenvalues are
        // sorted descending so the low-variance axes are at the tail.
        projections.sort_by(|a, b| a.std.partial_cmp(&b.std).expect("NaN std"));
        projections.truncate(k.max(1));
    }

    ConstraintSet::new(projections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Points near the line x2 = 2·x1 with tiny perpendicular noise.
    fn near_line(n: usize, noise: f64, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let t: f64 = rng.gen_range(0.0..10.0);
                let e: f64 = rng.gen_range(-noise..noise);
                // Perpendicular direction to (1,2)/√5 is (2,-1)/√5.
                vec![t + 2.0 * e, 2.0 * t - e]
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn training_tuples_have_zero_violation_with_minmax_bounds() {
        let x = near_line(100, 0.05, 1);
        let cs = learn_constraints(&x, &LearnOptions::default());
        for row in x.iter_rows() {
            assert_eq!(cs.violation(row), 0.0, "training tuple must conform");
        }
    }

    #[test]
    fn off_manifold_points_violate() {
        let x = near_line(200, 0.02, 2);
        let cs = learn_constraints(&x, &LearnOptions::default());
        // A point far off the line (but within the x1 range).
        let off = [5.0, 0.0];
        assert!(cs.violation(&off) > 0.1, "violation {}", cs.violation(&off));
        // A point on the line but outside the sampled range.
        let beyond = [20.0, 40.0];
        assert!(cs.violation(&beyond) > 0.0);
    }

    #[test]
    fn low_variance_axis_gets_high_importance() {
        let x = near_line(300, 0.01, 3);
        let cs = learn_constraints(&x, &LearnOptions::default());
        // The projection with the smaller std must carry more importance.
        let p = cs.projections();
        let (strong, weak) = if p[0].std < p[1].std {
            (&p[0], &p[1])
        } else {
            (&p[1], &p[0])
        };
        assert!(strong.importance > weak.importance);
        // And its direction is ≈ (2,-1)/√5 (up to sign).
        let c = &strong.coeffs;
        let expect = [2.0 / 5.0_f64.sqrt(), -1.0 / 5.0_f64.sqrt()];
        let align = (c[0] * expect[0] + c[1] * expect[1]).abs();
        assert!(align > 0.999, "alignment {align}");
    }

    #[test]
    fn quantile_bounds_tighten() {
        let x = near_line(500, 0.1, 4);
        let strict = learn_constraints(&x, &LearnOptions::default());
        let trimmed = learn_constraints(
            &x,
            &LearnOptions {
                bound_quantile: 0.05,
                ..LearnOptions::default()
            },
        );
        // Compare the width of the first (highest-variance) constraint.
        let w_strict = strict.projections()[0].ub - strict.projections()[0].lb;
        let w_trim = trimmed.projections()[0].ub - trimmed.projections()[0].lb;
        assert!(w_trim < w_strict);
    }

    #[test]
    fn max_projections_keeps_strongest() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| {
                let a: f64 = rng.gen_range(-1.0..1.0);
                let b: f64 = rng.gen_range(-1.0..1.0);
                // Third attribute is a near-constant combination.
                vec![a, b, 0.5 * a - 0.5 * b + rng.gen_range(-1e-3..1e-3)]
            })
            .collect();
        let x = Matrix::from_rows(&rows);
        let cs = learn_constraints(
            &x,
            &LearnOptions {
                max_projections: Some(1),
                ..LearnOptions::default()
            },
        );
        assert_eq!(cs.len(), 1);
        // That single constraint is the near-constant direction: tiny std.
        assert!(cs.projections()[0].std < 0.01);
    }

    #[test]
    fn constant_data_yields_degenerate_but_valid_constraints() {
        let x = Matrix::from_rows(&(0..10).map(|_| vec![1.0, 2.0]).collect::<Vec<_>>());
        let cs = learn_constraints(&x, &LearnOptions::default());
        assert_eq!(cs.violation(&[1.0, 2.0]), 0.0);
        assert!(cs.violation(&[5.0, 5.0]) > 0.9, "any deviation saturates");
    }

    #[test]
    fn single_attribute_profile() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let cs = learn_constraints(&x, &LearnOptions::default());
        assert_eq!(cs.len(), 1);
        assert_eq!(cs.violation(&[2.0]), 0.0);
        assert!(cs.violation(&[10.0]) > 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_partition_panics() {
        let _ = learn_constraints(&Matrix::zeros(0, 2), &LearnOptions::default());
    }
}
