//! Conjunctive constraint sets `Φ` and collections `C` of them.

use crate::projection::Projection;

/// A conjunction `Φ = ϕ₁ ∧ … ∧ ϕᵣ` with quantitative violation semantics.
///
/// Importance weights are normalised at construction so `Σ qᵢ = 1`, making
/// the set violation `⟦Φ⟧(t) = Σ qᵢ·⟦ϕᵢ⟧(t)` a convex combination in `[0, 1]`
/// (1 is reached only when every conjunct's violation saturates).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintSet {
    projections: Vec<Projection>,
}

impl ConstraintSet {
    /// Build a set, normalising the importance weights to sum to 1.
    ///
    /// # Panics
    /// Panics if `projections` is empty or importances are all non-positive.
    pub fn new(mut projections: Vec<Projection>) -> Self {
        assert!(!projections.is_empty(), "a constraint set cannot be empty");
        let total: f64 = projections.iter().map(|p| p.importance.max(0.0)).sum();
        assert!(total > 0.0, "importance weights must have positive mass");
        for p in &mut projections {
            p.importance = p.importance.max(0.0) / total;
        }
        Self { projections }
    }

    /// The constraints in this set.
    pub fn projections(&self) -> &[Projection] {
        &self.projections
    }

    /// Number of conjuncts `r`.
    pub fn len(&self) -> usize {
        self.projections.len()
    }

    /// Whether the set is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.projections.is_empty()
    }

    /// Quantitative violation `⟦Φ⟧(t) ∈ [0, 1]` (paper Eq. 1).
    pub fn violation(&self, t: &[f64]) -> f64 {
        self.projections
            .iter()
            .map(|p| p.importance * p.violation(t))
            .sum()
    }

    /// Boolean semantics: `Φ(t) = 1` iff every conjunct holds.
    pub fn satisfied(&self, t: &[f64]) -> bool {
        self.projections.iter().all(|p| p.satisfied(t))
    }

    /// Mean violation over the rows of a matrix (reported in Example 6).
    pub fn mean_violation(&self, x: &cf_linalg::Matrix) -> f64 {
        if x.rows() == 0 {
            return 0.0;
        }
        x.iter_rows().map(|row| self.violation(row)).sum::<f64>() / x.rows() as f64
    }

    /// Recompute each projection's `σ(Fᵢ)` over the rows of `x`, keeping the
    /// bounds untouched.
    ///
    /// Used by DiffFair after Algorithm-3 filtering: bounds come from the
    /// dense core `D′`, but scaling the violation by the *full* cell's
    /// projection spread keeps `⟦Φ⟧` discriminative far from the core
    /// (σ from the tiny filtered subset saturates `η` within a fraction of a
    /// cluster width, making distant tuples all look equally violating).
    pub fn recompute_stds(&mut self, x: &cf_linalg::Matrix) {
        for p in &mut self.projections {
            let values: Vec<f64> = x
                .iter_rows()
                .map(|row| cf_linalg::vector::dot(&p.coeffs, row))
                .collect();
            let std = cf_linalg::vector::std_dev(&values);
            if std > 0.0 {
                p.std = std;
            }
        }
    }

    /// Render each conjunct on its own line (Example 6 style).
    pub fn display_with(&self, attr_names: &[String]) -> String {
        self.projections
            .iter()
            .map(|p| p.display_with(attr_names))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

// Manual serde impls: deserialisation must *not* route through
// [`ConstraintSet::new`], whose importance re-normalisation divides by a sum
// that is only approximately 1 — that ulp-level drift would break the
// bit-identical restore contract checkpointing relies on. The stored
// (already normalised) importances are reinstated verbatim.
impl serde::Serialize for ConstraintSet {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![("projections".into(), self.projections.to_value())])
    }
}

impl serde::Deserialize for ConstraintSet {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let projections: Vec<Projection> =
            serde::Deserialize::from_value(v.get_or_err("projections")?)?;
        if projections.is_empty() {
            return Err(serde::Error::msg("a constraint set cannot be empty"));
        }
        if projections
            .iter()
            .any(|p| p.importance.is_nan() || p.importance < 0.0)
        {
            return Err(serde::Error::msg(
                "constraint importances must be non-negative",
            ));
        }
        Ok(ConstraintSet { projections })
    }
}

/// A collection `C` of constraint sets — e.g. one `Φ` per label class within
/// a group, as Algorithm 1 builds (`Cw`, `Cu`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConstraintFamily {
    sets: Vec<ConstraintSet>,
}

impl ConstraintFamily {
    /// An empty family (sets added with [`ConstraintFamily::push`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from existing sets.
    pub fn from_sets(sets: Vec<ConstraintSet>) -> Self {
        Self { sets }
    }

    /// Add a set (Algorithm 1 line 8: `C ← C ∪ Φ`).
    pub fn push(&mut self, set: ConstraintSet) {
        self.sets.push(set);
    }

    /// The member sets.
    pub fn sets(&self) -> &[ConstraintSet] {
        &self.sets
    }

    /// Number of member sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the family holds no sets.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// `v(t) = min_{Φ ∈ C} ⟦Φ⟧(t)` — Algorithm 1 lines 15–16. Returns
    /// `f64::INFINITY` for an empty family so an absent group never wins
    /// the model-selection comparison.
    pub fn min_violation(&self, t: &[f64]) -> f64 {
        self.sets
            .iter()
            .map(|s| s.violation(t))
            .fold(f64::INFINITY, f64::min)
    }

    /// Index of the set with minimal violation (`None` when empty).
    pub fn argmin_violation(&self, t: &[f64]) -> Option<usize> {
        let violations: Vec<f64> = self.sets.iter().map(|s| s.violation(t)).collect();
        cf_linalg::vector::argmin(&violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proj(coeffs: Vec<f64>, lb: f64, ub: f64, std: f64, importance: f64) -> Projection {
        Projection {
            coeffs,
            lb,
            ub,
            std,
            importance,
        }
    }

    #[test]
    fn importance_normalised_at_construction() {
        let s = ConstraintSet::new(vec![
            proj(vec![1.0, 0.0], 0.0, 1.0, 0.1, 3.0),
            proj(vec![0.0, 1.0], 0.0, 1.0, 0.1, 1.0),
        ]);
        let q: Vec<f64> = s.projections().iter().map(|p| p.importance).collect();
        assert!((q[0] - 0.75).abs() < 1e-12);
        assert!((q[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn violation_is_weighted_sum() {
        let s = ConstraintSet::new(vec![
            proj(vec![1.0, 0.0], 0.0, 1.0, 0.5, 1.0),
            proj(vec![0.0, 1.0], 0.0, 1.0, 0.5, 1.0),
        ]);
        // Point (2, 0.5): first constraint violated (dist 1), second satisfied.
        let expected = 0.5 * (1.0 - (-1.0 / 0.5_f64).exp());
        assert!((s.violation(&[2.0, 0.5]) - expected).abs() < 1e-12);
        assert!(!s.satisfied(&[2.0, 0.5]));
        assert!(s.satisfied(&[0.5, 0.5]));
    }

    #[test]
    fn violation_in_unit_interval() {
        let s = ConstraintSet::new(vec![
            proj(vec![1.0], 0.0, 1.0, 0.001, 1.0),
            proj(vec![-1.0], -1.0, 0.0, 0.001, 1.0),
        ]);
        let v = s.violation(&[1e9]);
        assert!((0.0..=1.0).contains(&v));
        assert!(v > 0.99);
        assert_eq!(s.violation(&[0.5]), 0.0);
    }

    #[test]
    fn mean_violation_averages() {
        let s = ConstraintSet::new(vec![proj(vec![1.0], 0.0, 1.0, 1.0, 1.0)]);
        let x = cf_linalg::Matrix::from_rows(&[vec![0.5], vec![2.0]]);
        let v_inside = 0.0;
        let v_outside = 1.0 - (-1.0_f64).exp();
        assert!((s.mean_violation(&x) - (v_inside + v_outside) / 2.0).abs() < 1e-12);
        assert_eq!(s.mean_violation(&cf_linalg::Matrix::zeros(0, 1)), 0.0);
    }

    #[test]
    fn family_min_violation_selects_best_set() {
        let a = ConstraintSet::new(vec![proj(vec![1.0], 0.0, 1.0, 1.0, 1.0)]);
        let b = ConstraintSet::new(vec![proj(vec![1.0], 10.0, 11.0, 1.0, 1.0)]);
        let fam = ConstraintFamily::from_sets(vec![a, b]);
        // 0.5 satisfies set 0; 10.5 satisfies set 1.
        assert_eq!(fam.min_violation(&[0.5]), 0.0);
        assert_eq!(fam.min_violation(&[10.5]), 0.0);
        assert_eq!(fam.argmin_violation(&[0.5]), Some(0));
        assert_eq!(fam.argmin_violation(&[10.5]), Some(1));
        // 5.5 violates both, min is positive.
        assert!(fam.min_violation(&[5.5]) > 0.0);
    }

    #[test]
    fn empty_family_never_wins() {
        let fam = ConstraintFamily::new();
        assert!(fam.is_empty());
        assert_eq!(fam.min_violation(&[0.0]), f64::INFINITY);
        assert_eq!(fam.argmin_violation(&[0.0]), None);
    }

    #[test]
    #[should_panic]
    fn empty_set_rejected() {
        let _ = ConstraintSet::new(vec![]);
    }

    #[test]
    fn recompute_stds_rescales_violation_not_bounds() {
        // Bounds from a tight core; σ rescaled on a wider population.
        let core = cf_linalg::Matrix::from_rows(&[vec![0.0], vec![0.1], vec![0.2]]);
        let wide = cf_linalg::Matrix::from_rows(&[vec![-3.0], vec![0.0], vec![3.0]]);
        let mut s = crate::learn::learn_constraints(&core, &crate::learn::LearnOptions::default());
        let before = s.violation(&[2.0]);
        let (lb, ub) = (s.projections()[0].lb, s.projections()[0].ub);
        s.recompute_stds(&wide);
        assert_eq!(s.projections()[0].lb, lb, "bounds unchanged");
        assert_eq!(s.projections()[0].ub, ub);
        let after = s.violation(&[2.0]);
        assert!(
            after < before,
            "wider σ saturates slower: {after} < {before}"
        );
        // Conformance (violation = 0) is unchanged inside the bounds.
        assert_eq!(s.violation(&[0.1]), 0.0);
        // Zero-variance rescale data leaves σ untouched.
        let constant = cf_linalg::Matrix::from_rows(&[vec![1.0], vec![1.0]]);
        let sigma = s.projections()[0].std;
        s.recompute_stds(&constant);
        assert_eq!(s.projections()[0].std, sigma);
    }

    #[test]
    fn example6_average_violations() {
        // Reproduce the spirit of Example 6: points inside the minority
        // constraint region have ⟦ϕu⟧ = 0 while ⟦ϕw⟧ > 0.
        let phi_w = ConstraintSet::new(vec![proj(vec![0.477, 0.265], 0.708, 0.902, 0.05, 1.0)]);
        let phi_u = ConstraintSet::new(vec![proj(vec![-0.519, -0.16], -0.912, -0.771, 0.05, 1.0)]);
        // The corner of the minority-positive dense region of Fig. 1
        // (X1 = 1.5, X2 = 0.8): F_w = 0.9275 > 0.902, F_u = -0.9065 within bounds.
        let t = [1.5, 0.8];
        assert_eq!(
            phi_u.violation(&t),
            0.0,
            "conforms to the minority constraints"
        );
        assert!(
            phi_w.violation(&t) > 0.0,
            "violates the majority constraints"
        );
    }
}
