//! Property tests for conformance-constraint invariants.

use cf_conformance::{
    learn_constraints, ConstraintFamily, ConstraintSet, LearnOptions, Projection,
};
use cf_linalg::Matrix;
use proptest::prelude::*;

fn data_matrix() -> impl Strategy<Value = Matrix> {
    (5usize..60, 1usize..5).prop_flat_map(|(n, d)| {
        proptest::collection::vec(-50.0..50.0f64, n * d)
            .prop_map(move |data| Matrix::from_vec(n, d, data))
    })
}

fn arb_projection() -> impl Strategy<Value = Projection> {
    (
        proptest::collection::vec(-2.0..2.0f64, 1..4),
        -5.0..0.0f64,
        0.0..5.0f64,
        0.01..2.0f64,
        0.1..10.0f64,
    )
        .prop_map(|(coeffs, lb, ub, std, importance)| Projection {
            coeffs,
            lb,
            ub,
            std,
            importance,
        })
}

proptest! {
    #[test]
    fn learned_constraints_admit_training_tuples(x in data_matrix()) {
        let cs = learn_constraints(&x, &LearnOptions::default());
        for row in x.iter_rows() {
            // Strict min/max bounds ⇒ every profiled tuple conforms
            // (tolerance for floating-point at the boundary).
            prop_assert!(cs.violation(row) < 1e-9);
        }
    }

    #[test]
    fn violation_in_unit_interval(x in data_matrix(), probe in proptest::collection::vec(-200.0..200.0f64, 1..5)) {
        prop_assume!(probe.len() == x.cols());
        let cs = learn_constraints(&x, &LearnOptions::default());
        let v = cs.violation(&probe);
        prop_assert!((0.0..=1.0).contains(&v), "violation {}", v);
    }

    #[test]
    fn importances_sum_to_one(x in data_matrix()) {
        let cs = learn_constraints(&x, &LearnOptions::default());
        let total: f64 = cs.projections().iter().map(|p| p.importance).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn satisfied_iff_zero_violation(p in arb_projection(), t in proptest::collection::vec(-10.0..10.0f64, 1..4)) {
        prop_assume!(t.len() == p.coeffs.len());
        prop_assert_eq!(p.satisfied(&t), p.violation(&t) == 0.0);
    }

    #[test]
    fn violation_monotone_along_rays(p in arb_projection(), scale in 1.0..10.0f64) {
        // Pick a point guaranteed outside: project far beyond ub.
        let t: Vec<f64> = p.coeffs.iter().map(|&c| c * 100.0).collect();
        prop_assume!(p.project(&t) > p.ub);
        let further: Vec<f64> = t.iter().map(|&v| v * scale).collect();
        prop_assert!(p.violation(&further) >= p.violation(&t) - 1e-12);
    }

    #[test]
    fn family_min_is_lower_bound_of_members(x in data_matrix(), probe in proptest::collection::vec(-100.0..100.0f64, 1..5)) {
        prop_assume!(probe.len() == x.cols());
        let a = learn_constraints(&x, &LearnOptions::default());
        let b = learn_constraints(&x, &LearnOptions { bound_quantile: 0.1, ..LearnOptions::default() });
        let fam = ConstraintFamily::from_sets(vec![a.clone(), b.clone()]);
        let m = fam.min_violation(&probe);
        prop_assert!(m <= a.violation(&probe) + 1e-12);
        prop_assert!(m <= b.violation(&probe) + 1e-12);
    }

    #[test]
    fn quantile_bounds_never_widen(x in data_matrix()) {
        let strict = learn_constraints(&x, &LearnOptions::default());
        let trimmed = learn_constraints(&x, &LearnOptions { bound_quantile: 0.1, ..LearnOptions::default() });
        for (s, t) in strict.projections().iter().zip(trimmed.projections()) {
            prop_assert!(t.lb >= s.lb - 1e-9);
            prop_assert!(t.ub <= s.ub + 1e-9);
        }
    }
}

#[test]
fn constraint_set_display_is_line_per_conjunct() {
    let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 2.0], vec![2.0, 4.0]]);
    let cs = learn_constraints(&x, &LearnOptions::default());
    let names = vec!["X1".to_string(), "X2".to_string()];
    let rendered = cs.display_with(&names);
    assert_eq!(rendered.lines().count(), cs.len());
    assert!(rendered.contains("<="));
}

#[test]
fn empty_family_is_infinite() {
    let fam = ConstraintFamily::new();
    assert_eq!(fam.min_violation(&[1.0]), f64::INFINITY);
}

#[test]
fn set_round_trip_through_family() {
    let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
    let cs = learn_constraints(&x, &LearnOptions::default());
    let mut fam = ConstraintFamily::new();
    fam.push(cs.clone());
    assert_eq!(fam.sets(), std::slice::from_ref(&cs));
    let _ = ConstraintSet::new(cs.projections().to_vec());
}
