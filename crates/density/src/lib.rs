//! # cf-density
//!
//! Kernel density estimation and the paper's Algorithm 3.
//!
//! §III-C of the paper strengthens conformance constraints by filtering each
//! (group, label) partition down to its densest tuples before profiling:
//! a tree-based non-parametric KDE scores every tuple, the partition is
//! sorted by density, and the top-k survive. This crate provides
//!
//! * [`Kde`] — exact Gaussian-kernel density estimation with Scott's-rule
//!   bandwidth on standardised attributes;
//! * [`KdTree`] + [`TreeKde`] — a k-d tree with truncated-kernel range
//!   pruning, the `O(m log n)`-flavoured path the paper cites for higher
//!   dimensions;
//! * [`density_filter`] — **Algorithm 3** itself, returning the retained
//!   tuple indices per cell.

pub mod filter;
pub mod kde;
pub mod kdtree;

pub use filter::{density_filter, density_filter_dataset, FilterConfig};
pub use kde::Kde;
pub use kdtree::{KdTree, TreeKde};
