//! Exact Gaussian-kernel density estimation.
//!
//! Attributes are standardised before kernel evaluation so one scalar
//! bandwidth (Scott's rule, `h = n^{-1/(d+4)}`) is appropriate for every
//! dimension — the same convention scikit-learn's `KernelDensity` users
//! apply, and the estimator the paper plugs into Algorithm 3.

use cf_linalg::{stats::Standardizer, Matrix};

/// A fitted Gaussian KDE over the rows of a data matrix.
#[derive(Debug, Clone)]
pub struct Kde {
    /// Standardised training points.
    points: Matrix,
    /// Standardisation fitted on the training points.
    standardizer: Standardizer,
    /// Kernel bandwidth in standardised units.
    bandwidth: f64,
    /// `(2π)^{d/2} (nh^d)` normalisation denominator.
    norm: f64,
}

impl Kde {
    /// Fit with Scott's-rule bandwidth.
    ///
    /// # Panics
    /// Panics on an empty matrix.
    pub fn fit(x: &Matrix) -> Self {
        let n = x.rows();
        let d = x.cols().max(1);
        assert!(n > 0, "KDE requires at least one point");
        let bandwidth = (n as f64).powf(-1.0 / (d as f64 + 4.0));
        Self::fit_with_bandwidth(x, bandwidth)
    }

    /// Fit with an explicit bandwidth (standardised units).
    ///
    /// # Panics
    /// Panics on an empty matrix or non-positive bandwidth.
    pub fn fit_with_bandwidth(x: &Matrix, bandwidth: f64) -> Self {
        assert!(x.rows() > 0, "KDE requires at least one point");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        let standardizer = Standardizer::fit(x);
        let points = standardizer.transform(x);
        let n = points.rows() as f64;
        let d = points.cols() as f64;
        let norm = (2.0 * std::f64::consts::PI).powf(d / 2.0) * n * bandwidth.powf(d);
        Self {
            points,
            standardizer,
            bandwidth,
            norm,
        }
    }

    /// The bandwidth in use (standardised units).
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.points.rows()
    }

    /// Whether the KDE holds zero points (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.points.rows() == 0
    }

    /// Density at a single point (original, unstandardised coordinates).
    pub fn density(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.points.cols(), "dimension mismatch");
        let mut q = point.to_vec();
        self.standardizer.transform_point(&mut q);
        self.density_standardized(&q)
    }

    /// Density for a standardised query point.
    pub(crate) fn density_standardized(&self, q: &[f64]) -> f64 {
        let h2 = 2.0 * self.bandwidth * self.bandwidth;
        let mut sum = 0.0;
        for row in self.points.iter_rows() {
            let d2 = cf_linalg::vector::dist2_sq(row, q);
            sum += (-d2 / h2).exp();
        }
        sum / self.norm
    }

    /// Densities of every row of `x` (original coordinates).
    pub fn densities(&self, x: &Matrix) -> Vec<f64> {
        let z = self.standardizer.transform(x);
        z.iter_rows()
            .map(|q| self.density_standardized(q))
            .collect()
    }

    /// Densities of the training points themselves (leave-in estimates,
    /// which is what Algorithm 3 ranks by).
    pub fn self_densities(&self) -> Vec<f64> {
        (0..self.points.rows())
            .map(|i| self.density_standardized(self.points.row(i)))
            .collect()
    }

    /// Borrow the standardised training points (used by [`crate::TreeKde`]).
    pub(crate) fn standardized_points(&self) -> &Matrix {
        &self.points
    }

    /// Borrow the standardiser (used by [`crate::TreeKde`]).
    pub(crate) fn standardizer(&self) -> &Standardizer {
        &self.standardizer
    }

    /// The normalisation constant (used by [`crate::TreeKde`]).
    pub(crate) fn norm(&self) -> f64 {
        self.norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_and_outlier() -> Matrix {
        // 5 points tightly clustered at the origin, one far away.
        Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![-0.1, 0.0],
            vec![0.0, -0.1],
            vec![10.0, 10.0],
        ])
    }

    #[test]
    fn cluster_points_are_denser_than_outliers() {
        let kde = Kde::fit(&cluster_and_outlier());
        let d = kde.self_densities();
        let outlier = d[5];
        for (i, &di) in d.iter().take(5).enumerate() {
            assert!(
                di > outlier,
                "cluster point {i} should out-dense the outlier"
            );
        }
    }

    #[test]
    fn density_positive_everywhere() {
        let kde = Kde::fit(&cluster_and_outlier());
        assert!(kde.density(&[100.0, -100.0]) >= 0.0);
        assert!(kde.density(&[0.0, 0.0]) > 0.0);
    }

    #[test]
    fn density_decreases_away_from_mass() {
        let kde = Kde::fit(&cluster_and_outlier());
        let near = kde.density(&[0.0, 0.0]);
        let mid = kde.density(&[3.0, 3.0]);
        let far = kde.density(&[8.0, 8.0]);
        assert!(near > mid);
        // `far` is close to the outlier point so it may exceed `mid`; only
        // the cluster-vs-mid ordering is a stable property.
        assert!(far > 0.0);
    }

    #[test]
    fn scott_bandwidth_shrinks_with_n() {
        let small = Kde::fit(&Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]));
        let rows: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64 / 100.0]).collect();
        let large = Kde::fit(&Matrix::from_rows(&rows));
        assert!(large.bandwidth() < small.bandwidth());
    }

    #[test]
    fn densities_match_pointwise_density() {
        let x = cluster_and_outlier();
        let kde = Kde::fit(&x);
        let batch = kde.densities(&x);
        for (i, &b) in batch.iter().enumerate() {
            let single = kde.density(x.row(i));
            assert!((b - single).abs() < 1e-12);
        }
    }

    #[test]
    fn single_point_kde_is_finite() {
        let kde = Kde::fit(&Matrix::from_rows(&[vec![1.0, 2.0]]));
        let d = kde.density(&[1.0, 2.0]);
        assert!(d.is_finite() && d > 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_input_panics() {
        let _ = Kde::fit(&Matrix::zeros(0, 2));
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let kde = Kde::fit(&Matrix::from_rows(&[vec![0.0, 0.0]]));
        let _ = kde.density(&[0.0]);
    }
}
