//! **Algorithm 3** — density filtering for stronger conformance constraints.
//!
//! For each class `i` of the target attribute, the majority subset `Wᵢ` and
//! minority subset `Uᵢ` are scored with a KDE over their numeric attributes,
//! sorted in descending density, and the densest `k` tuples of each are kept.
//! The output `D′ ⊂ D` is what the profiling step (conformance-constraint
//! discovery) runs on; training data is untouched — the intervention stays
//! non-invasive.

use crate::{kde::Kde, kdtree::TreeKde};
use cf_data::{CellIndex, Dataset};

/// Configuration for [`density_filter`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FilterConfig {
    /// Fraction of each (group, label) cell to keep. The paper uses
    /// `k = 0.2·n` for every dataset (§IV "Algorithm parameters").
    pub keep_fraction: f64,
    /// Use the k-d-tree-accelerated KDE above this cell size; below it the
    /// exact estimator is cheaper (no tree build cost).
    pub tree_threshold: usize,
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self {
            keep_fraction: 0.2,
            tree_threshold: 512,
        }
    }
}

impl FilterConfig {
    /// The paper's configuration (keep the densest 20% of every cell).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Keep a different fraction.
    pub fn with_fraction(keep_fraction: f64) -> Self {
        assert!(
            keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep fraction must be in (0, 1]"
        );
        Self {
            keep_fraction,
            ..Self::default()
        }
    }
}

/// Run Algorithm 3, returning the retained tuple indices (into `ds`),
/// grouped per (group, label) cell in [`CellIndex::binary_cells`] order.
pub fn density_filter(ds: &Dataset, config: FilterConfig) -> Vec<(CellIndex, Vec<usize>)> {
    let mut kept = Vec::with_capacity(4);
    for cell in CellIndex::binary_cells() {
        let members = ds.cell_indices(cell);
        if members.is_empty() {
            kept.push((cell, Vec::new()));
            continue;
        }
        let k = ((members.len() as f64) * config.keep_fraction).ceil() as usize;
        let k = k.clamp(1, members.len());
        if k == members.len() {
            kept.push((cell, members));
            continue;
        }
        let x = ds.numeric_matrix(Some(&members));
        let densities = if members.len() >= config.tree_threshold {
            TreeKde::fit(&x).self_densities()
        } else {
            Kde::fit(&x).self_densities()
        };
        // Sort cell members by descending density; ties broken by original
        // index for determinism.
        let mut ranked: Vec<usize> = (0..members.len()).collect();
        ranked.sort_by(|&a, &b| {
            densities[b]
                .partial_cmp(&densities[a])
                .expect("NaN density")
                .then(members[a].cmp(&members[b]))
        });
        let mut chosen: Vec<usize> = ranked[..k].iter().map(|&r| members[r]).collect();
        chosen.sort_unstable();
        kept.push((cell, chosen));
    }
    kept
}

/// Algorithm 3 as a dataset transform: `D′ ⊂ D` with all cells concatenated.
pub fn density_filter_dataset(ds: &Dataset, config: FilterConfig) -> Dataset {
    let mut indices: Vec<usize> = density_filter(ds, config)
        .into_iter()
        .flat_map(|(_, idx)| idx)
        .collect();
    indices.sort_unstable();
    ds.subset(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::Column;

    /// Two groups × two labels; each cell has a tight cluster plus outliers.
    fn clustered_dataset() -> Dataset {
        let mut x1 = Vec::new();
        let mut x2 = Vec::new();
        let mut labels = Vec::new();
        let mut groups = Vec::new();
        let centers = [
            (0u8, 0u8, 0.0, 0.0),
            (0u8, 1u8, 5.0, 0.0),
            (1u8, 0u8, 0.0, 5.0),
            (1u8, 1u8, 5.0, 5.0),
        ];
        for &(g, y, cx, cy) in &centers {
            // 8 core points very close to the center…
            for i in 0..8 {
                x1.push(cx + 0.01 * i as f64);
                x2.push(cy + 0.01 * i as f64);
                labels.push(y);
                groups.push(g);
            }
            // …and 2 outliers far away.
            for i in 0..2 {
                x1.push(cx + 30.0 + i as f64 * 10.0);
                x2.push(cy - 30.0);
                labels.push(y);
                groups.push(g);
            }
        }
        Dataset::new(
            "clustered",
            vec!["x1".into(), "x2".into()],
            vec![Column::Numeric(x1), Column::Numeric(x2)],
            labels,
            groups,
        )
        .unwrap()
    }

    #[test]
    fn filter_keeps_core_drops_outliers() {
        let ds = clustered_dataset();
        // Keep 50% of each 10-member cell → 5 tuples, all from the core 8.
        let kept = density_filter(&ds, FilterConfig::with_fraction(0.5));
        for (cell, idx) in &kept {
            assert_eq!(idx.len(), 5, "cell {cell:?}");
            let x = ds.numeric_matrix(Some(idx));
            // All retained points are core points (|x1| coordinate near its center).
            for row in x.iter_rows() {
                assert!(row[0] < 10.0, "outlier survived the filter: {row:?}");
            }
        }
    }

    #[test]
    fn filter_respects_fraction_per_cell() {
        let ds = clustered_dataset();
        let kept = density_filter(&ds, FilterConfig::with_fraction(0.2));
        for (_, idx) in &kept {
            assert_eq!(idx.len(), 2); // ceil(0.2 * 10)
        }
    }

    #[test]
    fn full_fraction_keeps_everything() {
        let ds = clustered_dataset();
        let filtered = density_filter_dataset(&ds, FilterConfig::with_fraction(1.0));
        assert_eq!(filtered.len(), ds.len());
    }

    #[test]
    fn filtered_dataset_is_subset_with_cell_structure() {
        let ds = clustered_dataset();
        let filtered = density_filter_dataset(&ds, FilterConfig::paper_default());
        assert_eq!(filtered.len(), 8); // 4 cells × ceil(0.2·10)
        for cell in CellIndex::binary_cells() {
            assert_eq!(filtered.cell_count(cell), 2);
        }
    }

    #[test]
    fn empty_cells_are_tolerated() {
        let ds = Dataset::new(
            "tiny",
            vec!["x".into()],
            vec![Column::Numeric(vec![1.0, 2.0])],
            vec![1, 1],
            vec![0, 0],
        )
        .unwrap();
        let kept = density_filter(&ds, FilterConfig::paper_default());
        let total: usize = kept.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 1); // only cell (0,1) is non-empty: ceil(0.2·2) = 1
    }

    #[test]
    fn deterministic_across_runs() {
        let ds = clustered_dataset();
        let a = density_filter(&ds, FilterConfig::paper_default());
        let b = density_filter(&ds, FilterConfig::paper_default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn zero_fraction_rejected() {
        let _ = FilterConfig::with_fraction(0.0);
    }
}
