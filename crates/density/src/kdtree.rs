//! A k-d tree and the truncated-kernel KDE built on it.
//!
//! The paper notes Algorithm 3's `O(mn²)` KDE cost "can be improved to
//! `O(m log n)` using optimized data structures such as KD-Tree". This module
//! is that path: the Gaussian kernel is numerically zero beyond a few
//! bandwidths, so each density query only needs the points within a cutoff
//! radius, which the tree finds with box pruning.

use crate::kde::Kde;
use cf_linalg::Matrix;

/// How many bandwidths out the Gaussian kernel is treated as zero.
/// exp(-(4)²/2) ≈ 3.4e-4 relative contribution — far below the ranking
/// resolution Algorithm 3 needs.
const CUTOFF_BANDWIDTHS: f64 = 4.0;

/// Maximum leaf size; smaller leaves prune better but allocate more nodes.
const LEAF_SIZE: usize = 16;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        start: usize,
        end: usize,
    },
    Split {
        left: usize,
        right: usize,
        /// Bounding box of the subtree, per-dimension (min, max). Queries
        /// prune on the box directly, which subsumes split-plane pruning.
        bbox: Vec<(f64, f64)>,
    },
}

/// A k-d tree over the rows of a matrix.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<Node>,
    /// Row indices into `points`, permuted so leaves are contiguous runs.
    order: Vec<usize>,
    points: Matrix,
    root: usize,
}

impl KdTree {
    /// Build a tree over the rows of `points`.
    ///
    /// # Panics
    /// Panics on an empty matrix.
    pub fn build(points: Matrix) -> Self {
        assert!(points.rows() > 0, "KdTree requires at least one point");
        let mut order: Vec<usize> = (0..points.rows()).collect();
        let mut nodes = Vec::new();
        let n = points.rows();
        let root = Self::build_rec(&points, &mut order, &mut nodes, 0, n);
        Self {
            nodes,
            order,
            points,
            root,
        }
    }

    fn bbox_of(points: &Matrix, order: &[usize], start: usize, end: usize) -> Vec<(f64, f64)> {
        let d = points.cols();
        let mut bbox = vec![(f64::INFINITY, f64::NEG_INFINITY); d];
        for &i in &order[start..end] {
            for (b, &v) in bbox.iter_mut().zip(points.row(i)) {
                b.0 = b.0.min(v);
                b.1 = b.1.max(v);
            }
        }
        bbox
    }

    fn build_rec(
        points: &Matrix,
        order: &mut Vec<usize>,
        nodes: &mut Vec<Node>,
        start: usize,
        end: usize,
    ) -> usize {
        if end - start <= LEAF_SIZE {
            nodes.push(Node::Leaf { start, end });
            return nodes.len() - 1;
        }
        let bbox = Self::bbox_of(points, order, start, end);
        // Split on the widest dimension at the median.
        let (dim, _) = bbox
            .iter()
            .enumerate()
            .map(|(j, (lo, hi))| (j, hi - lo))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN extent"))
            .expect("non-empty bbox");
        let mid = (start + end) / 2;
        order[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
            points[(a, dim)]
                .partial_cmp(&points[(b, dim)])
                .expect("NaN coordinate")
        });
        let left = Self::build_rec(points, order, nodes, start, mid);
        let right = Self::build_rec(points, order, nodes, mid, end);
        nodes.push(Node::Split { left, right, bbox });
        nodes.len() - 1
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.rows()
    }

    /// Whether the tree indexes zero points (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.points.rows() == 0
    }

    /// Minimum squared distance from `q` to an axis-aligned box.
    fn bbox_min_dist_sq(q: &[f64], bbox: &[(f64, f64)]) -> f64 {
        q.iter()
            .zip(bbox)
            .map(|(&x, &(lo, hi))| {
                let d = if x < lo {
                    lo - x
                } else if x > hi {
                    x - hi
                } else {
                    0.0
                };
                d * d
            })
            .sum()
    }

    /// Collect the indices of all points within `radius` of `q`.
    pub fn within_radius(&self, q: &[f64], radius: f64, out: &mut Vec<usize>) {
        out.clear();
        let r2 = radius * radius;
        let mut stack = vec![self.root];
        while let Some(ni) = stack.pop() {
            match &self.nodes[ni] {
                Node::Leaf { start, end } => {
                    for &i in &self.order[*start..*end] {
                        if cf_linalg::vector::dist2_sq(self.points.row(i), q) <= r2 {
                            out.push(i);
                        }
                    }
                }
                Node::Split {
                    left, right, bbox, ..
                } => {
                    if Self::bbox_min_dist_sq(q, bbox) <= r2 {
                        stack.push(*left);
                        stack.push(*right);
                    }
                }
            }
        }
    }

    /// Sum of `exp(-‖p − q‖² / (2h²))` over points within the cutoff radius.
    fn truncated_kernel_sum(&self, q: &[f64], bandwidth: f64) -> f64 {
        let radius = CUTOFF_BANDWIDTHS * bandwidth;
        let r2 = radius * radius;
        let h2 = 2.0 * bandwidth * bandwidth;
        let mut sum = 0.0;
        let mut stack = vec![self.root];
        while let Some(ni) = stack.pop() {
            match &self.nodes[ni] {
                Node::Leaf { start, end } => {
                    for &i in &self.order[*start..*end] {
                        let d2 = cf_linalg::vector::dist2_sq(self.points.row(i), q);
                        if d2 <= r2 {
                            sum += (-d2 / h2).exp();
                        }
                    }
                }
                Node::Split {
                    left, right, bbox, ..
                } => {
                    if Self::bbox_min_dist_sq(q, bbox) <= r2 {
                        stack.push(*left);
                        stack.push(*right);
                    }
                }
            }
        }
        sum
    }
}

/// KDE accelerated by a k-d tree with a truncated Gaussian kernel.
///
/// Produces densities within a relative error of `~3e-4` of the exact
/// [`Kde`] — indistinguishable for density *ranking*, which is all
/// Algorithm 3 consumes.
#[derive(Debug, Clone)]
pub struct TreeKde {
    exact: Kde,
    tree: KdTree,
}

impl TreeKde {
    /// Fit with Scott's-rule bandwidth.
    pub fn fit(x: &Matrix) -> Self {
        let exact = Kde::fit(x);
        let tree = KdTree::build(exact.standardized_points().clone());
        Self { exact, tree }
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.exact.bandwidth()
    }

    /// Density at a point in original coordinates.
    pub fn density(&self, point: &[f64]) -> f64 {
        let mut q = point.to_vec();
        self.exact.standardizer().transform_point(&mut q);
        self.tree.truncated_kernel_sum(&q, self.exact.bandwidth()) / self.exact.norm()
    }

    /// Leave-in densities of the training points (Algorithm 3's ranking key).
    pub fn self_densities(&self) -> Vec<f64> {
        let pts = self.exact.standardized_points();
        (0..pts.rows())
            .map(|i| {
                self.tree
                    .truncated_kernel_sum(pts.row(i), self.exact.bandwidth())
                    / self.exact.norm()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-3.0..3.0)).collect())
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn within_radius_matches_linear_scan() {
        let pts = random_points(200, 3, 1);
        let tree = KdTree::build(pts.clone());
        let q = [0.5, -0.5, 0.0];
        let r = 1.25;
        let mut got = Vec::new();
        tree.within_radius(&q, r, &mut got);
        got.sort_unstable();
        let want: Vec<usize> = (0..pts.rows())
            .filter(|&i| cf_linalg::vector::dist2_sq(pts.row(i), &q) <= r * r)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn within_radius_zero_radius_finds_exact_point() {
        let pts = random_points(50, 2, 2);
        let tree = KdTree::build(pts.clone());
        let q: Vec<f64> = pts.row(17).to_vec();
        let mut got = Vec::new();
        tree.within_radius(&q, 1e-12, &mut got);
        assert!(got.contains(&17));
    }

    #[test]
    fn tree_kde_matches_exact_kde_ranking() {
        let pts = random_points(300, 2, 3);
        let exact = Kde::fit(&pts);
        let tree = TreeKde::fit(&pts);
        let de = exact.self_densities();
        let dt = tree.self_densities();
        // Relative error bounded by the kernel truncation.
        for (e, t) in de.iter().zip(&dt) {
            assert!(
                (e - t).abs() <= 5e-3 * e.max(1e-300),
                "exact {e} vs tree {t}"
            );
        }
        // Ranking of the top-20% must agree (what Algorithm 3 consumes).
        let top = |d: &[f64]| {
            let mut idx: Vec<usize> = (0..d.len()).collect();
            idx.sort_by(|&a, &b| d[b].partial_cmp(&d[a]).unwrap());
            idx.truncate(d.len() / 5);
            idx.sort_unstable();
            idx
        };
        assert_eq!(top(&de), top(&dt));
    }

    #[test]
    fn tree_kde_pointwise_close_to_exact() {
        let pts = random_points(150, 4, 4);
        let exact = Kde::fit(&pts);
        let tree = TreeKde::fit(&pts);
        for i in (0..pts.rows()).step_by(17) {
            let p = pts.row(i);
            let e = exact.density(p);
            let t = tree.density(p);
            assert!((e - t).abs() <= 5e-3 * e.max(1e-300));
        }
    }

    #[test]
    fn single_point_tree() {
        let pts = Matrix::from_rows(&[vec![1.0, 1.0]]);
        let tree = KdTree::build(pts);
        let mut out = Vec::new();
        tree.within_radius(&[1.0, 1.0], 0.1, &mut out);
        assert_eq!(out, vec![0]);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn degenerate_identical_points() {
        let pts = Matrix::from_rows(&(0..40).map(|_| vec![2.0, 2.0]).collect::<Vec<_>>());
        let tree = KdTree::build(pts);
        let mut out = Vec::new();
        tree.within_radius(&[2.0, 2.0], 0.5, &mut out);
        assert_eq!(out.len(), 40);
    }
}
