//! Property tests for the fairness metrics.

use cf_metrics::{Confusion, FairnessReport, GroupConfusion};
use proptest::prelude::*;

fn triples() -> impl Strategy<Value = (Vec<u8>, Vec<u8>, Vec<u8>)> {
    (2usize..100).prop_flat_map(|n| {
        (
            proptest::collection::vec(0u8..2, n),
            proptest::collection::vec(0u8..2, n),
            proptest::collection::vec(0u8..2, n),
        )
    })
}

proptest! {
    #[test]
    fn metric_ranges((y, p, g) in triples()) {
        let gc = GroupConfusion::compute(&y, &p, &g);
        prop_assert!((0.0..=1.0).contains(&gc.di_star()));
        prop_assert!((0.0..=1.0).contains(&gc.aod_star()));
        prop_assert!((0.0..=1.0).contains(&gc.balanced_accuracy()));
        prop_assert!((0.0..=1.0).contains(&gc.eq_odds_fnr_gap()));
        prop_assert!((0.0..=1.0).contains(&gc.eq_odds_fpr_gap()));
        prop_assert!((0.0..=1.0).contains(&gc.selection_rate_gap()));
        prop_assert!(gc.disparate_impact() >= 0.0);
    }

    #[test]
    fn group_counts_sum_to_overall((y, p, g) in triples()) {
        let gc = GroupConfusion::compute(&y, &p, &g);
        let overall = gc.overall();
        prop_assert_eq!(overall.total(), y.len() as u64);
        prop_assert_eq!(
            gc.majority.total() + gc.minority.total(),
            overall.total()
        );
    }

    #[test]
    fn per_group_matches_filtered_pairs((y, p, g) in triples()) {
        let gc = GroupConfusion::compute(&y, &p, &g);
        let filter = |target: u8| -> (Vec<u8>, Vec<u8>) {
            let yy: Vec<u8> = y.iter().zip(&g).filter(|(_, &gi)| gi == target).map(|(&v, _)| v).collect();
            let pp: Vec<u8> = p.iter().zip(&g).filter(|(_, &gi)| gi == target).map(|(&v, _)| v).collect();
            (yy, pp)
        };
        let (yw, pw) = filter(0);
        prop_assert_eq!(gc.majority, Confusion::from_pairs(&yw, &pw));
        let (yu, pu) = filter(1);
        prop_assert_eq!(gc.minority, Confusion::from_pairs(&yu, &pu));
    }

    #[test]
    fn perfect_predictions_maximise_balacc((y, _, g) in triples()) {
        let gc = GroupConfusion::compute(&y, &y, &g);
        prop_assert!((gc.balanced_accuracy() - 1.0).abs() < 1e-12);
        prop_assert_eq!(gc.aod_star(), 1.0);
    }

    #[test]
    fn di_star_is_symmetric_in_groups((y, p, g) in triples()) {
        // Swapping the group labels inverts DI but leaves DI* unchanged.
        let gc = GroupConfusion::compute(&y, &p, &g);
        let swapped: Vec<u8> = g.iter().map(|&v| 1 - v).collect();
        let gs = GroupConfusion::compute(&y, &p, &swapped);
        prop_assert!((gc.di_star() - gs.di_star()).abs() < 1e-12);
    }

    #[test]
    fn report_mean_is_bounded_by_extremes((y, p, g) in triples()) {
        let gc = GroupConfusion::compute(&y, &p, &g);
        let r1 = FairnessReport::from_confusion("D", "M", "LR", &gc, 1.0);
        let mut r2 = r1.clone();
        r2.di_star = (r2.di_star + 0.3).min(1.0);
        let lo = r1.di_star.min(r2.di_star);
        let hi = r1.di_star.max(r2.di_star);
        let m = FairnessReport::mean(&[r1, r2]);
        prop_assert!(m.di_star >= lo - 1e-12 && m.di_star <= hi + 1e-12);
    }

    #[test]
    fn merge_is_commutative((y, p, g) in triples()) {
        let gc = GroupConfusion::compute(&y, &p, &g);
        prop_assert_eq!(
            gc.majority.merge(&gc.minority),
            gc.minority.merge(&gc.majority)
        );
    }
}
