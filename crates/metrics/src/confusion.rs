//! Confusion counts and the rate/fairness metrics derived from them.

/// Binary confusion counts for one population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl Confusion {
    /// Tally counts from aligned truth/prediction slices.
    ///
    /// # Panics
    /// Panics if lengths disagree.
    pub fn from_pairs(y_true: &[u8], y_pred: &[u8]) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
        let mut c = Confusion::default();
        for (&t, &p) in y_true.iter().zip(y_pred) {
            match (t, p) {
                (1, 1) => c.tp += 1,
                (0, 1) => c.fp += 1,
                (0, 0) => c.tn += 1,
                (1, 0) => c.fn_ += 1,
                _ => panic!("labels must be binary, got ({t}, {p})"),
            }
        }
        c
    }

    /// Merge counts from another population.
    pub fn merge(&self, other: &Confusion) -> Confusion {
        Confusion {
            tp: self.tp + other.tp,
            fp: self.fp + other.fp,
            tn: self.tn + other.tn,
            fn_: self.fn_ + other.fn_,
        }
    }

    /// Population size.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Number of positive ground-truth tuples.
    pub fn positives(&self) -> u64 {
        self.tp + self.fn_
    }

    /// Number of negative ground-truth tuples.
    pub fn negatives(&self) -> u64 {
        self.fp + self.tn
    }

    /// Selection rate `|{ŷ = 1}| / n`; 0 for an empty population.
    pub fn selection_rate(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            0.0
        } else {
            (self.tp + self.fp) as f64 / n as f64
        }
    }

    /// True positive rate (sensitivity); 1 when there are no positives
    /// (nothing to miss — keeps BalAcc meaningful on degenerate slices).
    pub fn tpr(&self) -> f64 {
        let p = self.positives();
        if p == 0 {
            1.0
        } else {
            self.tp as f64 / p as f64
        }
    }

    /// True negative rate (specificity); 1 when there are no negatives.
    pub fn tnr(&self) -> f64 {
        let n = self.negatives();
        if n == 0 {
            1.0
        } else {
            self.tn as f64 / n as f64
        }
    }

    /// False positive rate `1 − TNR`.
    pub fn fpr(&self) -> f64 {
        1.0 - self.tnr()
    }

    /// False negative rate `1 − TPR`.
    pub fn fnr(&self) -> f64 {
        1.0 - self.tpr()
    }

    /// Balanced accuracy `(TPR + TNR) / 2`.
    pub fn balanced_accuracy(&self) -> f64 {
        0.5 * (self.tpr() + self.tnr())
    }

    /// Whether the predictions collapse to a single class — the paper's
    /// "devolved to useless predictions" criterion (crisscross bars).
    pub fn is_degenerate(&self) -> bool {
        let predicted_pos = self.tp + self.fp;
        let predicted_neg = self.tn + self.fn_;
        self.total() > 0 && (predicted_pos == 0 || predicted_neg == 0)
    }
}

/// Confusion counts split by group, with the paper's fairness metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupConfusion {
    /// Counts over the majority `W` (`g = 0`).
    pub majority: Confusion,
    /// Counts over the minority `U` (`g = 1`).
    pub minority: Confusion,
}

impl GroupConfusion {
    /// Tally from aligned truth/prediction/group slices.
    ///
    /// # Panics
    /// Panics if lengths disagree or labels are non-binary.
    pub fn compute(y_true: &[u8], y_pred: &[u8], groups: &[u8]) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
        assert_eq!(y_true.len(), groups.len(), "length mismatch");
        let mut majority = Confusion::default();
        let mut minority = Confusion::default();
        for i in 0..y_true.len() {
            let c = if groups[i] == 0 {
                &mut majority
            } else {
                &mut minority
            };
            match (y_true[i], y_pred[i]) {
                (1, 1) => c.tp += 1,
                (0, 1) => c.fp += 1,
                (0, 0) => c.tn += 1,
                (1, 0) => c.fn_ += 1,
                (t, p) => panic!("labels must be binary, got ({t}, {p})"),
            }
        }
        Self { majority, minority }
    }

    /// Combined counts over both groups.
    pub fn overall(&self) -> Confusion {
        self.majority.merge(&self.minority)
    }

    /// Disparate impact `SR_U / SR_W` ∈ `[0, ∞]`; 1 when both rates are 0
    /// (equal treatment), `∞` when only the majority rate is 0.
    pub fn disparate_impact(&self) -> f64 {
        let sr_w = self.majority.selection_rate();
        let sr_u = self.minority.selection_rate();
        if sr_w == 0.0 && sr_u == 0.0 {
            1.0
        } else if sr_w == 0.0 {
            f64::INFINITY
        } else {
            sr_u / sr_w
        }
    }

    /// `DI* = min(DI, 1/DI)` ∈ `[0, 1]` — higher is fairer.
    pub fn di_star(&self) -> f64 {
        let di = self.disparate_impact();
        if di.is_infinite() || di == 0.0 {
            0.0
        } else {
            di.min(1.0 / di)
        }
    }

    /// Whether the bias favours the minority (`DI > 1`) — the striped bars
    /// in the paper's figures.
    pub fn favors_minority(&self) -> bool {
        self.disparate_impact() > 1.0
    }

    /// Average odds difference `((FPR_U−FPR_W) + (TPR_U−TPR_W)) / 2`.
    pub fn aod(&self) -> f64 {
        0.5 * ((self.minority.fpr() - self.majority.fpr())
            + (self.minority.tpr() - self.majority.tpr()))
    }

    /// `AOD* = 1 − |AOD|` ∈ `[0, 1]` — higher is fairer.
    pub fn aod_star(&self) -> f64 {
        1.0 - self.aod().abs()
    }

    /// Equalized-Odds gap by FNR: `|FNR_U − FNR_W|` (Fig. 8b/9b target).
    pub fn eq_odds_fnr_gap(&self) -> f64 {
        (self.minority.fnr() - self.majority.fnr()).abs()
    }

    /// Equalized-Odds gap by FPR: `|FPR_U − FPR_W|` (Fig. 8c/9c target).
    pub fn eq_odds_fpr_gap(&self) -> f64 {
        (self.minority.fpr() - self.majority.fpr()).abs()
    }

    /// Selection-rate gap `|SR_U − SR_W|` (the Fig. 8a/9a series).
    pub fn selection_rate_gap(&self) -> f64 {
        (self.minority.selection_rate() - self.majority.selection_rate()).abs()
    }

    /// Overall balanced accuracy (the paper's utility metric).
    pub fn balanced_accuracy(&self) -> f64 {
        self.overall().balanced_accuracy()
    }

    /// Whether the overall predictions collapsed to one class.
    pub fn is_degenerate(&self) -> bool {
        self.overall().is_degenerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_from_pairs() {
        let c = Confusion::from_pairs(&[1, 1, 0, 0, 1], &[1, 0, 0, 1, 1]);
        assert_eq!(c.tp, 2);
        assert_eq!(c.fn_, 1);
        assert_eq!(c.tn, 1);
        assert_eq!(c.fp, 1);
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn rates_match_manual() {
        let c = Confusion {
            tp: 8,
            fp: 2,
            tn: 6,
            fn_: 4,
        };
        assert!((c.tpr() - 8.0 / 12.0).abs() < 1e-12);
        assert!((c.tnr() - 6.0 / 8.0).abs() < 1e-12);
        assert!((c.fpr() - 2.0 / 8.0).abs() < 1e-12);
        assert!((c.fnr() - 4.0 / 12.0).abs() < 1e-12);
        assert!((c.selection_rate() - 10.0 / 20.0).abs() < 1e-12);
        assert!((c.balanced_accuracy() - 0.5 * (8.0 / 12.0 + 6.0 / 8.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_population_rates_are_benign() {
        let c = Confusion::default();
        assert_eq!(c.selection_rate(), 0.0);
        assert_eq!(c.tpr(), 1.0);
        assert_eq!(c.tnr(), 1.0);
        assert_eq!(c.balanced_accuracy(), 1.0);
        assert!(!c.is_degenerate());
    }

    #[test]
    fn degenerate_detection() {
        // All predictions positive.
        let c = Confusion::from_pairs(&[1, 0, 1], &[1, 1, 1]);
        assert!(c.is_degenerate());
        assert_eq!(c.balanced_accuracy(), 0.5); // TPR 1, TNR 0
        let ok = Confusion::from_pairs(&[1, 0], &[1, 0]);
        assert!(!ok.is_degenerate());
    }

    #[test]
    fn group_split_and_overall() {
        let y = [1, 0, 1, 0, 1, 0];
        let p = [1, 0, 0, 1, 1, 1];
        let g = [0, 0, 0, 1, 1, 1];
        let gc = GroupConfusion::compute(&y, &p, &g);
        assert_eq!(gc.majority.total(), 3);
        assert_eq!(gc.minority.total(), 3);
        assert_eq!(gc.overall().total(), 6);
    }

    #[test]
    fn disparate_impact_known_case() {
        // W: 4 tuples, 2 selected → SR 0.5. U: 4 tuples, 1 selected → SR 0.25.
        let y = [1, 1, 0, 0, 1, 1, 0, 0];
        let p = [1, 1, 0, 0, 1, 0, 0, 0];
        let g = [0, 0, 0, 0, 1, 1, 1, 1];
        let gc = GroupConfusion::compute(&y, &p, &g);
        assert!((gc.disparate_impact() - 0.5).abs() < 1e-12);
        assert!((gc.di_star() - 0.5).abs() < 1e-12);
        assert!(!gc.favors_minority());
    }

    #[test]
    fn di_star_symmetric_around_one() {
        // Favoring minority 2:1 → DI = 2, DI* = 0.5.
        let y = [1, 0, 1, 1];
        let p = [1, 0, 1, 1];
        let g = [0, 0, 1, 1];
        let gc = GroupConfusion::compute(&y, &p, &g);
        assert!((gc.disparate_impact() - 2.0).abs() < 1e-12);
        assert!((gc.di_star() - 0.5).abs() < 1e-12);
        assert!(gc.favors_minority());
    }

    #[test]
    fn di_edge_cases() {
        // Nobody selected anywhere → DI = 1 (equal).
        let gc = GroupConfusion::compute(&[0, 0], &[0, 0], &[0, 1]);
        assert_eq!(gc.disparate_impact(), 1.0);
        assert_eq!(gc.di_star(), 1.0);
        // Only minority selected → DI = ∞ → DI* = 0.
        let gc = GroupConfusion::compute(&[0, 1], &[0, 1], &[0, 1]);
        assert!(gc.disparate_impact().is_infinite());
        assert_eq!(gc.di_star(), 0.0);
    }

    #[test]
    fn aod_perfect_parity_is_one() {
        // Identical behaviour on both groups → AOD 0 → AOD* 1.
        let y = [1, 0, 1, 0];
        let p = [1, 0, 1, 0];
        let g = [0, 0, 1, 1];
        let gc = GroupConfusion::compute(&y, &p, &g);
        assert_eq!(gc.aod(), 0.0);
        assert_eq!(gc.aod_star(), 1.0);
        assert_eq!(gc.eq_odds_fnr_gap(), 0.0);
        assert_eq!(gc.eq_odds_fpr_gap(), 0.0);
    }

    #[test]
    fn aod_known_asymmetry() {
        // W: TPR 1, FPR 0. U: TPR 0, FPR 1.
        let y = [1, 0, 1, 0];
        let p = [1, 0, 0, 1];
        let g = [0, 0, 1, 1];
        let gc = GroupConfusion::compute(&y, &p, &g);
        assert!((gc.aod() - 0.0).abs() < 1e-12); // (+1 −1)/2 = 0 — offsetting errors
        assert_eq!(gc.eq_odds_fnr_gap(), 1.0);
        assert_eq!(gc.eq_odds_fpr_gap(), 1.0);
    }

    #[test]
    fn selection_rate_gap_matches_di_direction() {
        let y = [1, 1, 1, 1];
        let p = [1, 1, 1, 0];
        let g = [0, 0, 1, 1];
        let gc = GroupConfusion::compute(&y, &p, &g);
        assert!((gc.selection_rate_gap() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn non_binary_labels_panic() {
        let _ = Confusion::from_pairs(&[2], &[0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = GroupConfusion::compute(&[1], &[1, 0], &[0, 0]);
    }
}
