//! # cf-metrics
//!
//! Group-fairness and utility metrics exactly as the paper's §IV defines
//! them:
//!
//! * **BalAcc** — balanced accuracy `(TPR + TNR) / 2`, the utility metric.
//! * **DI** — disparate impact `SR_U / SR_W`; reported as
//!   `DI* = min(DI, 1/DI)` so that higher is always fairer.
//! * **AOD** — average odds difference
//!   `((FPR_U − FPR_W) + (TPR_U − TPR_W)) / 2`; reported as
//!   `AOD* = 1 − |AOD|`.
//! * **Equalized-Odds gaps** by FNR and FPR (the Fig. 8/9 targets).
//!
//! [`GroupConfusion`] computes everything from `(y, ŷ, g)` triples;
//! [`FairnessReport`] is the serialisable row every experiment prints.

pub mod confusion;
pub mod report;

pub use confusion::{Confusion, GroupConfusion};
pub use report::FairnessReport;
