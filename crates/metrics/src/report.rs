//! The serialisable result row every experiment prints and stores.

use crate::confusion::GroupConfusion;
use serde::{Deserialize, Serialize};

/// One evaluation outcome: a (dataset, method, learner) cell of a paper
/// figure, with every metric §IV reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessReport {
    /// Dataset name (e.g. "MEPS").
    pub dataset: String,
    /// Intervention name (e.g. "ConFair", "KAM", "NoIntervention").
    pub method: String,
    /// Learner name ("LR" or "XGB").
    pub learner: String,
    /// `DI* = min(DI, 1/DI)` — higher is fairer.
    pub di_star: f64,
    /// Raw disparate impact `SR_U / SR_W` (∞ serialises as `null`).
    pub disparate_impact: f64,
    /// `AOD* = 1 − |AOD|` — higher is fairer.
    pub aod_star: f64,
    /// Raw average odds difference.
    pub aod: f64,
    /// Balanced accuracy (utility).
    pub balanced_accuracy: f64,
    /// Majority selection rate.
    pub sr_majority: f64,
    /// Minority selection rate.
    pub sr_minority: f64,
    /// Equalized-odds gap by FNR.
    pub eq_odds_fnr_gap: f64,
    /// Equalized-odds gap by FPR.
    pub eq_odds_fpr_gap: f64,
    /// Whether the bias favours the minority (paper's striped bars).
    pub favors_minority: bool,
    /// Whether predictions collapsed to one class (paper's crisscross bars).
    pub degenerate: bool,
    /// Wall-clock seconds for the intervention + training (Fig. 14).
    pub runtime_secs: f64,
}

impl FairnessReport {
    /// Assemble a report from a computed [`GroupConfusion`].
    pub fn from_confusion(
        dataset: impl Into<String>,
        method: impl Into<String>,
        learner: impl Into<String>,
        gc: &GroupConfusion,
        runtime_secs: f64,
    ) -> Self {
        Self {
            dataset: dataset.into(),
            method: method.into(),
            learner: learner.into(),
            di_star: gc.di_star(),
            disparate_impact: gc.disparate_impact(),
            aod_star: gc.aod_star(),
            aod: gc.aod(),
            balanced_accuracy: gc.balanced_accuracy(),
            sr_majority: gc.majority.selection_rate(),
            sr_minority: gc.minority.selection_rate(),
            eq_odds_fnr_gap: gc.eq_odds_fnr_gap(),
            eq_odds_fpr_gap: gc.eq_odds_fpr_gap(),
            favors_minority: gc.favors_minority(),
            degenerate: gc.is_degenerate(),
            runtime_secs,
        }
    }

    /// Element-wise mean of several reports (metadata from the first);
    /// `degenerate`/`favors_minority` become majority votes. This is how the
    /// paper aggregates its 20 repetitions.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn mean(reports: &[FairnessReport]) -> FairnessReport {
        assert!(!reports.is_empty(), "cannot average zero reports");
        let n = reports.len() as f64;
        let avg = |f: fn(&FairnessReport) -> f64| -> f64 {
            let finite: Vec<f64> = reports.iter().map(f).filter(|v| v.is_finite()).collect();
            if finite.is_empty() {
                f64::INFINITY
            } else {
                finite.iter().sum::<f64>() / finite.len() as f64
            }
        };
        let votes = |f: fn(&FairnessReport) -> bool| -> bool {
            reports.iter().filter(|r| f(r)).count() * 2 > reports.len()
        };
        FairnessReport {
            dataset: reports[0].dataset.clone(),
            method: reports[0].method.clone(),
            learner: reports[0].learner.clone(),
            di_star: avg(|r| r.di_star),
            disparate_impact: avg(|r| r.disparate_impact),
            aod_star: avg(|r| r.aod_star),
            aod: avg(|r| r.aod),
            balanced_accuracy: avg(|r| r.balanced_accuracy),
            sr_majority: avg(|r| r.sr_majority),
            sr_minority: avg(|r| r.sr_minority),
            eq_odds_fnr_gap: avg(|r| r.eq_odds_fnr_gap),
            eq_odds_fpr_gap: avg(|r| r.eq_odds_fpr_gap),
            favors_minority: votes(|r| r.favors_minority),
            degenerate: votes(|r| r.degenerate),
            runtime_secs: reports.iter().map(|r| r.runtime_secs).sum::<f64>() / n,
        }
    }

    /// A compact single-line rendering for experiment stdout.
    pub fn one_line(&self) -> String {
        let marks = match (self.degenerate, self.favors_minority) {
            (true, _) => " [DEGENERATE]",
            (false, true) => " [favors U]",
            (false, false) => "",
        };
        format!(
            "{:<8} {:<16} {:<4}  DI*={:.3} AOD*={:.3} BalAcc={:.3}{}",
            self.dataset,
            self.method,
            self.learner,
            self.di_star,
            self.aod_star,
            self.balanced_accuracy,
            marks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confusion::GroupConfusion;

    fn sample_confusion() -> GroupConfusion {
        GroupConfusion::compute(
            &[1, 1, 0, 0, 1, 1, 0, 0],
            &[1, 1, 0, 0, 1, 0, 0, 0],
            &[0, 0, 0, 0, 1, 1, 1, 1],
        )
    }

    #[test]
    fn report_mirrors_confusion() {
        let gc = sample_confusion();
        let r = FairnessReport::from_confusion("D", "M", "LR", &gc, 1.5);
        assert_eq!(r.di_star, gc.di_star());
        assert_eq!(r.aod_star, gc.aod_star());
        assert_eq!(r.balanced_accuracy, gc.balanced_accuracy());
        assert_eq!(r.runtime_secs, 1.5);
    }

    #[test]
    fn mean_averages_metrics() {
        let gc = sample_confusion();
        let mut a = FairnessReport::from_confusion("D", "M", "LR", &gc, 1.0);
        let mut b = a.clone();
        a.di_star = 0.4;
        b.di_star = 0.8;
        let m = FairnessReport::mean(&[a, b]);
        assert!((m.di_star - 0.6).abs() < 1e-12);
        assert_eq!(m.dataset, "D");
    }

    #[test]
    fn mean_skips_non_finite_di() {
        let gc = sample_confusion();
        let mut a = FairnessReport::from_confusion("D", "M", "LR", &gc, 1.0);
        let mut b = a.clone();
        a.disparate_impact = f64::INFINITY;
        b.disparate_impact = 0.5;
        let m = FairnessReport::mean(&[a, b]);
        assert!((m.disparate_impact - 0.5).abs() < 1e-12);
    }

    #[test]
    fn majority_vote_flags() {
        let gc = sample_confusion();
        let base = FairnessReport::from_confusion("D", "M", "LR", &gc, 1.0);
        let mut degen = base.clone();
        degen.degenerate = true;
        let m = FairnessReport::mean(&[base.clone(), degen.clone(), degen]);
        assert!(m.degenerate);
    }

    #[test]
    fn serde_round_trip() {
        let gc = sample_confusion();
        let r = FairnessReport::from_confusion("D", "M", "XGB", &gc, 0.25);
        let json = serde_json::to_string(&r).unwrap();
        let back: FairnessReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn one_line_contains_key_metrics() {
        let gc = sample_confusion();
        let r = FairnessReport::from_confusion("MEPS", "ConFair", "LR", &gc, 0.0);
        let line = r.one_line();
        assert!(line.contains("MEPS"));
        assert!(line.contains("DI*="));
        assert!(line.contains("BalAcc="));
    }

    #[test]
    #[should_panic]
    fn mean_of_empty_panics() {
        let _ = FairnessReport::mean(&[]);
    }
}
