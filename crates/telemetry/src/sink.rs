//! The subscriber seam: where engines hand events to the outside world.
//!
//! Engines emit through a shared [`EventSink`] handle ([`SharedSink`], an
//! `Arc<Mutex<…>>` so a monitor clone taken for checkpointing shares the
//! sink rather than forking the trail). The default is no sink at all —
//! the emission branch is skipped entirely, keeping the null path free —
//! with three implementations provided: [`NullSink`] (explicit no-op),
//! [`RingSink`] (bounded in-memory buffer for tests and live debugging),
//! and [`JsonlSink`] (the append-only audit trail: one JSON object per
//! line, fsynced after every drift alert so the evidence that matters
//! most survives a crash).

use crate::event::TelemetryEvent;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A subscriber for [`TelemetryEvent`]s. `Send` because the async
/// engines emit from their monitor thread.
///
/// `emit` is infallible by design — it sits on the monitoring path, and
/// a telemetry failure must never stall or poison the stream. Fallible
/// sinks (like [`JsonlSink`]) record their last error for the operator
/// to inspect instead of returning it.
pub trait EventSink: Send {
    /// Receive one event.
    fn emit(&mut self, event: &TelemetryEvent);

    /// Flush any buffered events to durable storage. No-op by default.
    fn flush(&mut self) {}
}

/// How engines hold a sink: shared and lockable, so the sync engine, a
/// checkpoint clone, and a monitor thread can all feed one trail.
pub type SharedSink = Arc<Mutex<dyn EventSink>>;

/// Wrap a sink for installation on an engine.
pub fn shared_sink<S: EventSink + 'static>(sink: S) -> SharedSink {
    Arc::new(Mutex::new(sink))
}

/// Discards every event. Installing it is equivalent to (but measurably
/// slower than) installing no sink, since the engine still pays the lock
/// and the delta bookkeeping; useful for isolating sink cost in benches.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _event: &TelemetryEvent) {}
}

/// Keeps the most recent `capacity` events in memory — the test and
/// debugging sink.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<TelemetryEvent>,
    seen: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            seen: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.events.iter().cloned().collect()
    }

    /// Drain and return the retained events, oldest first.
    pub fn take(&mut self) -> Vec<TelemetryEvent> {
        self.events.drain(..).collect()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever emitted to this sink (including evicted ones).
    pub fn total_seen(&self) -> u64 {
        self.seen
    }
}

impl EventSink for RingSink {
    fn emit(&mut self, event: &TelemetryEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event.clone());
        self.seen += 1;
    }
}

/// A deterministic write-fault schedule for [`JsonlSink`], compiled only
/// with the `fault-injection` feature: the named 0-based *write
/// attempts* (including spill-retry attempts) fail with a synthetic I/O
/// error instead of reaching the file. Schedules are attempt-indexed
/// rather than clock-based so a chaos run replays byte-for-byte.
#[cfg(feature = "fault-injection")]
#[derive(Debug, Clone, Default)]
pub struct WriteFaultPlan {
    /// Failing attempt indices, sorted.
    fail: Vec<u64>,
    /// Every attempt at or past this index fails (a permanent outage).
    fail_from: Option<u64>,
    attempts: u64,
}

#[cfg(feature = "fault-injection")]
impl WriteFaultPlan {
    /// Fail the given 0-based write attempts (order and duplicates are
    /// normalised away).
    pub fn failing_attempts(mut attempts: Vec<u64>) -> Self {
        attempts.sort_unstable();
        attempts.dedup();
        WriteFaultPlan {
            fail: attempts,
            fail_from: None,
            attempts: 0,
        }
    }

    /// Fail `count` consecutive attempts starting at `start` — the
    /// "disk goes away, then comes back" shape.
    pub fn fail_range(start: u64, count: u64) -> Self {
        Self::failing_attempts((start..start.saturating_add(count)).collect())
    }

    /// Fail every attempt from `start` on — the disk never comes back.
    pub fn fail_from(start: u64) -> Self {
        WriteFaultPlan {
            fail: Vec::new(),
            fail_from: Some(start),
            attempts: 0,
        }
    }

    /// Consume one attempt slot; `true` when it is scheduled to fail.
    fn on_write(&mut self) -> bool {
        let attempt = self.attempts;
        self.attempts += 1;
        self.fail_from.is_some_and(|from| attempt >= from)
            || self.fail.binary_search(&attempt).is_ok()
    }

    /// Write attempts the plan has seen.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }
}

/// The append-only JSONL audit trail: one compact JSON object per line,
/// written through a buffer, **fsynced after every critical event** (and
/// on [`flush`](EventSink::flush)) so alert evidence is durable the
/// moment it is raised. Replays through [`crate::replay()`] into the
/// exact snapshot/alert sequence of the live run.
///
/// # Failure handling
///
/// A write failure no longer costs the trail: the serialised line is
/// **spilled** to a bounded in-memory ring and retried with backoff —
/// later emits (and every [`flush`](EventSink::flush)) first try to
/// drain the spill in order, so a transient I/O hiccup re-emits its
/// backlog on recovery and the file stays a gap-free prefix-plus-suffix
/// of the logical trail. Backoff is counted in *skipped emits* rather
/// than wall-clock time (the sink owns no clock, and attempt-counted
/// backoff keeps fault schedules deterministic). Only when the spill
/// ring itself overflows are the oldest lines dropped, counted by
/// [`spill_dropped`](JsonlSink::spill_dropped).
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
    path: PathBuf,
    lines: u64,
    error: Option<String>,
    /// Serialised lines awaiting re-emission, oldest first.
    spill: VecDeque<String>,
    spill_capacity: usize,
    spilled_total: u64,
    spill_dropped: u64,
    recovered: u64,
    /// Consecutive failed write attempts (drives the backoff).
    failures: u32,
    /// Emits to let pass before the next spill-drain attempt.
    skip_budget: u32,
    #[cfg(feature = "fault-injection")]
    faults: Option<WriteFaultPlan>,
}

/// Default bound on the spill ring (serialised lines retained across an
/// outage).
const SPILL_CAPACITY: usize = 1_024;

impl JsonlSink {
    fn from_file(file: File, path: PathBuf) -> Self {
        JsonlSink {
            out: BufWriter::new(file),
            path,
            lines: 0,
            error: None,
            spill: VecDeque::new(),
            spill_capacity: SPILL_CAPACITY,
            spilled_total: 0,
            spill_dropped: 0,
            recovered: 0,
            failures: 0,
            skip_budget: 0,
            #[cfg(feature = "fault-injection")]
            faults: None,
        }
    }

    /// Start a fresh trail at `path` (truncates an existing file).
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(Self::from_file(file, path))
    }

    /// Continue an existing trail at `path` (creates it if absent) —
    /// the restart story: restore a checkpoint, re-open the trail in
    /// append mode, and the `"restored"` checkpoint event re-anchors
    /// replay at the right counters.
    pub fn append(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self::from_file(file, path))
    }

    /// Override the spill ring's capacity (clamped to ≥ 1).
    pub fn with_spill_capacity(mut self, capacity: usize) -> Self {
        self.spill_capacity = capacity.max(1);
        self
    }

    /// Install a deterministic write-fault schedule (test seam).
    #[cfg(feature = "fault-injection")]
    pub fn inject_write_faults(&mut self, plan: WriteFaultPlan) {
        self.faults = Some(plan);
    }

    /// Where the trail is written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lines written by this handle (not counting pre-existing ones in
    /// append mode; counting spilled lines once they land).
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// The I/O failure the sink is currently backing off from, if any.
    /// A failing sink keeps accepting events (telemetry must never stall
    /// the stream), spilling them for retry; this clears once the spill
    /// drains back to the file.
    pub fn last_error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Lines ever diverted to the spill ring.
    pub fn spilled_total(&self) -> u64 {
        self.spilled_total
    }

    /// Lines currently awaiting re-emission.
    pub fn spill_pending(&self) -> usize {
        self.spill.len()
    }

    /// Lines lost forever to spill-ring overflow.
    pub fn spill_dropped(&self) -> u64 {
        self.spill_dropped
    }

    /// Spilled lines successfully re-emitted to the file.
    pub fn recovered_lines(&self) -> u64 {
        self.recovered
    }

    /// One write attempt: the fault seam, then the real I/O.
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = &mut self.faults {
            if plan.on_write() {
                return Err(io::Error::other("injected write fault"));
            }
        }
        self.out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
    }

    fn record_failure(&mut self, e: &io::Error) {
        self.error = Some(e.to_string());
        self.failures = self.failures.saturating_add(1);
        // Exponential backoff counted in skipped emits: 2, 4, … 64.
        self.skip_budget = 1u32 << self.failures.min(6);
    }

    fn push_spill(&mut self, line: String) {
        if self.spill.len() == self.spill_capacity {
            self.spill.pop_front();
            self.spill_dropped += 1;
        }
        self.spill.push_back(line);
        self.spilled_total += 1;
    }

    /// Try to drain the spill ring back to the file, in order. `force`
    /// ignores the backoff (used by `flush`).
    fn try_recover(&mut self, force: bool) {
        if self.spill.is_empty() {
            return;
        }
        if !force && self.skip_budget > 0 {
            self.skip_budget -= 1;
            return;
        }
        while let Some(line) = self.spill.front().cloned() {
            match self.write_line(&line) {
                Ok(()) => {
                    self.spill.pop_front();
                    self.lines += 1;
                    self.recovered += 1;
                }
                Err(e) => {
                    self.record_failure(&e);
                    return;
                }
            }
        }
        // The backlog landed: the trail is whole again.
        self.failures = 0;
        self.skip_budget = 0;
        self.error = None;
    }

    fn sync(&mut self) {
        if let Err(e) = self
            .out
            .flush()
            .and_then(|()| self.out.get_ref().sync_data())
        {
            self.error = Some(e.to_string());
        }
    }
}

impl EventSink for JsonlSink {
    fn emit(&mut self, event: &TelemetryEvent) {
        let line = match serde_json::to_string(event) {
            Ok(line) => line,
            Err(e) => {
                self.error = Some(e.to_string());
                return;
            }
        };
        self.try_recover(false);
        if !self.spill.is_empty() {
            // Still in an outage (or backing off): queue behind the
            // backlog so the file never reorders events.
            self.push_spill(line);
            return;
        }
        match self.write_line(&line) {
            Ok(()) => {
                self.lines += 1;
                if self.failures > 0 {
                    self.failures = 0;
                    self.skip_budget = 0;
                    self.error = None;
                }
                if event.is_alert() {
                    self.sync();
                }
            }
            Err(e) => {
                self.record_failure(&e);
                self.push_spill(line);
            }
        }
    }

    fn flush(&mut self) {
        self.try_recover(true);
        self.sync();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        // Best-effort: buffered tail should land even without an
        // explicit flush; errors here have nowhere to go.
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DropEvent, ModelSwapEvent};

    fn swap(at: u64) -> TelemetryEvent {
        TelemetryEvent::ModelSwap(ModelSwapEvent {
            at_tuple: at,
            retrains: at,
        })
    }

    #[test]
    fn ring_sink_evicts_oldest() {
        let mut ring = RingSink::new(2);
        for i in 0..5 {
            ring.emit(&swap(i));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.total_seen(), 5);
        let kept = ring.take();
        assert_eq!(kept, vec![swap(3), swap(4)]);
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_sink_appends_one_line_per_event() {
        let path =
            std::env::temp_dir().join(format!("cf-telemetry-sink-{}.jsonl", std::process::id()));
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.emit(&swap(1));
            sink.emit(&TelemetryEvent::Drop(DropEvent {
                at_tuple: 1,
                batches: 1,
                tuples: 8,
            }));
            sink.flush();
            assert_eq!(sink.lines_written(), 2);
            assert_eq!(sink.last_error(), None);
        }
        {
            let mut sink = JsonlSink::append(&path).unwrap();
            sink.emit(&swap(2));
            sink.flush();
            assert_eq!(sink.lines_written(), 1);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            let _: TelemetryEvent = serde_json::from_str(line).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn write_faults_spill_and_reemit_in_order() {
        let path = std::env::temp_dir().join(format!(
            "cf-telemetry-sink-spill-{}.jsonl",
            std::process::id()
        ));
        let mut sink = JsonlSink::create(&path).unwrap();
        // Attempts 1..=3 fail: event 0 lands, events 1–3 spill, the
        // outage ends, and flush drains the backlog in order.
        sink.inject_write_faults(WriteFaultPlan::fail_range(1, 3));
        for i in 0..6u64 {
            sink.emit(&swap(i));
        }
        assert!(sink.spilled_total() >= 1, "the outage must spill");
        assert_eq!(sink.spill_dropped(), 0);
        // The first flush may still land on the tail of the outage; the
        // second finds the disk back and drains the whole backlog.
        sink.flush();
        sink.flush();
        assert_eq!(sink.spill_pending(), 0, "flush drains the backlog");
        assert_eq!(sink.last_error(), None, "recovery clears the error");
        assert_eq!(sink.lines_written(), 6);
        assert!(sink.recovered_lines() >= 1);
        drop(sink);
        // The file holds every event, in emission order.
        let text = std::fs::read_to_string(&path).unwrap();
        let ats: Vec<u64> = text
            .lines()
            .map(|l| {
                let e: TelemetryEvent = serde_json::from_str(l).unwrap();
                e.at_tuple()
            })
            .collect();
        assert_eq!(ats, vec![0, 1, 2, 3, 4, 5]);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn spill_ring_bounds_memory_and_counts_losses() {
        let path = std::env::temp_dir().join(format!(
            "cf-telemetry-sink-overflow-{}.jsonl",
            std::process::id()
        ));
        let mut sink = JsonlSink::create(&path).unwrap().with_spill_capacity(2);
        // Every attempt fails: a permanent outage.
        sink.inject_write_faults(WriteFaultPlan::fail_from(0));
        for i in 0..10u64 {
            sink.emit(&swap(i));
        }
        assert_eq!(sink.spill_pending(), 2, "ring stays bounded");
        assert_eq!(sink.spilled_total(), 10);
        assert_eq!(sink.spill_dropped(), 8);
        assert!(sink.last_error().is_some(), "outage stays visible");
        assert_eq!(sink.lines_written(), 0);
        drop(sink);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn backoff_skips_retries_between_failures() {
        let path = std::env::temp_dir().join(format!(
            "cf-telemetry-sink-backoff-{}.jsonl",
            std::process::id()
        ));
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.inject_write_faults(WriteFaultPlan::failing_attempts(vec![0]));
        sink.emit(&swap(0)); // fails, spills, arms the backoff
        let attempts_after_failure = 1;
        // The next emits are within the skip budget: they must queue
        // without burning write attempts on a disk believed down.
        sink.emit(&swap(1));
        sink.emit(&swap(2));
        let plan_attempts = {
            #[cfg(feature = "fault-injection")]
            {
                sink.faults.as_ref().unwrap().attempts()
            }
        };
        assert_eq!(
            plan_attempts, attempts_after_failure,
            "backed-off emits must not attempt writes"
        );
        sink.flush(); // force: drains everything
        assert_eq!(sink.spill_pending(), 0);
        assert_eq!(sink.lines_written(), 3);
        drop(sink);
        std::fs::remove_file(&path).ok();
    }
}
