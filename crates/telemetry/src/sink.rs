//! The subscriber seam: where engines hand events to the outside world.
//!
//! Engines emit through a shared [`EventSink`] handle ([`SharedSink`], an
//! `Arc<Mutex<…>>` so a monitor clone taken for checkpointing shares the
//! sink rather than forking the trail). The default is no sink at all —
//! the emission branch is skipped entirely, keeping the null path free —
//! with three implementations provided: [`NullSink`] (explicit no-op),
//! [`RingSink`] (bounded in-memory buffer for tests and live debugging),
//! and [`JsonlSink`] (the append-only audit trail: one JSON object per
//! line, fsynced after every drift alert so the evidence that matters
//! most survives a crash).

use crate::event::TelemetryEvent;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A subscriber for [`TelemetryEvent`]s. `Send` because the async
/// engines emit from their monitor thread.
///
/// `emit` is infallible by design — it sits on the monitoring path, and
/// a telemetry failure must never stall or poison the stream. Fallible
/// sinks (like [`JsonlSink`]) record their last error for the operator
/// to inspect instead of returning it.
pub trait EventSink: Send {
    /// Receive one event.
    fn emit(&mut self, event: &TelemetryEvent);

    /// Flush any buffered events to durable storage. No-op by default.
    fn flush(&mut self) {}
}

/// How engines hold a sink: shared and lockable, so the sync engine, a
/// checkpoint clone, and a monitor thread can all feed one trail.
pub type SharedSink = Arc<Mutex<dyn EventSink>>;

/// Wrap a sink for installation on an engine.
pub fn shared_sink<S: EventSink + 'static>(sink: S) -> SharedSink {
    Arc::new(Mutex::new(sink))
}

/// Discards every event. Installing it is equivalent to (but measurably
/// slower than) installing no sink, since the engine still pays the lock
/// and the delta bookkeeping; useful for isolating sink cost in benches.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _event: &TelemetryEvent) {}
}

/// Keeps the most recent `capacity` events in memory — the test and
/// debugging sink.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<TelemetryEvent>,
    seen: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            seen: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.events.iter().cloned().collect()
    }

    /// Drain and return the retained events, oldest first.
    pub fn take(&mut self) -> Vec<TelemetryEvent> {
        self.events.drain(..).collect()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever emitted to this sink (including evicted ones).
    pub fn total_seen(&self) -> u64 {
        self.seen
    }
}

impl EventSink for RingSink {
    fn emit(&mut self, event: &TelemetryEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event.clone());
        self.seen += 1;
    }
}

/// The append-only JSONL audit trail: one compact JSON object per line,
/// written through a buffer, **fsynced after every drift alert** (and on
/// [`flush`](EventSink::flush)) so alert evidence is durable the moment
/// it is raised. Replays through [`crate::replay()`] into the exact
/// snapshot/alert sequence of the live run.
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
    path: PathBuf,
    lines: u64,
    error: Option<String>,
}

impl JsonlSink {
    /// Start a fresh trail at `path` (truncates an existing file).
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(JsonlSink {
            out: BufWriter::new(file),
            path,
            lines: 0,
            error: None,
        })
    }

    /// Continue an existing trail at `path` (creates it if absent) —
    /// the restart story: restore a checkpoint, re-open the trail in
    /// append mode, and the `"restored"` checkpoint event re-anchors
    /// replay at the right counters.
    pub fn append(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(JsonlSink {
            out: BufWriter::new(file),
            path,
            lines: 0,
            error: None,
        })
    }

    /// Where the trail is written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lines written by this handle (not counting pre-existing ones in
    /// append mode).
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// The most recent I/O failure, if any. A failing sink keeps
    /// accepting events (telemetry must never stall the stream) but the
    /// trail is incomplete from the first error on.
    pub fn last_error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    fn sync(&mut self) {
        if let Err(e) = self
            .out
            .flush()
            .and_then(|()| self.out.get_ref().sync_data())
        {
            self.error = Some(e.to_string());
        }
    }
}

impl EventSink for JsonlSink {
    fn emit(&mut self, event: &TelemetryEvent) {
        match serde_json::to_string(event) {
            Ok(line) => {
                if let Err(e) = self
                    .out
                    .write_all(line.as_bytes())
                    .and_then(|()| self.out.write_all(b"\n"))
                {
                    self.error = Some(e.to_string());
                    return;
                }
                self.lines += 1;
                if event.is_alert() {
                    self.sync();
                }
            }
            Err(e) => self.error = Some(e.to_string()),
        }
    }

    fn flush(&mut self) {
        self.sync();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        // Best-effort: buffered tail should land even without an
        // explicit flush; errors here have nowhere to go.
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DropEvent, ModelSwapEvent};

    fn swap(at: u64) -> TelemetryEvent {
        TelemetryEvent::ModelSwap(ModelSwapEvent {
            at_tuple: at,
            retrains: at,
        })
    }

    #[test]
    fn ring_sink_evicts_oldest() {
        let mut ring = RingSink::new(2);
        for i in 0..5 {
            ring.emit(&swap(i));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.total_seen(), 5);
        let kept = ring.take();
        assert_eq!(kept, vec![swap(3), swap(4)]);
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_sink_appends_one_line_per_event() {
        let path =
            std::env::temp_dir().join(format!("cf-telemetry-sink-{}.jsonl", std::process::id()));
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.emit(&swap(1));
            sink.emit(&TelemetryEvent::Drop(DropEvent {
                at_tuple: 1,
                batches: 1,
                tuples: 8,
            }));
            sink.flush();
            assert_eq!(sink.lines_written(), 2);
            assert_eq!(sink.last_error(), None);
        }
        {
            let mut sink = JsonlSink::append(&path).unwrap();
            sink.emit(&swap(2));
            sink.flush();
            assert_eq!(sink.lines_written(), 1);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            let _: TelemetryEvent = serde_json::from_str(line).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }
}
