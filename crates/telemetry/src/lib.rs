//! Telemetry plane for the streaming fairness engines: a typed audit
//! event model, pluggable subscriber sinks, a self-verifying JSONL
//! replay, and a Prometheus-text metrics registry.
//!
//! The paper's loop — detect drift-induced unfairness, explain which
//! distribution moved, repair — is only auditable in production if every
//! alert, repair, and model swap leaves a durable, explainable record.
//! This crate is that record's home, deliberately free of any dependency
//! on the engines themselves:
//!
//! * [`event`] — one [`TelemetryEvent`] per observable state change,
//!   carrying per-cell counter deltas and moved-cell explanations, plus
//!   the snapshot arithmetic ([`SnapshotData::from_counters`]) that
//!   `cf-stream` delegates to.
//! * [`sink`] — the [`EventSink`] seam engines emit through, with
//!   [`NullSink`], [`RingSink`], and the fsync-on-alert [`JsonlSink`].
//! * [`replay`](mod@replay) — [`replay()`](replay()) reconstructs the
//!   live run's exact snapshot/alert sequence from a trail, verifying it
//!   line by line.
//! * [`metrics`] — [`MetricsRegistry`] with counters, gauges, and
//!   log-bucket histograms rendered by
//!   [`render()`](MetricsRegistry::render).

#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod replay;
pub mod sink;

pub use event::{
    AlertData, AlertExplanation, CheckpointEvent, CounterDelta, DegradedModeEvent, DriftAlertEvent,
    DropEvent, FeedbackJoinEvent, IngestBatchEvent, ModelSwapEvent, MonitorRestartEvent,
    RepairEndEvent, RepairStartEvent, SnapshotData, TelemetryEvent, ThresholdChangeEvent,
    WindowCounters,
};
pub use metrics::{log2_buckets, Counter, Gauge, Histogram, MetricsRegistry};
pub use replay::{replay, replay_file, ReplayError, ReplayedRun};
#[cfg(feature = "fault-injection")]
pub use sink::WriteFaultPlan;
pub use sink::{shared_sink, EventSink, JsonlSink, NullSink, RingSink, SharedSink};
